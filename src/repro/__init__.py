"""CLIMBER reproduction: pivot-based approximate similarity search over big data series.

This package reimplements, from scratch and in pure Python, the CLIMBER
system of *"CLIMBER: Pivot-Based Approximate Similarity Search Over Big
Data Series"* (ICDE 2024) together with every substrate it depends on.

The primary public entry points are re-exported here:

>>> from repro import ClimberConfig, ClimberIndex, random_walk_dataset
>>> index = ClimberIndex.build(random_walk_dataset(1000, 64),
...                            ClimberConfig(word_length=8, n_pivots=16,
...                                          prefix_length=4, capacity=100,
...                                          sample_fraction=0.3))
>>> result = index.knn(index.dfs.read_partition(
...     index.dfs.list_partitions()[0]).values[0], k=5)

See :mod:`repro.core` for the paper's contribution, :mod:`repro.baselines`
for the comparators, and DESIGN.md for the full system inventory.
"""

from repro.exceptions import (
    ConfigurationError,
    DimensionalityError,
    IndexNotBuiltError,
    MemoryBudgetExceeded,
    PartitionCorruptError,
    PartitionLostError,
    PartitionNotFoundError,
    ReadTimeoutError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    StorageError,
    TransientReadError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DimensionalityError",
    "IndexNotBuiltError",
    "StorageError",
    "PartitionNotFoundError",
    "PartitionCorruptError",
    "PartitionLostError",
    "TransientReadError",
    "ReadTimeoutError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "MemoryBudgetExceeded",
    "ClimberConfig",
    "ClimberIndex",
    "QueryResult",
    "ProgressiveUpdate",
    "ProgressiveCalibration",
    "QueryService",
    "QueryResponse",
    "ServeConfig",
    "SeriesDataset",
    "random_walk_dataset",
    "make_dataset",
    "sample_queries",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports of the main public API.

    Importing :mod:`repro` stays cheap; heavyweight submodules load on
    first attribute access.
    """
    if name in ("ClimberConfig", "ClimberIndex", "QueryResult",
                "ProgressiveUpdate", "ProgressiveCalibration"):
        from repro import core

        return getattr(core, name)
    if name in ("FaultPlan", "FaultInjector", "RetryPolicy"):
        from repro import resilience

        return getattr(resilience, name)
    if name in ("QueryService", "QueryResponse", "ServeConfig"):
        from repro import serve

        return getattr(serve, name)
    if name == "SeriesDataset":
        from repro.series import SeriesDataset

        return SeriesDataset
    if name in ("random_walk_dataset", "make_dataset", "sample_queries"):
        from repro import datasets

        return getattr(datasets, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

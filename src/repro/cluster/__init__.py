"""Simulated distributed compute substrate (stands in for Apache Spark)."""

from repro.cluster.costmodel import (
    CostModel,
    TaskCost,
    ops_euclidean,
    ops_paa,
    ops_signature,
)
from repro.cluster.simulator import ClusterSimulator, SimReport, StageReport

__all__ = [
    "CostModel",
    "TaskCost",
    "ops_euclidean",
    "ops_paa",
    "ops_signature",
    "ClusterSimulator",
    "SimReport",
    "StageReport",
]

"""Analytic cost model for the simulated cluster.

The paper runs on two nodes with 56 Xeon E5-2690 cores, 512 GB RAM and 8 TB
SATA disks each, under Spark + HDFS.  A faithful pure-Python wall-clock
reproduction of terabyte experiments is impossible (see DESIGN.md §1), so
every reported "seconds"/"minutes" figure in our benchmarks is produced by
this model instead: algorithms run for real on scaled data while declaring
the I/O, network, and CPU work they *would* perform at paper scale, and the
model converts that work into simulated time.

The constants below are deliberately round, publicly documented figures for
the paper's hardware generation; what matters for reproduction is the
*ratios* (disk ≪ network ≪ memory; scan cost ≫ few-partition cost), which
drive every trend in Figures 7-12 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["CostModel", "TaskCost", "ops_euclidean", "ops_paa", "ops_signature"]

_MB = 1024 * 1024


def ops_euclidean(length: int) -> int:
    """Approximate scalar float ops of one Euclidean distance of ``length``."""
    return 3 * length


def ops_paa(length: int) -> int:
    """Approximate scalar float ops to PAA-transform one series."""
    return 2 * length


def ops_signature(n_pivots: int, word_length: int, prefix_length: int) -> int:
    """Ops to derive one P4 dual signature: r pivot distances + top-m select."""
    return n_pivots * ops_euclidean(word_length) + 4 * n_pivots + 8 * prefix_length


@dataclass(frozen=True)
class TaskCost:
    """Work declared by one task of a distributed stage.

    All fields are *at paper scale*: callers that ran on scaled-down data
    multiply record counts up before declaring (see
    :func:`repro.datasets.gb_to_count`).
    """

    read_bytes: int = 0
    write_bytes: int = 0
    shuffle_bytes: int = 0
    cpu_ops: int = 0

    def __add__(self, other: "TaskCost") -> "TaskCost":
        return TaskCost(
            self.read_bytes + other.read_bytes,
            self.write_bytes + other.write_bytes,
            self.shuffle_bytes + other.shuffle_bytes,
            self.cpu_ops + other.cpu_ops,
        )


@dataclass(frozen=True)
class CostModel:
    """Hardware constants of the simulated cluster.

    Defaults describe the paper's testbed (§VII-A): 2 nodes x 56 cores,
    512 GB RAM, SATA disks, datacenter Ethernet.  HDFS replication is 2 —
    a two-node cluster cannot hold the default three replicas.
    """

    n_nodes: int = 2
    cores_per_node: int = 56
    memory_per_node_gb: float = 512.0
    disk_read_mb_s: float = 110.0
    disk_write_mb_s: float = 160.0
    network_mb_s: float = 1_000.0
    cpu_ops_per_s: float = 1.5e9
    software_factor: float = 220.0
    task_overhead_s: float = 0.005
    stage_overhead_s: float = 10.0
    replication_factor: int = 2
    disk_seek_s: float = 0.008

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.cores_per_node < 1:
            raise ConfigurationError("cluster must have >= 1 node and core")
        for name in ("disk_read_mb_s", "disk_write_mb_s", "network_mb_s",
                     "cpu_ops_per_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    @property
    def total_memory_bytes(self) -> int:
        return int(self.memory_per_node_gb * 1e9) * self.n_nodes

    # -- cluster-wide sustained bandwidths ---------------------------------------
    #
    # Cores are per-task resources, but disks and NICs are shared per node:
    # the paper's nodes each have a single SATA drive, so an I/O-heavy stage
    # cannot go faster than n_nodes * one-disk bandwidth no matter how many
    # cores it occupies.  This asymmetry is what makes full scans minutes
    # while few-partition probes stay in seconds (Fig. 7, Table I).

    @property
    def cluster_read_bytes_s(self) -> float:
        return self.n_nodes * self.disk_read_mb_s * _MB

    @property
    def cluster_write_bytes_s(self) -> float:
        return self.n_nodes * self.disk_write_mb_s * _MB

    @property
    def cluster_network_bytes_s(self) -> float:
        return self.n_nodes * self.network_mb_s * _MB

    # -- per-component timings -------------------------------------------------

    def read_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` sequentially from one disk."""
        return self.disk_seek_s + nbytes / (self.disk_read_mb_s * _MB)

    def write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes``, including replication traffic.

        HDFS pipelines one local write plus ``replication_factor - 1``
        network copies; the slower of the two paths dominates.
        """
        local = nbytes / (self.disk_write_mb_s * _MB)
        copies = (self.replication_factor - 1) * nbytes / (self.network_mb_s * _MB)
        return self.disk_seek_s + max(local, copies) + min(local, copies) * 0.25

    def shuffle_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the network (serialise + send)."""
        return nbytes / (self.network_mb_s * _MB) + nbytes / (8 * self.cpu_ops_per_s)

    def compute_time(self, ops: int) -> float:
        """Seconds for ``ops`` *algorithmic* float operations on one core.

        ``software_factor`` converts textbook flop counts into the
        effective throughput of the paper's JVM/Spark stack (boxing, GC,
        serialisation); native-code baselines (Odyssey, ParlayANN) override
        it with a small factor in their own :class:`CostModel` instances.
        """
        return ops * self.software_factor / self.cpu_ops_per_s

    def task_time(self, cost: TaskCost) -> float:
        """Total simulated seconds for one task's declared work in isolation."""
        return (
            self.read_time(cost.read_bytes) if cost.read_bytes else 0.0
        ) + (
            self.write_time(cost.write_bytes) if cost.write_bytes else 0.0
        ) + (
            self.shuffle_time(cost.shuffle_bytes) if cost.shuffle_bytes else 0.0
        ) + self.compute_time(cost.cpu_ops)

"""Cluster simulator: stage scheduling and simulated-time accounting.

Algorithms in this repository execute for real (their outputs are exact);
what the simulator adds is an account of how long each distributed *stage*
would take on the paper's cluster.  A stage is a set of independent tasks;
the simulator assigns tasks to cores with the Longest-Processing-Time
heuristic (a good stand-in for Spark's dynamic scheduling) and the stage's
simulated duration is the busiest core's total plus per-task overheads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.cluster.costmodel import CostModel, TaskCost
from repro.exceptions import ConfigurationError

__all__ = ["StageReport", "SimReport", "ClusterSimulator"]


@dataclass(frozen=True)
class StageReport:
    """Outcome of one simulated stage."""

    name: str
    n_tasks: int
    sim_seconds: float
    total_cost: TaskCost

    def __str__(self) -> str:
        return f"{self.name}: {self.n_tasks} tasks, {self.sim_seconds:.3f}s"


@dataclass
class SimReport:
    """Accumulated stage reports for one logical operation (build or query)."""

    stages: list[StageReport] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.sim_seconds for s in self.stages)

    def seconds_for(self, prefix: str) -> float:
        """Total simulated seconds of stages whose name starts with ``prefix``."""
        return sum(s.sim_seconds for s in self.stages if s.name.startswith(prefix))

    def merge(self, other: "SimReport") -> None:
        self.stages.extend(other.stages)

    def __str__(self) -> str:
        lines = [str(s) for s in self.stages]
        lines.append(f"total: {self.total_seconds:.3f}s")
        return "\n".join(lines)


class ClusterSimulator:
    """Schedules declared task costs onto the model's cores.

    One simulator instance is shared by a build or query pipeline; stages
    accumulate into :attr:`report`.
    """

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model or CostModel()
        self.report = SimReport()

    def run_stage(self, name: str, costs: Iterable[TaskCost]) -> StageReport:
        """Simulate a stage of independent tasks; record and return its report.

        Roofline accounting: CPU work spreads over every core (LPT
        scheduling), but disk and network traffic saturate the *per-node*
        shared bandwidths, so the stage lasts as long as its slowest
        resource.  A fixed ``stage_overhead_s`` models job launch (Spark
        driver scheduling, executor wake-up), which dominates short
        index-probe stages on the paper's cluster.
        """
        model = self.model
        costs = list(costs)
        if not costs:
            stage = StageReport(name, 0, 0.0, TaskCost())
            self.report.stages.append(stage)
            return stage

        def duration(c: TaskCost) -> float:
            return (
                model.compute_time(c.cpu_ops)
                + (model.disk_seek_s if c.read_bytes else 0.0)
                + model.task_overhead_s
            )

        n = len(costs)
        first = costs[0]
        # Fast path for single-task and uniform-cost stages — the two
        # shapes the hot callers produce (per-query index probes and the
        # granule-split stages of run_scaled_stage).  With equal durations
        # LPT is round-robin: the busiest core runs ceil(n / cores) tasks,
        # accumulated by the same repeated float addition the heap would
        # perform, so the makespan is bit-identical to the general path.
        if n == 1 or all(c == first for c in costs):
            dur = duration(first)
            rounds = -(-n // min(model.total_cores, n))
            cpu_makespan = 0.0
            for _ in range(rounds):
                cpu_makespan += dur
            total = TaskCost(
                first.read_bytes * n,
                first.write_bytes * n,
                first.shuffle_bytes * n,
                first.cpu_ops * n,
            )
        else:
            durations = sorted((duration(c) for c in costs), reverse=True)
            heap = [0.0] * min(model.total_cores, len(durations))
            heapq.heapify(heap)
            for dur in durations:
                earliest = heapq.heappop(heap)
                heapq.heappush(heap, earliest + dur)
            cpu_makespan = max(heap)
            total = TaskCost()
            for c in costs:
                total = total + c
        io_seconds = max(
            total.read_bytes / model.cluster_read_bytes_s,
            total.write_bytes
            * max(1, model.replication_factor - 1)
            / model.cluster_write_bytes_s,
            total.shuffle_bytes / model.cluster_network_bytes_s,
        )
        makespan = model.stage_overhead_s + max(cpu_makespan, io_seconds)
        stage = StageReport(name, len(costs), makespan, total)
        self.report.stages.append(stage)
        return stage

    def run_scaled_stage(
        self,
        name: str,
        total: TaskCost,
        granule_bytes: int = 64 * 1024 * 1024,
        min_tasks: int = 1,
    ) -> StageReport:
        """Simulate a stage from its *total* paper-scale cost.

        A scaled-down run has far fewer physical chunks than the paper-scale
        job would (10^2 vs 10^4 blocks), so replaying per-chunk costs would
        bottleneck the simulated cluster on artificial task granularity.
        This helper splits the declared totals into ``~granule_bytes`` tasks
        — the block granularity the real job would have — before
        scheduling.
        """
        volume = total.read_bytes + total.write_bytes + total.shuffle_bytes
        n_tasks = max(min_tasks, int(np.ceil(volume / granule_bytes)) if volume else min_tasks)
        per = TaskCost(
            read_bytes=total.read_bytes // n_tasks,
            write_bytes=total.write_bytes // n_tasks,
            shuffle_bytes=total.shuffle_bytes // n_tasks,
            cpu_ops=total.cpu_ops // n_tasks,
        )
        return self.run_stage(name, [per] * n_tasks)

    def run_driver_step(self, name: str, cost: TaskCost) -> StageReport:
        """A single-threaded driver-side step (no parallelism)."""
        stage = StageReport(name, 1, self.model.task_time(cost), cost)
        self.report.stages.append(stage)
        return stage

    def broadcast(self, name: str, nbytes: int) -> StageReport:
        """Broadcast ``nbytes`` from the driver to every node.

        The paper broadcasts the pivot set and index skeleton in build
        Step 4; both are tiny, but we account for them anyway.
        """
        if nbytes < 0:
            raise ConfigurationError("broadcast size must be non-negative")
        seconds = self.model.shuffle_time(nbytes) * max(1, self.model.n_nodes - 1)
        stage = StageReport(name, self.model.n_nodes, seconds,
                            TaskCost(shuffle_bytes=nbytes * (self.model.n_nodes - 1)))
        self.report.stages.append(stage)
        return stage

    def fresh_report(self) -> SimReport:
        """Detach and reset the accumulated report (e.g. between queries)."""
        out = self.report
        self.report = SimReport()
        return out

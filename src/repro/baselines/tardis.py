"""TARDIS baseline: sigTree-based distributed iSAX indexing ([67], ICDE'19).

TARDIS builds a *sigTree*: a k-ary tree over iSAX-T words in which a node
split promotes the cardinality of **all** segments simultaneously, so a
node's children are the distinct refined words observed below it.  Leaves
are packed into physical partitions; queries descend the global tree and
search a single partition.

Compared to DPiSAX the simultaneous refinement preserves more context
per split (recall up to ~40% in the paper vs ~10%), and its word
operations are cheap, making construction slightly faster than CLIMBER's
pivot conversions (Fig. 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    BaselineStats,
    partition_scan_cost,
    simulate_distributed_build,
)
from repro.cluster import ClusterSimulator, CostModel, TaskCost, ops_paa
from repro.exceptions import ConfigurationError
from repro.series import ISaxSpace, SeriesDataset, knn_bruteforce, paa_transform
from repro.storage import PartitionFile, SimulatedDFS

__all__ = ["TardisConfig", "TardisIndex"]


@dataclass(frozen=True)
class TardisConfig:
    """Knobs of the TARDIS reproduction."""

    word_length: int = 16
    max_bits: int = 8
    capacity: int | None = None
    leaf_capacity: int = 64
    sample_fraction: float = 0.1
    n_input_partitions: int = 32
    seed: int = 0
    cost_scale: float = 1.0
    sim_partition_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.word_length < 1 or self.max_bits < 1:
            raise ConfigurationError("word_length and max_bits must be >= 1")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if self.leaf_capacity < 1:
            raise ConfigurationError("leaf_capacity must be >= 1")


@dataclass
class SigTreeNode:
    """A sigTree node: uniform-cardinality word of ``bits`` bits per segment."""

    bits: int
    word: tuple[int, ...]
    count: float = 0.0
    children: dict[tuple[int, ...], "SigTreeNode"] = field(default_factory=dict)
    partition: int = -1
    default_partition: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def key(self) -> str:
        """Cluster key of this node's records inside a partition."""
        return f"{self.bits}:" + ".".join(str(s) for s in self.word)

    def node_count(self) -> int:
        return 1 + sum(c.node_count() for c in self.children.values())


class TardisIndex:
    """A built TARDIS index: global sigTree + packed partitions."""

    def __init__(
        self,
        space: ISaxSpace,
        root: SigTreeNode,
        dfs: SimulatedDFS,
        model: CostModel,
        config: TardisConfig,
        build_sim_seconds: float,
        n_partitions: int,
    ) -> None:
        self.space = space
        self.root = root
        self.dfs = dfs
        self.model = model
        self.config = config
        self.build_sim_seconds = build_sim_seconds
        self.n_partitions = n_partitions

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        config: TardisConfig | None = None,
        model: CostModel | None = None,
        dfs: SimulatedDFS | None = None,
    ) -> "TardisIndex":
        config = config or TardisConfig()
        model = model or CostModel()
        dfs = dfs if dfs is not None else SimulatedDFS()
        rng = np.random.default_rng(config.seed)
        space = ISaxSpace(config.word_length, dataset.length, config.max_bits)
        capacity = config.capacity or dfs.block_records(dataset.length)

        sample = dataset.sample(config.sample_fraction, rng)
        alpha = sample.count / dataset.count
        sample_syms = space.encode_paa(
            paa_transform(sample.values, config.word_length)
        )

        # The sigTree splits down to *local leaf* granularity (the paper's
        # per-partition refinement), much finer than the partition capacity;
        # leaves are then packed into capacity-sized partitions.
        root = SigTreeNode(bits=0, word=(0,) * config.word_length,
                           count=sample.count / alpha)
        cls._split(root, sample_syms, np.arange(sample.count), space,
                   float(config.leaf_capacity), alpha)

        # Pack leaves into partitions *in word order* (next-fit): TARDIS
        # packs whole subtrees together, so sibling words — the closest
        # regions of the iSAX space — share a partition.  Packing by size
        # (FFD) would scatter siblings and wreck the single-partition
        # search's recall.
        leaves: list[SigTreeNode] = []

        def collect(node: SigTreeNode) -> None:
            if node.is_leaf:
                leaves.append(node)
                return
            for word in sorted(node.children):
                collect(node.children[word])

        collect(root)
        bins: list[list[SigTreeNode]] = []
        load = float("inf")
        for leaf in leaves:
            if load + leaf.count > capacity and not (load == 0.0):
                bins.append([])
                load = 0.0
            bins[-1].append(leaf)
            load += leaf.count
        for pid, bin_leaves in enumerate(bins):
            for leaf in bin_leaves:
                leaf.partition = pid
        cls._assign_defaults(root)

        # Route every record for real.
        all_syms = space.encode_paa(
            paa_transform(dataset.values, config.word_length)
        )
        clusters: dict[int, dict[str, list[int]]] = {}
        for i in range(dataset.count):
            node, complete = cls._descend(root, all_syms[i], space)
            if complete and node.is_leaf:
                pid, key = node.partition, node.key()
            else:
                pid, key = node.default_partition, node.key() + "/~"
            clusters.setdefault(pid, {}).setdefault(key, []).append(i)
        for pid in sorted(clusters):
            mapping = {
                key: (dataset.ids[rows], dataset.values[rows])
                for key, rows in clusters[pid].items()
                for rows in [np.asarray(rows, dtype=np.int64)]
            }
            dfs.write_partition(PartitionFile.from_clusters(f"tardis{pid}", mapping))

        per_record_ops = ops_paa(dataset.length) + 16 * config.word_length
        report = simulate_distributed_build(
            model,
            dataset,
            cost_scale=config.cost_scale,
            n_chunks=config.n_input_partitions,
            sample_fraction=config.sample_fraction,
            per_record_ops=per_record_ops,
        )
        return cls(space, root, dfs, model, config,
                   report.total_seconds, len(bins))

    @classmethod
    def _split(
        cls,
        node: SigTreeNode,
        sample_syms: np.ndarray,
        rows: np.ndarray,
        space: ISaxSpace,
        capacity: float,
        alpha: float,
    ) -> None:
        if node.count <= capacity or node.bits >= space.max_bits:
            return
        bits = node.bits + 1
        shift = space.max_bits - bits
        words = sample_syms[rows] >> shift
        for word_row in np.unique(words, axis=0):
            mask = np.all(words == word_row, axis=1)
            child_rows = rows[mask]
            child = SigTreeNode(
                bits=bits,
                word=tuple(int(s) for s in word_row),
                count=child_rows.shape[0] / alpha,
            )
            node.children[child.word] = child
            cls._split(child, sample_syms, child_rows, space, capacity, alpha)

    @staticmethod
    def _assign_defaults(root: SigTreeNode) -> None:
        """Each internal node defaults to its largest descendant's partition."""

        def visit(node: SigTreeNode) -> tuple[int, float]:
            if node.is_leaf:
                node.default_partition = node.partition
                return node.partition, node.count
            best_pid, best_count = -1, -1.0
            for child in node.children.values():
                pid, count = visit(child)
                if count > best_count:
                    best_pid, best_count = pid, count
            node.default_partition = best_pid
            return best_pid, node.count

        visit(root)

    @staticmethod
    def _descend(
        root: SigTreeNode, symbol_row: np.ndarray, space: ISaxSpace
    ) -> tuple[SigTreeNode, bool]:
        """Follow refined words down; False if stuck before reaching a leaf."""
        node = root
        while not node.is_leaf:
            bits = node.bits + 1
            shift = space.max_bits - bits
            word = tuple(int(s) >> shift for s in symbol_row)
            child = node.children.get(word)
            if child is None:
                return node, False
            node = child
        return node, True

    @staticmethod
    def _descend_path(
        root: SigTreeNode, symbol_row: np.ndarray, space: ISaxSpace
    ) -> list[SigTreeNode]:
        """All nodes on the walk, root first, deepest reachable last."""
        path = [root]
        node = root
        while not node.is_leaf:
            bits = node.bits + 1
            shift = space.max_bits - bits
            word = tuple(int(s) >> shift for s in symbol_row)
            child = node.children.get(word)
            if child is None:
                break
            node = child
            path.append(node)
        return path

    @staticmethod
    def _covers(node: SigTreeNode, kbits: int, ksyms: tuple[int, ...]) -> bool:
        """True if a cluster key at (kbits, ksyms) lies under ``node``."""
        if kbits < node.bits:
            return False
        return all(
            (s >> (kbits - node.bits)) == wsym
            for s, wsym in zip(ksyms, node.word)
        )

    # -- introspection ------------------------------------------------------------

    @property
    def global_index_nbytes(self) -> int:
        """sigTree size: the paper's widest global index (Fig. 8(b))."""
        return self.root.node_count() * (2 * self.space.word_length + 12)

    # -- query ------------------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int) -> BaselineResult:
        """Approximate kNN: descend the sigTree, search one partition."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        t0 = time.perf_counter()
        sim = ClusterSimulator(self.model)
        q_syms = self.space.encode_paa(
            paa_transform(query.reshape(1, -1), self.config.word_length)
        )[0]
        path = self._descend_path(self.root, q_syms, self.space)
        node = path[-1]
        complete = node.is_leaf
        pid = node.partition if complete else node.default_partition
        sim.run_driver_step(
            "query/route",
            TaskCost(cpu_ops=32 * self.space.word_length),
        )
        pname = f"tardis{pid}"
        if pid < 0 or not self.dfs.has_partition(pname):
            sim.run_stage("query/scan", [])
            report = sim.fresh_report()
            return BaselineResult(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                BaselineStats("TARDIS", k, (), 0, 0,
                              report.total_seconds, time.perf_counter() - t0),
            )
        part = self.dfs.read_partition(pname)
        parsed_keys = []
        for key in part.cluster_keys():
            bits_str, syms_str = key.rstrip("/~").split(":")
            parsed_keys.append(
                (key, int(bits_str), tuple(int(s) for s in syms_str.split(".")))
            )
        # TARDIS's kNN-g: candidates come from the reached node's clusters;
        # if those hold fewer than k records, expand one level (to the
        # sibling subtree under the parent) — never further.  Still short?
        # Fall back to the whole (single) partition.
        ids = vals = None
        anchors = list(reversed(path))[:2]
        for anchor in anchors:
            cand_ids, cand_vals = [], []
            for key, kbits, ksyms in parsed_keys:
                if self._covers(anchor, kbits, ksyms):
                    cid, cval = part.read_cluster(key)
                    cand_ids.append(cid)
                    cand_vals.append(cval)
            if cand_ids:
                ids = np.concatenate(cand_ids)
                vals = np.vstack(cand_vals)
                if ids.shape[0] >= k:
                    break
        if ids is None or ids.shape[0] < k:  # expand to the whole partition
            ids, vals = part.read_all()
        out_ids, out_d = knn_bruteforce(query, vals, ids, k)
        sim.run_stage(
            "query/scan",
            [
                partition_scan_cost(
                    part, self.config.cost_scale, self.config.sim_partition_bytes
                )
            ],
        )
        report = sim.fresh_report()
        return BaselineResult(
            out_ids,
            out_d,
            BaselineStats(
                system="TARDIS",
                k=k,
                partitions_loaded=(pname,),
                records_examined=int(ids.shape[0]),
                data_bytes=part.nbytes,
                sim_seconds=report.total_seconds,
                wall_seconds=time.perf_counter() - t0,
            ),
        )

"""In-memory iSAX binary tree.

The local-index building block shared by the DPiSAX baseline (per-partition
trees) and the Odyssey baseline (one global in-memory tree with exact
branch-and-bound search).  This is the iSAX 2.0-style binary tree: a node
splits by promoting one segment's cardinality by one bit, with the segment
chosen round-robin by depth — the standard policy of [12]/[54].
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, IndexNotBuiltError
from repro.series import ISaxSpace, ISaxWord

__all__ = ["ISaxTreeNode", "ISaxTree"]


@dataclass
class ISaxTreeNode:
    """One node: an iSAX word plus either children or resident row indices."""

    word: ISaxWord
    rows: np.ndarray | None = None
    children: list["ISaxTreeNode"] = field(default_factory=list)
    split_segment: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        if self.is_leaf:
            return 0 if self.rows is None else int(self.rows.shape[0])
        return sum(c.size for c in self.children)


class ISaxTree:
    """Bulk-loaded binary iSAX tree over full-resolution symbol rows.

    Parameters
    ----------
    space:
        The iSAX universe (word length, series length, max cardinality).
    leaf_capacity:
        Maximum rows per leaf before a split.
    """

    def __init__(self, space: ISaxSpace, leaf_capacity: int) -> None:
        if leaf_capacity < 1:
            raise ConfigurationError("leaf_capacity must be >= 1")
        self.space = space
        self.leaf_capacity = leaf_capacity
        self.root = ISaxTreeNode(space.root_word())
        self._symbols: np.ndarray | None = None
        self._row_ids: np.ndarray | None = None

    # -- construction -----------------------------------------------------------

    def bulk_load(self, full_symbols: np.ndarray, row_ids: np.ndarray) -> None:
        """Build the tree over ``(d, w)`` full-resolution symbols."""
        symbols = np.asarray(full_symbols, dtype=np.int64)
        ids = np.asarray(row_ids, dtype=np.int64)
        if symbols.ndim != 2 or symbols.shape[1] != self.space.word_length:
            raise ConfigurationError("symbols shape does not match the space")
        if ids.shape[0] != symbols.shape[0]:
            raise ConfigurationError("row_ids length mismatch")
        self._symbols = symbols
        self._row_ids = ids
        self.root = ISaxTreeNode(self.space.root_word())
        self._build(self.root, np.arange(symbols.shape[0]), depth=0)

    def _next_split_segment(self, word: ISaxWord, depth: int) -> int:
        """Round-robin over segments that still have cardinality headroom."""
        w = self.space.word_length
        for offset in range(w):
            seg = (depth + offset) % w
            if word.bits[seg] < self.space.max_bits:
                return seg
        return -1

    def _build(self, node: ISaxTreeNode, rows: np.ndarray, depth: int) -> None:
        if rows.shape[0] <= self.leaf_capacity:
            node.rows = rows
            return
        seg = self._next_split_segment(node.word, depth)
        if seg < 0:  # cardinality exhausted: oversized leaf
            node.rows = rows
            return
        w0, w1 = node.word.split(seg)
        bit_pos = self.space.max_bits - w0.bits[seg]
        bits = (self._symbols[rows, seg] >> bit_pos) & 1
        node.split_segment = seg
        for word, mask in ((w0, bits == 0), (w1, bits == 1)):
            child = ISaxTreeNode(word)
            node.children.append(child)
            self._build(child, rows[mask], depth + 1)

    # -- introspection ----------------------------------------------------------

    def leaves(self) -> list[ISaxTreeNode]:
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    # -- approximate descent (DPiSAX-style) -----------------------------------------

    def descend(self, full_symbol_row: np.ndarray) -> ISaxTreeNode:
        """Follow the query's symbols to the deepest matching node."""
        syms = np.asarray(full_symbol_row, dtype=np.int64).ravel()
        node = self.root
        while not node.is_leaf:
            seg = node.split_segment
            child_bits = node.children[0].word.bits[seg]
            bit = (syms[seg] >> (self.space.max_bits - child_bits)) & 1
            node = node.children[int(bit)]
        return node

    # -- exact search (Odyssey-style) -------------------------------------------------

    def exact_knn(
        self,
        query: np.ndarray,
        query_paa: np.ndarray,
        values: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Exact kNN via best-first branch-and-bound with MINDIST pruning.

        Parameters
        ----------
        query, query_paa:
            The raw query series and its PAA signature.
        values:
            The raw data matrix the tree's row indices refer to.

        Returns
        -------
        (ids, distances, visited_records)
            Exact top-k (by row id) and how many raw records were scanned —
            the pruning-effectiveness measure used for Odyssey's simulated
            query cost.
        """
        if self._row_ids is None:
            raise IndexNotBuiltError("tree is empty; call bulk_load first")
        heap: list[tuple[float, int, ISaxTreeNode]] = []
        counter = 0
        heapq.heappush(heap, (0.0, counter, self.root))
        best: list[tuple[float, int]] = []  # max-heap via negated distance
        visited = 0
        q = np.asarray(query, dtype=np.float64)
        while heap:
            lb, _, node = heapq.heappop(heap)
            if len(best) == k and lb > -best[0][0]:
                break
            if node.is_leaf:
                rows = node.rows
                if rows is None or rows.shape[0] == 0:
                    continue
                visited += int(rows.shape[0])
                d = np.sqrt(((values[rows] - q) ** 2).sum(axis=1))
                for dist, rid in zip(d, self._row_ids[rows]):
                    if len(best) < k:
                        heapq.heappush(best, (-float(dist), int(rid)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-float(dist), int(rid)))
                continue
            for child in node.children:
                clb = self.space.mindist_paa(query_paa, child.word)
                if len(best) < k or clb <= -best[0][0]:
                    counter += 1
                    heapq.heappush(heap, (clb, counter, child))
        ordered = sorted(((-nd, rid) for nd, rid in best), key=lambda t: (t[0], t[1]))
        ids = np.array([rid for _, rid in ordered], dtype=np.int64)
        dists = np.array([d for d, _ in ordered], dtype=np.float64)
        return ids, dists, visited

"""Shared result types and build-cost helpers for the baseline systems.

All baselines answer queries with the same result shape so the evaluation
harness can treat CLIMBER and every comparator uniformly, and all
*distributed* baselines (Dss, DPiSAX, TARDIS) account their construction
with the same staged cost structure as CLIMBER's builder — only the
per-record CPU work differs, which is exactly the paper's story about
their construction-time differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterSimulator, CostModel, SimReport, TaskCost
from repro.series import SeriesDataset

__all__ = [
    "BaselineStats",
    "BaselineResult",
    "simulate_distributed_build",
    "partition_scan_cost",
]


def partition_scan_cost(
    part,
    cost_scale: float,
    sim_partition_bytes: int | None,
) -> TaskCost:
    """Declared cost of loading + ED-scanning one partition at paper scale.

    Mirrors :meth:`repro.core.index.ClimberIndex._partition_scan_cost` so
    every distributed system charges queries identically: one storage block
    per partition touched when ``sim_partition_bytes`` is set, honest scaled
    bytes otherwise.
    """
    from repro.cluster import ops_euclidean
    from repro.series import series_nbytes

    if sim_partition_bytes is not None:
        block_records = max(
            1, sim_partition_bytes // series_nbytes(part.series_length)
        )
        return TaskCost(
            read_bytes=sim_partition_bytes,
            cpu_ops=block_records * ops_euclidean(part.series_length),
        )
    return TaskCost(
        read_bytes=int(part.nbytes * cost_scale),
        cpu_ops=int(
            part.record_count * ops_euclidean(part.series_length) * cost_scale
        ),
    )


@dataclass(frozen=True)
class BaselineStats:
    """Query diagnostics common to every system in the evaluation."""

    system: str
    k: int
    partitions_loaded: tuple[str, ...]
    records_examined: int
    data_bytes: int
    sim_seconds: float
    wall_seconds: float

    @property
    def n_partitions(self) -> int:
        return len(self.partitions_loaded)


@dataclass(frozen=True)
class BaselineResult:
    """kNN answer set of a baseline system."""

    ids: np.ndarray
    distances: np.ndarray
    stats: BaselineStats


def simulate_distributed_build(
    model: CostModel,
    dataset: SeriesDataset,
    *,
    cost_scale: float,
    n_chunks: int,
    sample_fraction: float,
    per_record_ops: int,
    write_fraction: float = 1.0,
) -> SimReport:
    """Simulated cost of a sample/convert/redistribute index build.

    This mirrors the stage structure of CLIMBER's builder (paper Fig. 6),
    parameterised by the per-record conversion CPU cost that distinguishes
    the systems (iSAX words are cheap; pivot signatures cost ``r`` distance
    evaluations; DPiSAX pays heavily for its partitioning-table updates).

    Parameters
    ----------
    write_fraction:
        Fraction of the dataset rewritten during re-distribution (1.0 for
        all index builders; Dss performs no re-distribution).
    """
    sim = ClusterSimulator(model)
    total_bytes = int(dataset.nbytes * cost_scale)
    total_records = int(dataset.count * cost_scale)
    sim.run_scaled_stage(
        "build/skeleton/sample",
        TaskCost(
            read_bytes=int(total_bytes * sample_fraction),
            cpu_ops=int(total_records * sample_fraction) * per_record_ops,
        ),
        min_tasks=max(1, round(sample_fraction * n_chunks)),
    )
    sim.run_driver_step(
        "build/skeleton/assemble",
        TaskCost(cpu_ops=dataset.count * 64),
    )
    sim.run_scaled_stage(
        "build/convert",
        TaskCost(read_bytes=total_bytes, cpu_ops=total_records * per_record_ops),
        min_tasks=n_chunks,
    )
    if write_fraction > 0:
        sim.run_scaled_stage(
            "build/redistribute/shuffle",
            TaskCost(shuffle_bytes=int(total_bytes * write_fraction)),
            min_tasks=n_chunks,
        )
        sim.run_scaled_stage(
            "build/redistribute/write",
            TaskCost(write_bytes=int(total_bytes * write_fraction)),
            min_tasks=n_chunks,
        )
    return sim.fresh_report()

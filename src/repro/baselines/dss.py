"""Dss: Distributed Sequential Scan — the exact, brute-force baseline.

The paper's ground-truth generator: "the vanilla full scan solution that
scans all data partitions in parallel to generate the exact answer set".
Its recall is 1.0 by construction and its simulated query time is the cost
of streaming the entire dataset off disk, which is what makes it
"prohibitively high and impractical" (Fig. 7).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStats
from repro.cluster import ClusterSimulator, CostModel, TaskCost, ops_euclidean
from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, knn_bruteforce, knn_merge
from repro.storage import PartitionFile, SimulatedDFS

__all__ = ["DssScanner"]


class DssScanner:
    """Exact distributed scan over DFS-resident partitions."""

    def __init__(
        self,
        dfs: SimulatedDFS,
        model: CostModel,
        cost_scale: float,
        series_length: int,
    ) -> None:
        self.dfs = dfs
        self.model = model
        self.cost_scale = cost_scale
        self.series_length = series_length

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        *,
        n_partitions: int = 32,
        model: CostModel | None = None,
        dfs: SimulatedDFS | None = None,
        cost_scale: float = 1.0,
    ) -> "DssScanner":
        """Lay the dataset out across DFS partitions (no index is built)."""
        if n_partitions < 1:
            raise ConfigurationError("n_partitions must be >= 1")
        dfs = dfs if dfs is not None else SimulatedDFS()
        for i, chunk in enumerate(dataset.split_into_chunks(n_partitions)):
            part = PartitionFile.from_clusters(
                f"dss{i}", {"all": (chunk.ids, chunk.values)}
            )
            dfs.write_partition(part)
        return cls(dfs, model or CostModel(), cost_scale, dataset.length)

    @property
    def build_sim_seconds(self) -> float:
        """Dss builds nothing; the paper omits it from Fig. 8 accordingly."""
        return 0.0

    def knn(self, query: np.ndarray, k: int) -> BaselineResult:
        """Exact kNN by scanning every partition and merging local top-k."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        t0 = time.perf_counter()
        sim = ClusterSimulator(self.model)
        partials = []
        costs = []
        examined = 0
        data_bytes = 0
        names = tuple(self.dfs.list_partitions())
        for pname in names:
            part = self.dfs.read_partition(pname)
            ids, vals = part.read_all()
            partials.append(knn_bruteforce(query, vals, ids, k))
            examined += part.record_count
            data_bytes += part.nbytes
            costs.append(
                TaskCost(
                    read_bytes=int(part.nbytes * self.cost_scale),
                    cpu_ops=int(
                        part.record_count
                        * ops_euclidean(part.series_length)
                        * self.cost_scale
                    ),
                )
            )
        ids, dists = knn_merge(partials, k)
        sim.run_stage("query/scan", costs)
        report = sim.fresh_report()
        return BaselineResult(
            ids,
            dists,
            BaselineStats(
                system="Dss",
                k=k,
                partitions_loaded=names,
                records_examined=examined,
                data_bytes=data_bytes,
                sim_seconds=report.total_seconds,
                wall_seconds=time.perf_counter() - t0,
            ),
        )

"""DPiSAX baseline: massively distributed partitioned iSAX ([65], ICDM'17).

DPiSAX samples the dataset, builds a *partitioning table* — a binary
splitting of the iSAX word space balanced against the sample — routes every
record to the single cell covering its word, and builds an independent
iSAX binary tree inside each cell/partition.  A query is routed to exactly
one partition and answered from the deepest matching node of that
partition's local tree.

Two properties drive its evaluation profile in the paper:

* the routing is purely iSAX-based (two lossy quantisations deep), and the
  search never leaves one partition — recall around 10%;
* maintaining its partitioning table requires repeated passes over the
  sampled words ("inefficient updates to its data structures"), giving it
  the slowest index construction (Fig. 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    BaselineStats,
    partition_scan_cost,
    simulate_distributed_build,
)
from repro.baselines.isax_tree import ISaxTree
from repro.cluster import ClusterSimulator, CostModel, TaskCost, ops_paa
from repro.exceptions import ConfigurationError
from repro.series import ISaxSpace, ISaxWord, SeriesDataset, knn_bruteforce, paa_transform
from repro.storage import PartitionFile, SimulatedDFS

__all__ = ["DpisaxConfig", "DpisaxIndex"]

_TABLE_UPDATE_OPS_PER_RECORD = 33_000
"""Extra per-record conversion work modelling DPiSAX's partitioning-table
maintenance, calibrated so its construction time lands ~4-6x above
CLIMBER's (paper Fig. 8(a): ~160 min vs ~27 min at 200 GB)."""


@dataclass(frozen=True)
class DpisaxConfig:
    """Knobs of the DPiSAX reproduction (defaults follow the paper's setup)."""

    word_length: int = 16
    max_bits: int = 8
    capacity: int | None = None
    leaf_capacity: int = 64
    sample_fraction: float = 0.1
    n_input_partitions: int = 32
    seed: int = 0
    cost_scale: float = 1.0
    sim_partition_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.word_length < 1 or self.max_bits < 1:
            raise ConfigurationError("word_length and max_bits must be >= 1")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if self.leaf_capacity < 1:
            raise ConfigurationError("leaf_capacity must be >= 1")


@dataclass
class _Cell:
    """One node of the partitioning table (a binary split of the word space)."""

    word: ISaxWord
    split_segment: int = -1
    children: list["_Cell"] = field(default_factory=list)
    partition: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children


class DpisaxIndex:
    """A built DPiSAX index: partitioning table + per-partition iSAX trees."""

    def __init__(
        self,
        space: ISaxSpace,
        table: _Cell,
        dfs: SimulatedDFS,
        local_trees: dict[int, ISaxTree],
        model: CostModel,
        config: DpisaxConfig,
        build_sim_seconds: float,
        n_partitions: int,
    ) -> None:
        self.space = space
        self.table = table
        self.dfs = dfs
        self.local_trees = local_trees
        self.model = model
        self.config = config
        self.build_sim_seconds = build_sim_seconds
        self.n_partitions = n_partitions

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        config: DpisaxConfig | None = None,
        model: CostModel | None = None,
        dfs: SimulatedDFS | None = None,
    ) -> "DpisaxIndex":
        config = config or DpisaxConfig()
        model = model or CostModel()
        dfs = dfs if dfs is not None else SimulatedDFS()
        rng = np.random.default_rng(config.seed)
        space = ISaxSpace(config.word_length, dataset.length, config.max_bits)
        capacity = config.capacity or dfs.block_records(dataset.length)

        # Sample and encode.
        sample = dataset.sample(config.sample_fraction, rng)
        alpha = sample.count / dataset.count
        sample_syms = space.encode_paa(
            paa_transform(sample.values, config.word_length)
        )

        # Partitioning table: split the fullest cell on the most balanced
        # segment until every cell's estimated size fits the capacity.
        root = _Cell(space.root_word())
        cls._split_cell(root, sample_syms, np.arange(sample.count), space,
                        capacity * alpha)

        # Route the entire dataset and materialise partitions.
        all_syms = space.encode_paa(paa_transform(dataset.values, config.word_length))
        leaf_cells: list[_Cell] = []
        stack = [root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                cell.partition = len(leaf_cells)
                leaf_cells.append(cell)
            else:
                stack.extend(cell.children)

        assignments = np.array(
            [cls._route(root, row, space) for row in all_syms], dtype=np.int64
        )
        local_trees: dict[int, ISaxTree] = {}
        for pid in range(len(leaf_cells)):
            rows = np.flatnonzero(assignments == pid)
            if rows.shape[0] == 0:
                continue
            part = PartitionFile.from_clusters(
                f"dpisax{pid}",
                {str(leaf_cells[pid].word): (dataset.ids[rows], dataset.values[rows])},
            )
            dfs.write_partition(part)
            tree = ISaxTree(space, config.leaf_capacity)
            tree.bulk_load(all_syms[rows], np.arange(rows.shape[0]))
            local_trees[pid] = tree

        per_record_ops = (
            ops_paa(dataset.length)
            + 8 * config.word_length
            + _TABLE_UPDATE_OPS_PER_RECORD
        )
        report = simulate_distributed_build(
            model,
            dataset,
            cost_scale=config.cost_scale,
            n_chunks=config.n_input_partitions,
            sample_fraction=config.sample_fraction,
            per_record_ops=per_record_ops,
        )
        return cls(
            space, root, dfs, local_trees, model, config,
            report.total_seconds, len(leaf_cells),
        )

    @staticmethod
    def _split_cell(
        cell: _Cell,
        sample_syms: np.ndarray,
        rows: np.ndarray,
        space: ISaxSpace,
        capacity_est: float,
    ) -> None:
        if rows.shape[0] <= capacity_est:
            return
        # Choose the splittable segment whose next bit is most balanced.
        best_seg, best_balance = -1, 2.0
        for seg in range(space.word_length):
            if cell.word.bits[seg] >= space.max_bits:
                continue
            bit_pos = space.max_bits - cell.word.bits[seg] - 1
            ones = int(((sample_syms[rows, seg] >> bit_pos) & 1).sum())
            balance = abs(ones / rows.shape[0] - 0.5)
            if balance < best_balance:
                best_seg, best_balance = seg, balance
        if best_seg < 0:
            return  # cardinality exhausted
        w0, w1 = cell.word.split(best_seg)
        bit_pos = space.max_bits - w0.bits[best_seg]
        bits = (sample_syms[rows, best_seg] >> bit_pos) & 1
        cell.split_segment = best_seg
        for word, mask in ((w0, bits == 0), (w1, bits == 1)):
            child = _Cell(word)
            cell.children.append(child)
            DpisaxIndex._split_cell(child, sample_syms, rows[mask], space,
                                    capacity_est)

    @staticmethod
    def _route(root: _Cell, symbol_row: np.ndarray, space: ISaxSpace) -> int:
        cell = root
        while not cell.is_leaf:
            seg = cell.split_segment
            child_bits = cell.children[0].word.bits[seg]
            bit = (int(symbol_row[seg]) >> (space.max_bits - child_bits)) & 1
            cell = cell.children[bit]
        return cell.partition

    # -- introspection -----------------------------------------------------------

    @property
    def global_index_nbytes(self) -> int:
        """Size of the partitioning table (the broadcast structure)."""
        n_cells = 0
        stack = [self.table]
        while stack:
            cell = stack.pop()
            n_cells += 1
            stack.extend(cell.children)
        # word (w symbols + w bit widths) + split metadata, 2 bytes each.
        return n_cells * (4 * self.space.word_length + 8)

    # -- query ------------------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int) -> BaselineResult:
        """Approximate kNN: one partition, deepest local-tree node."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        t0 = time.perf_counter()
        sim = ClusterSimulator(self.model)
        q_syms = self.space.encode_paa(
            paa_transform(query.reshape(1, -1), self.config.word_length)
        )[0]
        pid = self._route(self.table, q_syms, self.space)
        sim.run_driver_step(
            "query/route",
            TaskCost(cpu_ops=64 * self.space.word_length),
        )
        pname = f"dpisax{pid}"
        if not self.dfs.has_partition(pname):
            sim.run_stage("query/scan", [])
            report = sim.fresh_report()
            return BaselineResult(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                BaselineStats("DPiSAX", k, (), 0, 0,
                              report.total_seconds, time.perf_counter() - t0),
            )
        part = self.dfs.read_partition(pname)
        ids, vals = part.read_all()
        node = self.local_trees[pid].descend(q_syms)
        rows = node.rows if node.rows is not None else np.arange(ids.shape[0])
        if rows.shape[0] < k:  # expand within the partition
            rows = np.arange(ids.shape[0])
        out_ids, out_d = knn_bruteforce(query, vals[rows], ids[rows], k)
        sim.run_stage(
            "query/scan",
            [
                partition_scan_cost(
                    part, self.config.cost_scale, self.config.sim_partition_bytes
                )
            ],
        )
        report = sim.fresh_report()
        return BaselineResult(
            out_ids,
            out_d,
            BaselineStats(
                system="DPiSAX",
                k=k,
                partitions_loaded=(pname,),
                records_examined=int(rows.shape[0]),
                data_bytes=part.nbytes,
                sim_seconds=report.total_seconds,
                wall_seconds=time.perf_counter() - t0,
            ),
        )

"""HNSW baseline: graph-based ANN standing in for ParlayANN-HNSW ([41], [42]).

A from-scratch Hierarchical Navigable Small World implementation: layered
proximity graphs with exponentially decaying level assignment, greedy
descent through the upper layers, and beam (ef) search at layer 0.  Table I
needs its three behaviours:

* recall around 0.9 — far above the iSAX systems, slightly below exact;
* sub-second in-memory queries but *very* expensive graph construction
  (the paper: 16 hours for one billion vectors even with ParlayANN's
  parallelism);
* single-node memory bound — it fails (``X``) one step earlier than
  Odyssey, at data sizes beyond one node's RAM.

The implementation counts its distance computations; the simulated times
convert those counts with a native-code cost model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStats
from repro.cluster import CostModel, ops_euclidean
from repro.exceptions import ConfigurationError, MemoryBudgetExceeded
from repro.series import SeriesDataset

__all__ = ["HnswConfig", "HnswIndex"]

_NATIVE_SOFTWARE_FACTOR = 2.0
"""ParlayANN is heavily optimised C++."""

_GRAPH_OVERHEAD_FACTOR = 1.1
"""Graph links + vectors relative to raw data in memory.  Calibrated to
Table I's boundary: 400 GB fits one 512 GB node, 600 GB does not."""


@dataclass(frozen=True)
class HnswConfig:
    """Standard HNSW hyper-parameters (defaults follow common practice)."""

    m: int = 8
    ef_construction: int = 64
    ef_search: int = 64
    seed: int = 0
    cost_scale: float = 1.0
    memory_usable_fraction: float = 0.9
    base_query_latency_s: float = 0.1
    parameter_scale_factor: float = 15.0
    """Construction-cost correction for paper-grade hyper-parameters:
    billion-scale HNSW builds use M=32-64 and efConstruction=128-200 (an
    order of magnitude more distance computations per insert than our
    scaled M/efC), which wall-clock simulation must reflect."""

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ConfigurationError("m must be >= 2")
        if self.ef_construction < 1 or self.ef_search < 1:
            raise ConfigurationError("ef parameters must be >= 1")

    @property
    def m_max0(self) -> int:
        """Layer-0 degree bound (2M, as in the HNSW paper)."""
        return 2 * self.m

    @property
    def level_lambda(self) -> float:
        return 1.0 / math.log(self.m)


class HnswIndex:
    """A built HNSW graph over one dataset (single-node, in-memory)."""

    def __init__(
        self,
        dataset: SeriesDataset,
        config: HnswConfig,
        model: CostModel,
        graph: list[list[dict[int, np.ndarray]]],
        entry: int,
        top_level: int,
        build_dist_comps: int,
    ) -> None:
        self._data = dataset.values
        self._ids = dataset.ids
        self.config = config
        self.model = model
        self._layers = graph
        self._entry = entry
        self._top = top_level
        self.build_dist_comps = build_dist_comps
        self.build_sim_seconds = self._simulate_build_seconds(build_dist_comps)

    # -- cost conversion -----------------------------------------------------------

    def _log_correction(self) -> float:
        """Per-operation growth factor from our scale to paper scale.

        HNSW search cost per insert/query grows ~log(N); the paper-scale
        dataset is ``cost_scale`` times larger than the one we measured on.
        """
        cfg = self.config
        n_actual = self._data.shape[0]
        n_paper = max(n_actual, int(n_actual * cfg.cost_scale))
        return math.log2(max(n_paper, 4)) / math.log2(max(n_actual, 4))

    def _simulate_build_seconds(self, dist_comps: int) -> float:
        """Paper-scale construction seconds from measured distance counts.

        Total work scales with the record count (``cost_scale``), the
        per-insert log growth, and the paper-grade hyper-parameter factor.
        """
        cfg = self.config
        ops = (
            dist_comps
            * cfg.cost_scale
            * self._log_correction()
            * cfg.parameter_scale_factor
            * ops_euclidean(self._data.shape[1])
            * _NATIVE_SOFTWARE_FACTOR
        )
        return ops / (self.model.cores_per_node * self.model.cpu_ops_per_s)

    def _simulate_query_seconds(self, dist_comps: int) -> float:
        """Paper-scale per-query seconds.

        A query's cost does *not* scale with the record count — only with
        the ~log(N) search depth — so ``cost_scale`` does not appear here.
        """
        ops = (
            dist_comps
            * self._log_correction()
            * ops_euclidean(self._data.shape[1])
            * _NATIVE_SOFTWARE_FACTOR
        )
        return ops / self.model.cpu_ops_per_s

    # -- construction ---------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        config: HnswConfig | None = None,
        model: CostModel | None = None,
    ) -> "HnswIndex":
        """Insert every series; raises MemoryBudgetExceeded beyond one node."""
        config = config or HnswConfig()
        model = model or CostModel()
        required = int(dataset.nbytes * config.cost_scale * _GRAPH_OVERHEAD_FACTOR)
        budget = int(
            model.memory_per_node_gb * 1e9 * config.memory_usable_fraction
        )
        if required > budget:
            raise MemoryBudgetExceeded(required, budget)

        rng = np.random.default_rng(config.seed)
        data = dataset.values
        n = data.shape[0]
        levels = np.minimum(
            (-np.log(rng.uniform(1e-12, 1.0, size=n)) * config.level_lambda).astype(int),
            24,
        )
        max_level = int(levels.max(initial=0))
        # layers[l] = adjacency dict: node -> np.ndarray of neighbour ids.
        layers: list[dict[int, np.ndarray]] = [dict() for _ in range(max_level + 1)]
        counter = [0]

        def dist_to(q: np.ndarray, nodes: np.ndarray) -> np.ndarray:
            counter[0] += len(nodes)
            diff = data[nodes] - q
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))

        def search_layer(q, entries, entry_dists, ef, layer):
            """Beam search; returns (ids, dists) of the ef closest found."""
            import heapq

            visited = set(entries.tolist())
            cand = [(float(d), int(v)) for d, v in zip(entry_dists, entries)]
            heapq.heapify(cand)
            result = [(-float(d), int(v)) for d, v in zip(entry_dists, entries)]
            heapq.heapify(result)
            while len(result) > ef:
                heapq.heappop(result)
            while cand:
                d, v = heapq.heappop(cand)
                if result and d > -result[0][0] and len(result) >= ef:
                    break
                neigh = layers[layer].get(v)
                if neigh is None or neigh.size == 0:
                    continue
                new = np.array([u for u in neigh if u not in visited], dtype=np.int64)
                if new.size == 0:
                    continue
                visited.update(new.tolist())
                nd = dist_to(q, new)
                worst = -result[0][0] if result else np.inf
                for dd, u in zip(nd, new):
                    if len(result) < ef or dd < worst:
                        heapq.heappush(cand, (float(dd), int(u)))
                        heapq.heappush(result, (-float(dd), int(u)))
                        if len(result) > ef:
                            heapq.heappop(result)
                        worst = -result[0][0]
            out = sorted(((-d, v) for d, v in result))
            return (
                np.array([v for _, v in out], dtype=np.int64),
                np.array([d for d, _ in out], dtype=np.float64),
            )

        def connect(node, neighbours, layer, m_max):
            layers[layer][node] = neighbours.copy()
            for u in neighbours:
                existing = layers[layer].get(int(u))
                merged = (
                    np.concatenate([existing, [node]])
                    if existing is not None
                    else np.array([node], dtype=np.int64)
                )
                if merged.size > m_max:
                    d = dist_to(data[int(u)], merged)
                    merged = merged[np.argsort(d, kind="stable")[:m_max]]
                layers[layer][int(u)] = merged

        entry, top = 0, int(levels[0])
        for lvl in range(top + 1):
            layers[lvl][0] = np.empty(0, dtype=np.int64)
        for i in range(1, n):
            q = data[i]
            lvl = int(levels[i])
            ep = np.array([entry], dtype=np.int64)
            epd = dist_to(q, ep)
            for layer in range(top, lvl, -1):
                ep, epd = search_layer(q, ep, epd, 1, layer)
            for layer in range(min(top, lvl), -1, -1):
                cand_ids, cand_d = search_layer(
                    q, ep, epd, config.ef_construction, layer
                )
                m_max = config.m_max0 if layer == 0 else config.m
                chosen = cand_ids[: config.m]
                connect(i, chosen, layer, m_max)
                ep, epd = cand_ids, cand_d
            if lvl > top:
                for layer in range(top + 1, lvl + 1):
                    layers[layer][i] = np.empty(0, dtype=np.int64)
                entry, top = i, lvl
        return cls(dataset, config, model, layers, entry, top, counter[0])

    # -- query ---------------------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int) -> BaselineResult:
        """Approximate kNN via greedy descent + layer-0 beam search."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        t0 = time.perf_counter()
        q = np.asarray(query, dtype=np.float64).ravel()
        counter = [0]
        data = self._data

        def dist_to(nodes: np.ndarray) -> np.ndarray:
            counter[0] += len(nodes)
            diff = data[nodes] - q
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))

        import heapq

        ep = np.array([self._entry], dtype=np.int64)
        epd = dist_to(ep)
        for layer in range(self._top, 0, -1):
            improved = True
            while improved:
                improved = False
                neigh = self._layers[layer].get(int(ep[0]))
                if neigh is None or neigh.size == 0:
                    break
                nd = dist_to(neigh)
                j = int(np.argmin(nd))
                if nd[j] < epd[0]:
                    ep = np.array([neigh[j]], dtype=np.int64)
                    epd = np.array([nd[j]])
                    improved = True

        ef = max(self.config.ef_search, k)
        visited = {int(ep[0])}
        cand = [(float(epd[0]), int(ep[0]))]
        result = [(-float(epd[0]), int(ep[0]))]
        while cand:
            d, v = heapq.heappop(cand)
            if result and d > -result[0][0] and len(result) >= ef:
                break
            neigh = self._layers[0].get(v)
            if neigh is None or neigh.size == 0:
                continue
            new = np.array([u for u in neigh if u not in visited], dtype=np.int64)
            if new.size == 0:
                continue
            visited.update(new.tolist())
            nd = dist_to(new)
            for dd, u in zip(nd, new):
                if len(result) < ef or dd < -result[0][0]:
                    heapq.heappush(cand, (float(dd), int(u)))
                    heapq.heappush(result, (-float(dd), int(u)))
                    if len(result) > ef:
                        heapq.heappop(result)
        out = sorted(((-d, v) for d, v in result))[:k]
        ids = np.array([self._ids[v] for _, v in out], dtype=np.int64)
        dists = np.array([d for d, _ in out], dtype=np.float64)
        sim_seconds = self.config.base_query_latency_s + self._simulate_query_seconds(
            counter[0]
        )
        return BaselineResult(
            ids,
            dists,
            BaselineStats(
                system="ParlayANN",
                k=k,
                partitions_loaded=(),
                records_examined=counter[0],
                data_bytes=counter[0] * data.shape[1] * 8,
                sim_seconds=sim_seconds,
                wall_seconds=time.perf_counter() - t0,
            ),
        )

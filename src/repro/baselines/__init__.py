"""Baseline systems of the paper's evaluation.

Distributed disk-based: :class:`DssScanner` (exact scan),
:class:`DpisaxIndex` (DPiSAX), :class:`TardisIndex` (TARDIS).
Memory-based (Table I): :class:`OdysseyIndex` (exact, distributed),
:class:`HnswIndex` (graph ANN, single node, stands in for ParlayANN-HNSW).
"""

from repro.baselines.common import (
    BaselineResult,
    BaselineStats,
    simulate_distributed_build,
)
from repro.baselines.dpisax import DpisaxConfig, DpisaxIndex
from repro.baselines.dss import DssScanner
from repro.baselines.hnsw import HnswConfig, HnswIndex
from repro.baselines.isax_tree import ISaxTree, ISaxTreeNode
from repro.baselines.odyssey import OdysseyConfig, OdysseyIndex
from repro.baselines.tardis import SigTreeNode, TardisConfig, TardisIndex

__all__ = [
    "BaselineResult",
    "BaselineStats",
    "simulate_distributed_build",
    "DssScanner",
    "DpisaxConfig",
    "DpisaxIndex",
    "TardisConfig",
    "TardisIndex",
    "SigTreeNode",
    "OdysseyConfig",
    "OdysseyIndex",
    "HnswConfig",
    "HnswIndex",
    "ISaxTree",
    "ISaxTreeNode",
]

"""Odyssey baseline: distributed in-memory *exact* kNN search ([16], VLDB'23).

Odyssey keeps the whole dataset and an iSAX-tree index in the cluster's
main memory and answers kNN queries exactly with lower-bound pruning.
For Table I we need its three behaviours:

* recall is always 1.0 (exact search);
* construction and queries are much faster than disk-based CLIMBER — one
  pass over the data, native code, no re-distribution or replication;
* it cannot run at all once data + index exceed cluster memory (the ``X``
  cells): :class:`~repro.exceptions.MemoryBudgetExceeded` is raised.

The exact search is a real branch-and-bound over a real iSAX tree
(:mod:`repro.baselines.isax_tree`); tests verify exactness against brute
force.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStats
from repro.baselines.isax_tree import ISaxTree
from repro.cluster import ClusterSimulator, CostModel, TaskCost, ops_paa
from repro.exceptions import ConfigurationError, MemoryBudgetExceeded
from repro.series import ISaxSpace, SeriesDataset, paa_transform

__all__ = ["OdysseyConfig", "OdysseyIndex"]

_NATIVE_SOFTWARE_FACTOR = 4.0
"""Odyssey is native C: far less per-op overhead than the JVM systems."""

_INDEX_OVERHEAD_FACTOR = 1.05
"""In-memory footprint relative to raw data (tree nodes, PAA summaries).
Calibrated to Table I's boundary: 800 GB still fits the 2 x 512 GB
cluster, 1 000 GB does not."""


@dataclass(frozen=True)
class OdysseyConfig:
    """Knobs of the Odyssey reproduction."""

    word_length: int = 16
    max_bits: int = 8
    leaf_capacity: int = 128
    cost_scale: float = 1.0
    memory_usable_fraction: float = 0.85
    memory_bandwidth_gb_s: float = 20.0
    base_query_latency_s: float = 0.4
    visited_fraction_scale: float = 0.1
    """Pruning-selectivity correction from our scale to the paper's: at
    billion-record density the k-NN ball is far tighter, so the MINDIST
    bound prunes a much larger share of the tree than on a 10^4-record
    stand-in.  The measured visited fraction is multiplied by this factor
    before it enters the simulated query time."""

    def __post_init__(self) -> None:
        if self.word_length < 1 or self.leaf_capacity < 1:
            raise ConfigurationError("word_length and leaf_capacity must be >= 1")
        if not 0.0 < self.memory_usable_fraction <= 1.0:
            raise ConfigurationError("memory_usable_fraction must be in (0, 1]")


class OdysseyIndex:
    """An in-memory exact kNN index (iSAX tree + branch-and-bound)."""

    def __init__(
        self,
        dataset: SeriesDataset,
        tree: ISaxTree,
        model: CostModel,
        config: OdysseyConfig,
        build_sim_seconds: float,
    ) -> None:
        self._dataset = dataset
        self._tree = tree
        self.model = model
        self.config = config
        self.build_sim_seconds = build_sim_seconds

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        config: OdysseyConfig | None = None,
        model: CostModel | None = None,
    ) -> "OdysseyIndex":
        """Build in memory; raises MemoryBudgetExceeded beyond capacity."""
        config = config or OdysseyConfig()
        model = model or CostModel()
        required = int(
            dataset.nbytes * config.cost_scale * _INDEX_OVERHEAD_FACTOR
        )
        budget = int(model.total_memory_bytes * config.memory_usable_fraction)
        if required > budget:
            raise MemoryBudgetExceeded(required, budget)

        space = ISaxSpace(config.word_length, dataset.length, config.max_bits)
        paa = paa_transform(dataset.values, config.word_length)
        tree = ISaxTree(space, config.leaf_capacity)
        tree.bulk_load(space.encode_paa(paa), dataset.ids)

        native = replace(
            model,
            software_factor=_NATIVE_SOFTWARE_FACTOR,
            stage_overhead_s=1.0,
            replication_factor=1,
        )
        sim = ClusterSimulator(native)
        per_record = ops_paa(dataset.length) + 40 * config.word_length
        sim.run_scaled_stage(
            "build/load",
            TaskCost(
                read_bytes=int(dataset.nbytes * config.cost_scale),
                cpu_ops=int(dataset.count * config.cost_scale) * per_record,
            ),
            min_tasks=model.total_cores,
        )
        return cls(dataset, tree, model, config, sim.fresh_report().total_seconds)

    def knn(self, query: np.ndarray, k: int) -> BaselineResult:
        """Exact kNN (recall 1.0 by construction)."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        t0 = time.perf_counter()
        q = np.asarray(query, dtype=np.float64).ravel()
        q_paa = paa_transform(q.reshape(1, -1), self.config.word_length)[0]
        ids, dists, visited = self._tree.exact_knn(
            q, q_paa, self._dataset.values, k
        )
        # Simulated time: base coordination latency + streaming the visited
        # records through memory at the cluster's aggregate bandwidth.
        visited_bytes = (
            (visited / max(1, self._dataset.count))
            * self.config.visited_fraction_scale
            * self._dataset.nbytes
            * self.config.cost_scale
        )
        sim_seconds = self.config.base_query_latency_s + visited_bytes / (
            self.config.memory_bandwidth_gb_s * 1e9 * self.model.n_nodes
        )
        return BaselineResult(
            ids,
            dists,
            BaselineStats(
                system="Odyssey",
                k=k,
                partitions_loaded=(),
                records_examined=visited,
                data_bytes=int(visited_bytes / max(self.config.cost_scale, 1e-12)),
                sim_seconds=sim_seconds,
                wall_seconds=time.perf_counter() - t0,
            ),
        )

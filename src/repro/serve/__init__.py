"""Serving layer: asyncio micro-batching query service over a built index.

The production-shaped front door of the reproduction (ROADMAP's "async
serving layer" item): :class:`QueryService` coalesces concurrent
single-query requests into :meth:`~repro.core.ClimberIndex.knn_batch`
dispatches behind bounded-queue admission control, and every
:class:`QueryResponse` carries degraded-coverage stats (PR 8) plus
serving telemetry (queue delay, end-to-end latency, batch size).
``benchmarks/bench_serving.py`` is the matching load generator
(QPS + p50/p90/p99 under concurrency).

Batching is bit-transparent — a served answer is byte-identical to a
direct ``index.knn`` call — and the service leans on the narrowed
:class:`~repro.storage.SimulatedDFS` lock (same PR) so concurrent
batches overlap in storage instead of convoying.
"""

from repro.serve.service import QueryResponse, QueryService, ServeConfig

__all__ = ["QueryService", "QueryResponse", "ServeConfig"]

"""Asyncio query service: micro-batching, admission control, degraded stats.

The serving half of the ROADMAP's "millions of users" north star.  A
:class:`QueryService` fronts one :class:`~repro.core.ClimberIndex` with an
asyncio request path shaped like a production query tier:

* **micro-batching** — incoming single-query requests are coalesced into
  :meth:`~repro.core.ClimberIndex.knn_batch` calls (up to
  :attr:`ServeConfig.max_batch` requests, waiting at most
  :attr:`ServeConfig.max_delay_s` for stragglers), so the batch pipeline's
  shared signature/routing work and the DFS read cache amortise across
  concurrent users exactly as they do across rows of an offline batch;
* **admission control** — a bounded queue caps in-flight work.  In
  ``"reject"`` mode an arrival past :attr:`ServeConfig.queue_limit` fails
  fast with :class:`~repro.exceptions.ServiceOverloadedError` (load
  shedding); in ``"block"`` mode it backpressures the caller instead;
* **degraded-coverage responses** — each :class:`QueryResponse` carries
  the query's :class:`~repro.core.index.QueryStats` plus serving-side
  telemetry (queue delay, end-to-end latency, the batch it rode in), so a
  client can see *both* that its answer was computed without some
  partitions (``coverage``/``degraded``, PR 8) and what the service added
  on top;
* **service metrics** — ``serve.*`` counters/histograms on the index's
  registry (requests, rejections, batch sizes, queue depth, end-to-end
  latency), exported through the same ``repro.obs/v1`` snapshots as every
  other subsystem.

Correctness contract: micro-batching is *transparent*.  ``knn_batch`` is
bit-identical to per-row ``knn`` calls (the PR-6 parity suite), and batch
composition cannot leak between requests, so a response is byte-identical
to what the caller would have computed alone — the serving parity test
and ``benchmarks/bench_serving.py``'s oracle both pin this down.  The
service relies on the narrowed DFS lock (same PR): with reads of distinct
partitions overlapping, concurrent batches actually run concurrently
instead of convoying on storage sleeps.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.index import ClimberIndex, QueryStats
from repro.exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs import MetricsRegistry

__all__ = ["ServeConfig", "QueryResponse", "QueryService"]

#: Histogram bounds for batch-size observations (requests per dispatch).
_BATCH_SIZE_BOUNDS = tuple(float(2 ** i) for i in range(11))


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the micro-batching query service.

    Parameters
    ----------
    max_batch:
        Most requests coalesced into one ``knn_batch`` dispatch.
    max_delay_s:
        Longest a request waits for companions before its batch is
        dispatched anyway.  The knob trades latency for batching: 0
        dispatches immediately (every batch is whatever already queued),
        a few milliseconds lets bursts coalesce.
    queue_limit:
        Bound of the admission queue (requests admitted but not yet
        dispatched).  Arrivals past it are rejected or blocked per
        ``admission``.
    admission:
        ``"reject"`` (default) — fail fast with
        :class:`~repro.exceptions.ServiceOverloadedError` when the queue
        is full; ``"block"`` — suspend the submitting coroutine until
        space frees (backpressure).
    worker_threads:
        Threads executing dispatched ``knn_batch`` calls.  1 serialises
        batch execution (the batcher still collects the next batch while
        the current one runs); more lets batches overlap in storage waits
        — useful under fault-injected stragglers, where the narrowed DFS
        lock lets distinct-partition reads proceed in parallel.
    """

    max_batch: int = 32
    max_delay_s: float = 0.002
    queue_limit: int = 256
    admission: str = "reject"
    worker_threads: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ConfigurationError("max_delay_s must be >= 0")
        if self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if self.admission not in ("reject", "block"):
            raise ConfigurationError(
                f"admission must be 'reject' or 'block', "
                f"got {self.admission!r}"
            )
        if self.worker_threads < 1:
            raise ConfigurationError("worker_threads must be >= 1")


@dataclass(frozen=True)
class QueryResponse:
    """One served kNN answer plus per-response serving telemetry."""

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats
    latency_s: float
    """End-to-end: submit to response, including queue and batch waits."""
    queue_delay_s: float
    """Admission to dispatch — how long the request waited to be batched."""
    batch_size: int
    """Requests in the ``knn_batch`` dispatch this response rode in."""
    stopped_early: bool = False
    """True when the request ran progressively and its early-stopping rule
    fired — the answer was served before full plan coverage, with the
    forgone partitions recorded in ``stats.partitions_forgone``."""

    @property
    def degraded(self) -> bool:
        """True when partitions were skipped (see :class:`QueryStats`)."""
        return self.stats.degraded

    @property
    def coverage(self) -> float:
        """Fraction of wanted partitions actually read (1.0 = complete)."""
        return self.stats.coverage

    @property
    def visit_coverage(self) -> float:
        """Fraction of the routed plan visited (early stops count here)."""
        return self.stats.visit_coverage


class _Request:
    __slots__ = ("query", "key", "future", "t_submit", "t_dispatch")

    def __init__(self, query, key, future, t_submit):
        self.query = query
        self.key = key
        self.future = future
        self.t_submit = t_submit
        self.t_dispatch = 0.0


_SHUTDOWN = object()


class QueryService:
    """Serve one :class:`~repro.core.ClimberIndex` to concurrent clients.

    Usage::

        service = QueryService(index, ServeConfig(max_batch=16))
        async with service:
            response = await service.submit(query, k=10)

    ``submit`` may be awaited from any number of concurrent coroutines;
    requests sharing ``(k, variant, adaptive_factor, on_partition_failure,
    early_stop, confidence)`` coalesce into shared ``knn_batch`` (or
    ``knn_batch_progressive``) dispatches.  The event loop is
    never blocked by index work: dispatches run on a private thread pool
    (``config.worker_threads`` wide), and the index's own ``n_workers``
    parallelism applies within each dispatch.
    """

    def __init__(
        self,
        index: ClimberIndex,
        config: ServeConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.index = index
        self.config = config or ServeConfig()
        #: ``serve.*`` metrics land next to the index's ``query.*`` metrics
        #: by default so one ``repro.obs/v1`` snapshot shows both tiers.
        self.registry = (
            registry if registry is not None else index.telemetry.registry
        )
        self._c_requests = self.registry.counter("serve.requests")
        self._c_responses = self.registry.counter("serve.responses")
        self._c_rejected = self.registry.counter("serve.rejected")
        self._c_batches = self.registry.counter("serve.batches")
        self._c_degraded = self.registry.counter("serve.degraded")
        self._c_failures = self.registry.counter("serve.failures")
        self._c_early_stopped = self.registry.counter("serve.early_stopped")
        self._c_forgone = self.registry.counter("serve.partitions_forgone")
        self._g_queue_depth = self.registry.gauge("serve.queue_depth")
        self._h_batch_size = self.registry.histogram(
            "serve.batch_size", bounds=_BATCH_SIZE_BOUNDS
        )
        self._h_latency = self.registry.histogram("serve.latency_s")
        self._h_queue_delay = self.registry.histogram("serve.queue_delay_s")
        self._queue: asyncio.Queue | None = None
        self._space: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle --------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._batcher is not None

    async def start(self) -> "QueryService":
        """Start the batcher; idempotent-safe to call once per lifetime."""
        if self.running:
            raise ConfigurationError("service already started")
        self._loop = asyncio.get_running_loop()
        # The queue is unbounded; admission control happens in submit()
        # against config.queue_limit, so "reject" can fail fast without
        # racing a bounded queue's put/get and "block" can wait on an
        # explicit capacity event.
        self._queue = asyncio.Queue()
        self._space = asyncio.Event()
        self._space.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads,
            thread_name_prefix="climber-serve",
        )
        self._batcher = asyncio.ensure_future(self._run())
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        With ``drain`` (default) every admitted request is answered first;
        otherwise pending requests fail with
        :class:`~repro.exceptions.ServiceClosedError`.  In-flight batch
        dispatches always run to completion — the index is left idle.
        """
        if not self.running:
            return
        queue, batcher = self._queue, self._batcher
        self._batcher = None  # new submits fail fast from here on
        self._space.set()  # wake blocked submitters; they see not-running
        if not drain:
            drained: list[_Request] = []
            while not queue.empty():
                item = queue.get_nowait()
                if item is not _SHUTDOWN:
                    drained.append(item)
            for req in drained:
                if not req.future.done():
                    req.future.set_exception(
                        ServiceClosedError("service stopped before dispatch")
                    )
        queue.put_nowait(_SHUTDOWN)
        await batcher
        # Submitters racing the shutdown (woken from a blocked admission
        # wait, or otherwise admitted after the sentinel) may have left
        # requests behind the batcher's exit point.  They would hang on
        # never-dispatched futures — fail them instead.
        while not queue.empty():
            item = queue.get_nowait()
            if item is not _SHUTDOWN and not item.future.done():
                item.future.set_exception(
                    ServiceClosedError("service stopped before dispatch")
                )
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight))
        self._pool.shutdown(wait=True)
        self._pool = None
        self._queue = None
        self._g_queue_depth.set(0)

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request path -----------------------------------------------------------

    async def submit(
        self,
        query: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        early_stop: str | int | None = None,
        confidence: float | None = None,
    ) -> QueryResponse:
        """Admit one kNN query and await its response.

        Arguments mirror :meth:`~repro.core.ClimberIndex.knn`; requests
        with equal argument tuples may share a ``knn_batch`` dispatch
        (answers are unaffected — batching is bit-transparent).

        ``early_stop`` (and its optional ``confidence``) switches the
        request onto the progressive path
        (:meth:`~repro.core.ClimberIndex.knn_batch_progressive`): the
        response is served as soon as the stopping rule fires, with
        ``stopped_early`` set and the forgone partitions recorded in
        ``stats.partitions_forgone`` (``serve.early_stopped`` /
        ``serve.partitions_forgone`` count them service-wide).
        ``early_stop="off"`` runs progressively at full coverage —
        bit-identical answers to the default path.

        Raises
        ------
        ServiceOverloadedError
            ``admission="reject"`` and the queue is at ``queue_limit``.
        ServiceClosedError
            The service is not running, or stopped before this request
            could be dispatched.
        """
        if not self.running:
            raise ServiceClosedError("service is not running")
        self._c_requests.inc()
        while self._queue.qsize() >= self.config.queue_limit:
            if self.config.admission == "reject":
                self._c_rejected.inc()
                raise ServiceOverloadedError(
                    f"admission queue at limit ({self.config.queue_limit})"
                )
            self._space.clear()
            await self._space.wait()
            if not self.running:
                raise ServiceClosedError("service stopped while blocked")
        # Re-check after the admission loop: a blocked submitter can be
        # woken by stop() *via the space event with the queue below its
        # limit* (drain mode empties nothing, but dispatch does), exit the
        # loop, and otherwise enqueue behind the shutdown sentinel — a
        # request the batcher will never see.  stop() also sweeps the
        # queue afterwards, so even a lost race fails fast instead of
        # hanging.
        if not self.running:
            raise ServiceClosedError("service stopped while blocked")
        future = self._loop.create_future()
        req = _Request(
            np.asarray(query, dtype=np.float64),
            (int(k), variant, adaptive_factor, on_partition_failure,
             early_stop, confidence),
            future,
            time.perf_counter(),
        )
        self._queue.put_nowait(req)
        self._g_queue_depth.set(self._queue.qsize())
        return await future

    # -- batcher ----------------------------------------------------------------

    async def _run(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            self._signal_space()
            if first is _SHUTDOWN:
                break
            batch = [first]
            shutdown = False
            deadline = loop.time() + cfg.max_delay_s
            while len(batch) < cfg.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window closed: take whatever is already queued, but
                    # never wait for more.
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                self._signal_space()
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(item)
            self._g_queue_depth.set(self._queue.qsize())
            task = asyncio.ensure_future(self._dispatch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            if shutdown:
                break

    def _signal_space(self) -> None:
        if (self.config.admission == "block"
                and self._queue.qsize() < self.config.queue_limit):
            self._space.set()

    async def _dispatch(self, batch: list[_Request]) -> None:
        """Execute one micro-batch off-loop and resolve its futures.

        Requests are grouped by their argument key — ``knn_batch`` takes
        one ``k``/``variant`` for all rows — and each group runs as one
        call on the service pool.  Group execution order within a batch
        is deterministic (insertion order of first occurrence).
        """
        t_dispatch = time.perf_counter()
        for req in batch:
            req.t_dispatch = t_dispatch
        self._c_batches.inc()
        self._h_batch_size.observe(len(batch))
        groups: dict[tuple, list[_Request]] = {}
        for req in batch:
            groups.setdefault(req.key, []).append(req)
        for key, group in groups.items():
            k, variant, adaptive_factor, on_failure, early_stop, conf = key

            try:
                queries = np.stack([req.query for req in group])

                def run(queries=queries, k=k, variant=variant,
                        adaptive_factor=adaptive_factor,
                        on_failure=on_failure, early_stop=early_stop,
                        conf=conf):
                    if early_stop is None:
                        return self.index.knn_batch(
                            queries, k, variant=variant,
                            adaptive_factor=adaptive_factor,
                            on_partition_failure=on_failure,
                        )
                    return self.index.knn_batch_progressive(
                        queries, k, variant=variant,
                        adaptive_factor=adaptive_factor,
                        on_partition_failure=on_failure,
                        early_stop=early_stop,
                        confidence=conf,
                    )

                results = await self._loop.run_in_executor(self._pool, run)
            except Exception as err:
                self._c_failures.inc(len(group))
                for req in group:
                    if not req.future.done():
                        req.future.set_exception(err)
                continue
            t_done = time.perf_counter()
            # QueryResult rows and final ProgressiveUpdate rows share the
            # ids/distances/stats surface; only the latter carry
            # stopped_early.
            for req, result in zip(group, results):
                latency = t_done - req.t_submit
                self._h_latency.observe(latency)
                self._h_queue_delay.observe(req.t_dispatch - req.t_submit)
                self._c_responses.inc()
                if result.stats.degraded:
                    self._c_degraded.inc()
                stopped_early = bool(getattr(result, "stopped_early", False))
                if stopped_early:
                    self._c_early_stopped.inc()
                forgone = len(result.stats.partitions_forgone)
                if forgone:
                    self._c_forgone.inc(forgone)
                if not req.future.done():
                    req.future.set_result(QueryResponse(
                        ids=result.ids,
                        distances=result.distances,
                        stats=result.stats,
                        latency_s=latency,
                        queue_delay_s=req.t_dispatch - req.t_submit,
                        batch_size=len(batch),
                        stopped_early=stopped_early,
                    ))

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        """Serving-tier counters and latency digests, JSON-able.

        A filtered view of the registry: only ``serve.*`` metrics, so the
        service can be inspected without wading through the index's query
        histograms (those remain available via ``index.stats()``).
        """
        snap = self.registry.snapshot()
        return {
            "running": self.running,
            "config": {
                "max_batch": self.config.max_batch,
                "max_delay_s": self.config.max_delay_s,
                "queue_limit": self.config.queue_limit,
                "admission": self.config.admission,
                "worker_threads": self.config.worker_threads,
            },
            "metrics": {
                kind: {
                    name: value for name, value in metrics.items()
                    if name.startswith("serve.")
                }
                for kind, metrics in snap.items()
                if isinstance(metrics, dict)
            },
        }

"""Exact ground truth for recall measurement (Def. 4).

The paper measures accuracy as recall against the exact answer set
produced by Dss.  Computing ground truth for a batch of queries is a
chunked brute-force scan; results are cached per (dataset, queries, k)
inside one process so repeated bench configurations stay cheap.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, knn_bruteforce

__all__ = ["GroundTruth", "exact_ground_truth"]


class GroundTruth:
    """Exact kNN id sets for a query batch."""

    def __init__(self, query_ids: np.ndarray, neighbor_ids: list[np.ndarray], k: int):
        self.query_ids = query_ids
        self._neighbors = neighbor_ids
        self.k = k

    def __len__(self) -> int:
        return len(self._neighbors)

    def neighbors_of(self, query_index: int) -> np.ndarray:
        """Exact neighbour ids of the ``query_index``-th query."""
        return self._neighbors[query_index]

    def recall_of(self, query_index: int, approx_ids: np.ndarray) -> float:
        """Recall (Def. 4) of one approximate answer set."""
        exact = set(self.neighbors_of(query_index).tolist())
        got = set(np.asarray(approx_ids).tolist())
        if not exact:
            return 1.0
        return len(exact & got) / len(exact)


def exact_ground_truth(
    dataset: SeriesDataset, queries: SeriesDataset, k: int
) -> GroundTruth:
    """Exact k nearest neighbours of every query in ``queries``.

    Ties at the k-th distance are broken by id (deterministic), matching
    :func:`repro.series.knn_bruteforce`.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    neighbors = [
        knn_bruteforce(q, dataset.values, dataset.ids, k)[0]
        for q in queries.values
    ]
    return GroundTruth(queries.ids.copy(), neighbors, k)

"""ASCII table rendering and CSV export for benchmark results.

Every benchmark prints its figure/table as rows comparing the paper's
reported values with our measured (or simulated) values, and optionally
writes the same rows to ``results/*.csv`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["render_table", "write_csv", "fmt_duration"]


def fmt_duration(seconds: float) -> str:
    """Human formatting matching the paper's units (sec below 100, else min)."""
    if seconds != seconds:  # NaN
        return "X"
    if seconds < 100:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}m"


def render_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table with a title rule."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[str(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    return f"== {title} ==\n{header}\n{sep}\n{body}"


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows to CSV, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    cols = list(columns) if columns else list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path

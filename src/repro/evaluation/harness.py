"""Experiment harness shared by every benchmark.

Runs a query workload through any system exposing ``knn(query, k)`` and
aggregates the paper's metrics: recall, simulated query time, partitions
touched, and data accessed.  Every benchmark file builds on this so its
body reads like the experiment description in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.evaluation.groundtruth import GroundTruth
from repro.series import SeriesDataset

__all__ = ["SystemEvaluation", "evaluate_system"]

KnnFn = Callable[[np.ndarray, int], object]


@dataclass(frozen=True)
class SystemEvaluation:
    """Aggregated query metrics of one system on one workload."""

    system: str
    k: int
    n_queries: int
    recall: float
    sim_seconds: float
    wall_seconds: float
    partitions: float
    records_examined: float
    data_bytes: float

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering / CSV export."""
        return {
            "system": self.system,
            "k": self.k,
            "recall": round(self.recall, 3),
            "query_sim_s": round(self.sim_seconds, 2),
            "partitions": round(self.partitions, 2),
            "records": int(self.records_examined),
            "data_mb": round(self.data_bytes / 1e6, 2),
        }


def evaluate_system(
    name: str,
    knn_fn: KnnFn,
    queries: SeriesDataset,
    truth: GroundTruth,
    k: int,
) -> SystemEvaluation:
    """Run every query, compare to ground truth, average the metrics.

    ``knn_fn`` must return an object with ``ids`` and ``stats`` attributes
    (both :class:`~repro.core.index.QueryResult` and
    :class:`~repro.baselines.common.BaselineResult` qualify).
    """
    recalls, sims, walls, parts, recs, data = [], [], [], [], [], []
    for qi, q in enumerate(queries.values):
        res = knn_fn(q, k)
        recalls.append(truth.recall_of(qi, res.ids))
        sims.append(res.stats.sim_seconds)
        walls.append(res.stats.wall_seconds)
        parts.append(res.stats.n_partitions)
        recs.append(res.stats.records_examined)
        data.append(res.stats.data_bytes)
    return SystemEvaluation(
        system=name,
        k=k,
        n_queries=queries.count,
        recall=float(np.mean(recalls)),
        sim_seconds=float(np.mean(sims)),
        wall_seconds=float(np.mean(walls)),
        partitions=float(np.mean(parts)),
        records_examined=float(np.mean(recs)),
        data_bytes=float(np.mean(data)),
    )

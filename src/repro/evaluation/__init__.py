"""Evaluation substrate: ground truth, recall, harness, reporting."""

from repro.evaluation.calibration import calibrate_early_stop
from repro.evaluation.groundtruth import GroundTruth, exact_ground_truth
from repro.evaluation.harness import SystemEvaluation, evaluate_system
from repro.evaluation.reporting import fmt_duration, render_table, write_csv

__all__ = [
    "GroundTruth",
    "exact_ground_truth",
    "SystemEvaluation",
    "evaluate_system",
    "calibrate_early_stop",
    "render_table",
    "write_csv",
    "fmt_duration",
]

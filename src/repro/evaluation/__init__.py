"""Evaluation substrate: ground truth, recall, harness, reporting."""

from repro.evaluation.groundtruth import GroundTruth, exact_ground_truth
from repro.evaluation.harness import SystemEvaluation, evaluate_system
from repro.evaluation.reporting import fmt_duration, render_table, write_csv

__all__ = [
    "GroundTruth",
    "exact_ground_truth",
    "SystemEvaluation",
    "evaluate_system",
    "render_table",
    "write_csv",
    "fmt_duration",
]

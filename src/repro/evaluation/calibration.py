"""Offline calibration of the progressive early-stopping rule.

The ``early_stop="confidence"`` knob needs a mapping from a confidence
level to a stable-streak threshold.  This harness measures it the honest
way: replay a held-out query workload through
:meth:`~repro.core.ClimberIndex.knn_progressive` with stopping *disabled*
and ask, for every candidate streak ``s``, how often the answer at the
moment a streak-``s`` rule *would have* fired already equals the
full-budget answer.  The resulting agreement curve is persisted as a JSON
:class:`~repro.core.progressive.ProgressiveCalibration` sidecar next to
the index partitions and attached via
:meth:`~repro.core.ClimberIndex.attach_calibration`.

Workflow::

    cal = calibrate_early_stop(index, held_out_queries, k=10,
                               path=index_dir / "calibration.json")
    index.attach_calibration(cal)          # or the saved path, later
    result = list(index.knn_progressive(q, 10, early_stop="confidence:0.95"))

Calibration queries must be *held out* from the serving workload — the
curve is an estimate of generalisation, not a memorised answer key.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.progressive import ProgressiveCalibration
from repro.exceptions import ConfigurationError

__all__ = ["calibrate_early_stop"]


def calibrate_early_stop(
    index,
    queries,
    k: int,
    variant: str = "adaptive",
    adaptive_factor: int | None = None,
    on_partition_failure: str | None = None,
    max_streak: int = 8,
    path: str | Path | None = None,
    created: str | None = None,
) -> ProgressiveCalibration:
    """Measure the stop-at-streak agreement curve on held-out queries.

    For every query the full progressive trajectory is replayed once
    (stopping disabled), then every candidate streak ``s`` in
    ``1..max_streak`` is evaluated against it offline: find the first
    update where a streak-``s`` rule would fire (``k`` answers in hand,
    ``stable_steps >= s``) and check whether the answer *set* at that
    point equals the full-budget answer.  A rule that never fires agrees
    by definition (it degrades to full coverage).

    Parameters
    ----------
    index:
        A :class:`~repro.core.ClimberIndex` (any object exposing
        ``knn_progressive`` works).
    queries:
        Held-out query series — a :class:`~repro.series.SeriesDataset`
        or a 2-D array of rows.
    k, variant, adaptive_factor, on_partition_failure:
        The query operating point being calibrated; a curve measured at
        one operating point is only an approximation for others.
    max_streak:
        Largest streak measured.  Confidences unreachable within it
        resolve to ``max_streak + 1`` (early stopping effectively off).
    path:
        When given, the calibration is saved there as JSON
        (:meth:`~repro.core.progressive.ProgressiveCalibration.save`).
    created:
        Optional ISO timestamp recorded in the artifact.
    """
    arr = np.asarray(getattr(queries, "values", queries), dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.shape[0] == 0:
        raise ConfigurationError("calibration needs at least one query")
    if max_streak < 1:
        raise ConfigurationError("max_streak must be >= 1")

    n_queries = int(arr.shape[0])
    agreements = np.zeros(max_streak + 1, dtype=np.int64)
    for row in arr:
        updates = list(index.knn_progressive(
            row, k, variant, adaptive_factor,
            on_partition_failure=on_partition_failure,
            early_stop="off",
        ))
        final_set = frozenset(int(i) for i in updates[-1].ids)
        steps = [u for u in updates if not u.done]
        for streak in range(1, max_streak + 1):
            stop_ids = None
            for u in steps:
                if u.ids.shape[0] >= k and u.stable_steps >= streak:
                    stop_ids = u.ids
                    break
            if stop_ids is None:
                agreements[streak] += 1  # rule never fires: full coverage
                continue
            if frozenset(int(i) for i in stop_ids) == final_set:
                agreements[streak] += 1

    curve = tuple(
        (streak, float(agreements[streak]) / n_queries)
        for streak in range(1, max_streak + 1)
    )
    calibration = ProgressiveCalibration(
        curve=curve,
        k=k,
        variant=variant,
        n_queries=n_queries,
        source="calibrated",
        created=created,
    )
    if path is not None:
        calibration.save(path)
    return calibration

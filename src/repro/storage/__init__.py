"""Simulated distributed storage substrate (stands in for HDFS)."""

from repro.storage.dfs import DfsCounters, SimulatedDFS
from repro.storage.partition import PartitionFile
from repro.storage.serialization import (
    array_from_bytes,
    array_to_bytes,
    json_from_bytes,
    json_to_bytes,
)

__all__ = [
    "SimulatedDFS",
    "DfsCounters",
    "PartitionFile",
    "array_to_bytes",
    "array_from_bytes",
    "json_to_bytes",
    "json_from_bytes",
]

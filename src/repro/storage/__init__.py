"""Simulated distributed storage substrate (stands in for HDFS)."""

from repro.storage.dfs import DfsCounters, SimulatedDFS
from repro.storage.engine import (
    LocalDiskBackend,
    MemoryBackend,
    PartitionV2View,
    StorageBackend,
    StorageEngine,
    encode_partition_v2,
    encode_partition_v2_arrays,
)
from repro.storage.partition import PartitionFile
from repro.storage.serialization import (
    array_from_bytes,
    array_to_bytes,
    json_from_bytes,
    json_to_bytes,
)

__all__ = [
    "SimulatedDFS",
    "DfsCounters",
    "PartitionFile",
    "StorageEngine",
    "StorageBackend",
    "MemoryBackend",
    "LocalDiskBackend",
    "PartitionV2View",
    "encode_partition_v2",
    "encode_partition_v2_arrays",
    "array_to_bytes",
    "array_from_bytes",
    "json_to_bytes",
    "json_from_bytes",
]

"""Pluggable byte-range storage backends.

A :class:`StorageBackend` stores immutable named blobs and serves arbitrary
byte ranges from them.  The contract is deliberately tiny — ``write``,
``read_range``, ``size``, ``delete`` — so a partition format that knows its
own offsets (format v2) can be served zero-copy from any medium:

* :class:`MemoryBackend` — blobs in a dict; ranges are memoryviews over
  the stored bytes.
* :class:`LocalDiskBackend` — one file per blob under a root directory;
  ranges are memoryviews over lazily-opened read-only ``mmap`` handles, so
  the OS pages in only the bytes actually touched.

Every ``read_range`` is bounds-checked: a request past the end of the blob
raises :class:`StorageError` rather than silently returning a short view,
which is what turns a corrupt partition directory into a clean error.
"""

from __future__ import annotations

import mmap
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.exceptions import PartitionNotFoundError, StorageError

__all__ = ["StorageBackend", "MemoryBackend", "LocalDiskBackend"]


@runtime_checkable
class StorageBackend(Protocol):
    """Byte-range object store: named immutable blobs, sliceable reads."""

    def write(self, name: str, data: bytes) -> None:
        """Store ``data`` under ``name`` (replacing any previous blob)."""

    def read_range(self, name: str, offset: int, length: int) -> memoryview:
        """A zero-copy view of ``length`` bytes starting at ``offset``."""

    def size(self, name: str) -> int:
        """Stored size of one blob in bytes."""

    def delete(self, name: str) -> None:
        """Remove one blob."""

    def exists(self, name: str) -> bool:
        """Whether ``name`` is stored."""

    def list_names(self) -> list[str]:
        """All stored blob names, sorted."""

    def close(self) -> None:
        """Release any OS handles (open mmaps); blobs stay stored."""


def _check_range(name: str, offset: int, length: int, total: int) -> None:
    if offset < 0 or length < 0:
        raise StorageError(
            f"negative range ({offset}, {length}) for object {name!r}"
        )
    if offset + length > total:
        raise StorageError(
            f"range [{offset}, {offset + length}) outside object {name!r} "
            f"({total} bytes)"
        )


class MemoryBackend:
    """In-process blob store; ranges are views over the stored bytes."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def write(self, name: str, data: bytes) -> None:
        self._blobs[name] = bytes(data)

    def _blob(self, name: str) -> bytes:
        blob = self._blobs.get(name)
        if blob is None:
            raise PartitionNotFoundError(f"no stored object {name!r}")
        return blob

    def read_range(self, name: str, offset: int, length: int) -> memoryview:
        blob = self._blob(name)
        _check_range(name, offset, length, len(blob))
        return memoryview(blob)[offset:offset + length]

    def size(self, name: str) -> int:
        return len(self._blob(name))

    def delete(self, name: str) -> None:
        if self._blobs.pop(name, None) is None:
            raise PartitionNotFoundError(f"no stored object {name!r}")

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def list_names(self) -> list[str]:
        return sorted(self._blobs)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._blobs)


class LocalDiskBackend:
    """One file per blob under ``root``, read through cached mmap handles.

    Handles are opened lazily on the first range read of a blob, reused
    LRU-style, and capped at ``max_open_handles`` so a store with many
    partitions cannot exhaust the process file-descriptor limit.  A handle
    whose buffer is still referenced by live NumPy views cannot be closed
    (CPython refuses while exports exist); such handles are dropped from
    the cache and reclaimed when the last view dies.  Overwrites go
    through an atomic rename, so views over a replaced blob keep reading
    the old inode instead of faulting.

    The handle LRU is guarded by an internal lock: the DFS read path
    opens partitions concurrently (its own lock covers only bookkeeping),
    and lazy v2 views issue range reads long after the open, so the map
    mutations here must be safe under concurrent readers.  Views are
    sliced while the lock is held, so an eviction racing a read can never
    close a mapping between lookup and export.
    """

    def __init__(self, root: str | Path, max_open_handles: int = 256) -> None:
        if max_open_handles < 1:
            raise StorageError("max_open_handles must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_open_handles = max_open_handles
        self._maps: "OrderedDict[str, mmap.mmap]" = OrderedDict()
        self._maps_lock = threading.Lock()

    def _path(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise StorageError(f"invalid object name {name!r}")
        return self.root / name

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        self._drop_handle(name)
        # Write-then-rename: an overwrite swaps the directory entry while
        # any still-mapped previous version lives on under its old inode.
        tmp = path.with_name(f".{name}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _map_locked(self, name: str) -> mmap.mmap:
        # Caller holds self._maps_lock.
        handle = self._maps.get(name)
        if handle is None:
            path = self._path(name)
            try:
                with path.open("rb") as fh:
                    handle = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except FileNotFoundError:
                raise PartitionNotFoundError(f"no stored object {name!r}")
            except ValueError:
                raise StorageError(f"cannot map empty object {name!r}")
            self._maps[name] = handle
            while len(self._maps) > self.max_open_handles:
                self._drop_handle_locked(next(iter(self._maps)))
        else:
            self._maps.move_to_end(name)
        return handle

    def read_range(self, name: str, offset: int, length: int) -> memoryview:
        with self._maps_lock:
            handle = self._map_locked(name)
            _check_range(name, offset, length, len(handle))
            return memoryview(handle)[offset:offset + length]

    def size(self, name: str) -> int:
        with self._maps_lock:
            handle = self._maps.get(name)
            if handle is not None:
                return len(handle)
        path = self._path(name)
        try:
            return os.stat(path).st_size
        except FileNotFoundError:
            raise PartitionNotFoundError(f"no stored object {name!r}")

    def delete(self, name: str) -> None:
        path = self._path(name)
        self._drop_handle(name)
        try:
            path.unlink()
        except FileNotFoundError:
            raise PartitionNotFoundError(f"no stored object {name!r}")

    def exists(self, name: str) -> bool:
        return self._path(name).is_file()

    def list_names(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    def _drop_handle(self, name: str) -> None:
        with self._maps_lock:
            self._drop_handle_locked(name)

    def _drop_handle_locked(self, name: str) -> None:
        handle = self._maps.pop(name, None)
        if handle is not None:
            try:
                handle.close()
            except BufferError:
                pass  # live views keep the mapping alive; GC reclaims it

    def close(self) -> None:
        with self._maps_lock:
            for name in list(self._maps):
                self._drop_handle_locked(name)

    def _iter_handles(self) -> Iterator[mmap.mmap]:  # for tests
        return iter(self._maps.values())

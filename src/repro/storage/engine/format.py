"""Binary partition format v2: mmap-friendly columnar layout.

Format v1 (:meth:`repro.storage.partition.PartitionFile.to_bytes`) stores a
JSON header followed by two self-describing array blobs; reading *anything*
from a v1 payload deserialises the whole partition — JSON parse plus full
copies of ``ids`` and ``values``.  Format v2 keeps the same logical model
(contiguous trie-node clusters indexed by an offset directory, paper §VI)
but lays the bytes out so that a reader touches only the ranges it needs:

.. code-block:: text

    [0, 80)              fixed struct header (magic, version, geometry,
                         section offsets, total size)
    [80, 96)             header version >= 3 only: four CRC32 checksums
                         (meta blob, directory, ids payload, values payload)
    [hdr, hdr+meta)      JSON meta blob: {"partition_id": ..., "keys": [...]}
    [dir_offset, ...)    cluster directory: int64 offsets[n_clusters]
                         followed by int64 counts[n_clusters]
    [ids_offset, ...)    raw C-order int64 ids payload, 64-byte aligned
    [values_offset, ...) raw C-order float64 values payload, 64-byte aligned

Offsets/counts are *record* indices (identical to the v1 header tuples);
byte ranges are derived by multiplying with the fixed item sizes.  Because
the payloads are aligned raw C-order buffers, a reader backed by
``mmap``/``bytes`` serves any cluster as an ``np.frombuffer`` view with
zero deserialisation cost — exactly the asymmetry CLIMBER's query
algorithms assume ("reading one cluster touches only its slice").

:class:`PartitionV2View` is the lazy reader: it parses header + directory
on open (a few hundred bytes) and maps payload slices on demand, exposing
the same access interface as :class:`~repro.storage.partition.PartitionFile`.

Header **version 3** (PR 8) appends a 16-byte CRC32 block after the fixed
header: per-section checksums over the meta blob, the directory and the
two raw payloads (alignment padding is excluded — it is zeroed and never
served).  The base header's field offsets are unchanged, the magic stays
``CLMBPRT2`` and version-2 payloads (no checksums) remain fully readable,
so a backing directory can mix generations.  Verification is configurable
on the view: meta/directory checksums are checked at open (those bytes
are read anyway), payload checksums either at open (``verify="eager"``)
or once on the first payload mapping (``"lazy"``, the default), or never
(``"off"``).  A mismatch raises
:class:`~repro.exceptions.PartitionCorruptError`; integrity reads do not
count toward ``materialised_bytes`` (that metric tracks data served to
the query, not safety re-reads).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.exceptions import PartitionCorruptError, StorageError
from repro.storage.partition import PartitionFile, logical_partition_nbytes
from repro.storage.serialization import json_from_bytes, json_to_bytes

__all__ = [
    "FORMAT_V2_MAGIC",
    "FORMAT_V2_VERSION",
    "FORMAT_V3_VERSION",
    "PAYLOAD_ALIGNMENT",
    "VERIFY_MODES",
    "V2Header",
    "encode_partition_v2",
    "encode_partition_v2_arrays",
    "decode_v2_header",
    "is_v2_payload",
    "PartitionV2View",
]

FORMAT_V2_MAGIC = b"CLMBPRT2"
FORMAT_V2_VERSION = 2
FORMAT_V3_VERSION = 3  # v2 layout + per-section CRC32 block
PAYLOAD_ALIGNMENT = 64

#: Checksum-verification modes accepted by :class:`PartitionV2View` (and
#: plumbed through StorageEngine / SimulatedDFS / ClimberConfig).
VERIFY_MODES = ("off", "lazy", "eager")

# magic, version, flags, n_clusters, n_records, series_length, meta_size,
# dir_offset, ids_offset, values_offset, total_size
_HEADER = struct.Struct("<8sII8Q")
HEADER_SIZE = _HEADER.size

# Version >= 3: CRC32s of (meta, directory, ids, values), appended after
# the base header so every base field keeps its byte offset.
_CRC_BLOCK = struct.Struct("<4I")
CRC_BLOCK_SIZE = _CRC_BLOCK.size

_IDS_ITEMSIZE = 8     # int64
_VALUES_ITEMSIZE = 8  # float64

# v1 payloads start with the little-endian length of their JSON meta blob —
# a small integer, so the first eight bytes can never equal the magic.
assert HEADER_SIZE == 80
assert CRC_BLOCK_SIZE == 16


def _align(offset: int, alignment: int) -> int:
    return -(-offset // alignment) * alignment


@dataclass(frozen=True)
class V2Header:
    """Decoded fixed-width v2 header (geometry + section offsets).

    ``crcs`` carries the four per-section CRC32s of header version 3
    (meta, directory, ids, values), or ``None`` for legacy version-2
    payloads — readers skip verification when absent.
    """

    n_clusters: int
    n_records: int
    series_length: int
    meta_size: int
    dir_offset: int
    ids_offset: int
    values_offset: int
    total_size: int
    version: int = FORMAT_V2_VERSION
    crcs: tuple[int, int, int, int] | None = None

    @property
    def row_nbytes(self) -> int:
        return self.series_length * _VALUES_ITEMSIZE

    @property
    def header_size(self) -> int:
        """Bytes before the meta blob (base header + optional CRC block)."""
        return HEADER_SIZE + (CRC_BLOCK_SIZE if self.crcs is not None else 0)


def is_v2_payload(prefix: bytes | bytearray | memoryview) -> bool:
    """True if the payload's leading bytes carry the v2 magic."""
    return bytes(prefix[:8]) == FORMAT_V2_MAGIC


def encode_partition_v2_arrays(
    partition_id: str,
    ids: np.ndarray,
    values: np.ndarray,
    header: dict[str, tuple[int, int]],
    rows: np.ndarray | None = None,
    checksums: bool = True,
) -> bytes:
    """Serialise pre-laid-out cluster arrays straight into format v2.

    The bulk-write entry point of the flat-trie build pipeline: the builder
    sorts all routed records once and hands each partition's
    ``ids``/``values`` records (plus the cluster directory) here, skipping
    the intermediate :class:`PartitionFile` object entirely.  Byte-for-byte
    identical to ``encode_partition_v2(PartitionFile.from_clusters(...))``
    over the same records — ``header`` insertion order defines cluster
    order, so callers must pass keys sorted (the layout contract of paper
    §VI that :meth:`PartitionFile.from_clusters` establishes).

    With ``rows`` given, ``ids``/``values`` are *source* arrays and the
    partition's records are ``ids[rows]``/``values[rows]`` — gathered
    directly into the output buffer (``np.take(..., out=...)``), so the
    bulk build pays one scattered read instead of materialising a sorted
    copy of the dataset first.

    ``checksums`` (default on) writes header version 3 with the CRC32
    block; ``checksums=False`` produces the byte-identical legacy
    version-2 payload.
    """
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.ndim != 2 or ids.ndim != 1 or ids.shape[0] != values.shape[0]:
        raise StorageError(
            f"partition {partition_id!r}: ids/values shape mismatch"
        )
    if rows is not None:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1 or (
            rows.size and (rows.min() < 0 or rows.max() >= ids.shape[0])
        ):
            raise StorageError(
                f"partition {partition_id!r}: row indices out of range"
            )
    n_records = int(rows.size if rows is not None else ids.shape[0])
    keys = list(header)
    if not keys:
        raise StorageError(f"partition {partition_id!r} needs >= 1 cluster")
    n_clusters = len(keys)
    meta = json_to_bytes({"partition_id": partition_id, "keys": keys})
    version = FORMAT_V3_VERSION if checksums else FORMAT_V2_VERSION
    hdr_size = HEADER_SIZE + (CRC_BLOCK_SIZE if checksums else 0)
    dir_offset = _align(hdr_size + len(meta), 8)
    dir_nbytes = 2 * 8 * n_clusters
    ids_nbytes = n_records * _IDS_ITEMSIZE
    values_nbytes = n_records * values.shape[1] * _VALUES_ITEMSIZE
    ids_offset = _align(dir_offset + dir_nbytes, PAYLOAD_ALIGNMENT)
    values_offset = _align(ids_offset + ids_nbytes, PAYLOAD_ALIGNMENT)
    total_size = values_offset + values_nbytes

    out = bytearray(total_size)
    _HEADER.pack_into(
        out, 0,
        FORMAT_V2_MAGIC, version, 0,
        n_clusters, n_records, values.shape[1], len(meta),
        dir_offset, ids_offset, values_offset, total_size,
    )
    out[hdr_size:hdr_size + len(meta)] = meta
    # Payload sections are filled through writable NumPy views over the
    # output buffer — one memcpy (or fused gather) per section, with no
    # intermediate ``tobytes`` bytes objects (at bulk-build volume those
    # doubled the write path's memory traffic).
    directory = np.frombuffer(out, dtype=np.int64, count=2 * n_clusters,
                              offset=dir_offset)
    directory[:n_clusters] = [header[k][0] for k in keys]
    directory[n_clusters:] = [header[k][1] for k in keys]
    # Same directory validation the v1 path applies at construction time:
    # a bad cluster range must fail here, not at some later read.
    if not (
        np.all(directory >= 0)
        and np.all(directory[:n_clusters] + directory[n_clusters:] <= n_records)
    ):
        raise StorageError(
            f"partition {partition_id!r}: cluster directory outside payload"
        )
    ids_dst = np.frombuffer(out, dtype=np.int64, count=n_records,
                            offset=ids_offset)
    values_dst = np.frombuffer(
        out, dtype=np.float64, count=n_records * values.shape[1],
        offset=values_offset,
    ).reshape(n_records, values.shape[1])
    if rows is None:
        ids_dst[:] = ids
        values_dst.reshape(-1)[:] = values.reshape(-1)
    else:
        np.take(ids, rows, out=ids_dst)
        np.take(values, rows, axis=0, out=values_dst)
    if checksums:
        # CRCs cover the exact logical section bytes (padding excluded:
        # it is zeroed above and never served to a reader).
        view = memoryview(out)
        _CRC_BLOCK.pack_into(
            out, HEADER_SIZE,
            zlib.crc32(view[hdr_size:hdr_size + len(meta)]),
            zlib.crc32(view[dir_offset:dir_offset + dir_nbytes]),
            zlib.crc32(view[ids_offset:ids_offset + ids_nbytes]),
            zlib.crc32(view[values_offset:values_offset + values_nbytes]),
        )
    return bytes(out)


def encode_partition_v2(part: PartitionFile, checksums: bool = True) -> bytes:
    """Serialise a partition into format v2.

    Cluster order follows the partition header (sorted key order from
    :meth:`PartitionFile.from_clusters`), so the directory describes the
    same contiguous layout as the v1 header.  ``checksums`` selects
    header version 3 (CRC block) vs the legacy version-2 bytes.
    """
    return encode_partition_v2_arrays(
        part.partition_id, part.ids, part.values, part.header,
        checksums=checksums,
    )


def decode_v2_header(
    buf: bytes | bytearray | memoryview, physical_size: int | None = None
) -> V2Header:
    """Parse and validate the fixed v2 header from a payload's first bytes.

    ``physical_size``, when known, is checked against the header's declared
    total so truncated files fail fast with a clear error.  Accepts header
    versions 2 (legacy, no checksums) and 3 (CRC block follows the fixed
    header; ``buf`` must include it).
    """
    if len(buf) < HEADER_SIZE:
        raise StorageError(
            f"truncated v2 partition: {len(buf)} header bytes < {HEADER_SIZE}"
        )
    (magic, version, flags, n_clusters, n_records, series_length, meta_size,
     dir_offset, ids_offset, values_offset, total_size) = _HEADER.unpack_from(
        bytes(buf[:HEADER_SIZE])
    )
    if magic != FORMAT_V2_MAGIC:
        raise StorageError(f"bad partition magic {magic!r}")
    if version not in (FORMAT_V2_VERSION, FORMAT_V3_VERSION):
        raise StorageError(f"unsupported partition format version {version}")
    if flags != 0:
        raise StorageError(f"unknown partition format flags {flags:#x}")
    crcs = None
    if version == FORMAT_V3_VERSION:
        if len(buf) < HEADER_SIZE + CRC_BLOCK_SIZE:
            raise StorageError(
                f"truncated v2 partition: {len(buf)} header bytes < "
                f"{HEADER_SIZE + CRC_BLOCK_SIZE} (version 3)"
            )
        crcs = _CRC_BLOCK.unpack_from(
            bytes(buf[HEADER_SIZE:HEADER_SIZE + CRC_BLOCK_SIZE])
        )
    header = V2Header(
        n_clusters=n_clusters,
        n_records=n_records,
        series_length=series_length,
        meta_size=meta_size,
        dir_offset=dir_offset,
        ids_offset=ids_offset,
        values_offset=values_offset,
        total_size=total_size,
        version=version,
        crcs=crcs,
    )
    dir_nbytes = 2 * 8 * n_clusters
    consistent = (
        dir_offset >= header.header_size + meta_size
        and ids_offset % PAYLOAD_ALIGNMENT == 0
        and values_offset % PAYLOAD_ALIGNMENT == 0
        and ids_offset >= dir_offset + dir_nbytes
        and values_offset >= ids_offset + n_records * _IDS_ITEMSIZE
        and total_size == values_offset + n_records * header.row_nbytes
    )
    if not consistent:
        raise StorageError("corrupt v2 partition header: inconsistent offsets")
    if physical_size is not None and physical_size != total_size:
        raise StorageError(
            f"truncated v2 partition: header declares {total_size} bytes, "
            f"storage holds {physical_size}"
        )
    return header


class PartitionV2View:
    """Lazy zero-copy reader over one v2 partition.

    Parameters
    ----------
    read_range:
        ``(offset, length) -> memoryview`` over the partition's bytes
        (typically a :class:`~repro.storage.engine.backend.StorageBackend`
        closure over an mmap or an in-memory blob).  Must raise
        :class:`StorageError` on out-of-range requests.
    physical_size:
        Total stored bytes, when the caller knows it; validated against
        the header's declared size.  When unknown, the view probes the
        payload's last byte at open so a truncated blob fails fast with
        :class:`StorageError` instead of a confusing short-read error on
        some later cluster read.
    verify:
        Checksum verification mode for version-3 payloads (payloads
        without checksums are never verified): ``"lazy"`` (default)
        checks meta/directory CRCs at open and the payload CRCs once, on
        the first payload mapping; ``"eager"`` checks everything at
        open; ``"off"`` skips verification.  A mismatch raises
        :class:`~repro.exceptions.PartitionCorruptError`.
    corruption_cb:
        Zero-argument callable invoked once per detected corruption
        (before the raise) — the DFS hooks its
        ``dfs.corruption_detected`` counter here.

    The view exposes the :class:`PartitionFile` access interface
    (``read_cluster``/``read_clusters``/``read_all``/``ids``/``values``/
    ``nbytes``/...) but materialises nothing beyond the header, meta blob
    and cluster directory until a payload range is requested.  Returned
    arrays are read-only views into the backing buffer; consumers that
    need writable data copy (``np.concatenate``/``np.vstack`` downstream
    already do).  ``materialised_bytes`` tracks how many bytes have been
    mapped *for the reader* — the benchmark's "bytes materialised"
    metric; integrity re-reads are excluded.
    """

    def __init__(
        self,
        read_range: Callable[[int, int], memoryview],
        physical_size: int | None = None,
        verify: str = "lazy",
        corruption_cb: Callable[[], None] | None = None,
    ) -> None:
        if verify not in VERIFY_MODES:
            raise StorageError(
                f"unknown verify mode {verify!r} (expected one of "
                f"{VERIFY_MODES})"
            )
        self._read = read_range
        self._corruption_cb = corruption_cb
        head = bytes(read_range(0, HEADER_SIZE))
        if (len(head) >= 12 and head[:8] == FORMAT_V2_MAGIC
                and int.from_bytes(head[8:12], "little") == FORMAT_V3_VERSION):
            head += bytes(read_range(HEADER_SIZE, CRC_BLOCK_SIZE))
        self.v2_header = decode_v2_header(head, physical_size)
        h = self.v2_header
        checked = verify != "off" and h.crcs is not None
        self._verify_payload_pending = checked
        if physical_size is None and h.total_size > 0:
            # Truncation probe: the declared extent must be addressable
            # now, not when a directory entry happens to touch the tail.
            tail = read_range(h.total_size - 1, 1)
            if len(tail) != 1:
                raise StorageError(
                    f"truncated v2 partition: storage ends before the "
                    f"declared {h.total_size} bytes"
                )
        meta_bytes = bytes(read_range(h.header_size, h.meta_size))
        if len(meta_bytes) != h.meta_size:
            self._corrupt("short meta blob read")
        if checked and zlib.crc32(meta_bytes) != h.crcs[0]:
            self._corrupt("meta blob checksum mismatch")
        try:
            meta = json_from_bytes(meta_bytes)
        except Exception:
            meta = None
        if not isinstance(meta, dict) or "partition_id" not in meta \
                or "keys" not in meta:
            raise StorageError("corrupt v2 partition: malformed meta blob")
        keys = list(meta["keys"])
        if len(keys) != h.n_clusters:
            raise StorageError(
                f"corrupt v2 partition: {len(keys)} keys for "
                f"{h.n_clusters} directory entries"
            )
        dir_nbytes = 2 * 8 * h.n_clusters
        directory = bytes(read_range(h.dir_offset, dir_nbytes))
        if len(directory) != dir_nbytes:
            self._corrupt("short directory read")
        if checked and zlib.crc32(directory) != h.crcs[1]:
            self._corrupt("directory checksum mismatch")
        offsets = np.frombuffer(directory[:8 * h.n_clusters], dtype=np.int64)
        counts = np.frombuffer(directory[8 * h.n_clusters:], dtype=np.int64)
        if h.n_clusters and not (
            np.all(offsets >= 0)
            and np.all(counts >= 0)
            and np.all(offsets + counts <= h.n_records)
        ):
            raise StorageError(
                "corrupt v2 partition: directory range outside payload"
            )
        self.partition_id = str(meta["partition_id"])
        self.header: dict[str, tuple[int, int]] = {
            k: (int(o), int(c)) for k, o, c in zip(keys, offsets, counts)
        }
        self.materialised_bytes = h.header_size + h.meta_size + dir_nbytes
        if checked and verify == "eager":
            self._verify_payload()

    def _corrupt(self, reason: str) -> None:
        if self._corruption_cb is not None:
            self._corruption_cb()
        raise PartitionCorruptError(f"corrupt v2 partition: {reason}")

    def _verify_payload(self) -> None:
        """Check the ids/values CRCs (version-3 payloads, once)."""
        h = self.v2_header
        ids_nbytes = h.n_records * _IDS_ITEMSIZE
        val_nbytes = h.n_records * h.row_nbytes
        # Integrity reads bypass materialised_bytes on purpose: the metric
        # tracks bytes served to the reader, not safety re-reads.
        if zlib.crc32(self._read(h.ids_offset, ids_nbytes)) != h.crcs[2]:
            self._corrupt("ids payload checksum mismatch")
        if zlib.crc32(self._read(h.values_offset, val_nbytes)) != h.crcs[3]:
            self._corrupt("values payload checksum mismatch")
        self._verify_payload_pending = False

    # -- geometry ---------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self.v2_header.n_records

    @property
    def series_length(self) -> int:
        return self.v2_header.series_length

    @property
    def physical_nbytes(self) -> int:
        """Stored size of the v2 payload itself."""
        return self.v2_header.total_size

    @property
    def nbytes(self) -> int:
        """*Logical* partition size — identical to the v1 accounting.

        Computed by the shared :func:`logical_partition_nbytes` formula
        (records with per-record overhead plus the JSON header length), so
        DFS counters and simulated costs are byte-identical whichever
        physical format serves the partition.
        """
        cached = self.__dict__.get("_nbytes")
        if cached is None:
            cached = self.__dict__["_nbytes"] = logical_partition_nbytes(
                self.record_count, self.series_length, self.header
            )
        return cached

    def cluster_keys(self) -> list[str]:
        return list(self.header)

    def cluster_sizes(self) -> dict[str, int]:
        return {k: count for k, (_, count) in self.header.items()}

    # -- range mapping ----------------------------------------------------------

    def _map_run(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Map one contiguous record run as (ids, values) views."""
        if self._verify_payload_pending:
            self._verify_payload()
        h = self.v2_header
        ids_nbytes = count * _IDS_ITEMSIZE
        val_nbytes = count * h.row_nbytes
        ids_buf = self._read(h.ids_offset + start * _IDS_ITEMSIZE, ids_nbytes)
        val_buf = self._read(h.values_offset + start * h.row_nbytes,
                             val_nbytes)
        # A checked backend raises on out-of-range requests; this guards
        # custom read callbacks that silently return short slices, which
        # would otherwise surface as numpy reshape errors.
        if len(ids_buf) != ids_nbytes or len(val_buf) != val_nbytes:
            self._corrupt(
                f"short payload read for records [{start}, {start + count})"
            )
        ids = np.frombuffer(ids_buf, dtype=np.int64)
        values = np.frombuffer(val_buf, dtype=np.float64).reshape(
            count, h.series_length
        )
        self.materialised_bytes += ids_nbytes + val_nbytes
        return ids, values

    def _runs(self, keys: Iterable[str]) -> list[tuple[int, int]]:
        """Record runs covering ``keys`` in order, adjacent runs coalesced."""
        runs: list[list[int]] = []
        for key in keys:
            if key not in self.header:
                raise StorageError(
                    f"partition {self.partition_id!r} has no cluster {key!r}"
                )
            start, count = self.header[key]
            if runs and runs[-1][0] + runs[-1][1] == start:
                runs[-1][1] += count
            else:
                runs.append([start, count])
        return [(s, c) for s, c in runs]

    # -- access (PartitionFile interface) ---------------------------------------

    def read_cluster(self, key: str) -> tuple[np.ndarray, np.ndarray]:
        """Records of one trie-node cluster — a mapped view, never a copy."""
        if key not in self.header:
            raise StorageError(
                f"partition {self.partition_id!r} has no cluster {key!r}"
            )
        return self._map_run(*self.header[key])

    def read_clusters(
        self, keys: Iterable[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated records of several clusters.

        Adjacent clusters (the common case: a trie subtree's leaves sit
        next to each other in sorted key order) coalesce into single mapped
        runs; a lone run is returned as a pure view with no copy at all.
        """
        runs = self._runs(keys)
        if not runs:
            raise StorageError("read_clusters requires at least one key")
        parts = [self._map_run(start, count) for start, count in runs]
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([p[0] for p in parts]),
            np.vstack([p[1] for p in parts]),
        )

    def read_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Every record in the partition, as two whole-payload views."""
        return self._map_run(0, self.record_count)

    @property
    def ids(self) -> np.ndarray:
        return self.read_all()[0]

    @property
    def values(self) -> np.ndarray:
        return self.read_all()[1]

    # -- migration --------------------------------------------------------------

    def to_partition_file(self) -> PartitionFile:
        """Materialise a fully-deserialised v1 :class:`PartitionFile`."""
        ids, values = self.read_all()
        return PartitionFile(
            partition_id=self.partition_id,
            ids=ids.copy(),
            values=values.copy(),
            header=dict(self.header),
        )

"""Zero-copy storage engine: columnar partition format v2 over pluggable backends.

The engine decomposes physical partition storage into three layers:

* :mod:`repro.storage.engine.format` — the versioned binary partition
  format v2: fixed-width struct header, packed cluster directory and
  64-byte-aligned raw C-order payloads, served as zero-copy NumPy views;
* :mod:`repro.storage.engine.backend` — the :class:`StorageBackend`
  byte-range protocol with in-memory and mmap-backed local-disk
  implementations;
* :mod:`repro.storage.engine.engine` — the :class:`StorageEngine` facade
  that writes either format, opens partitions lazily, and answers
  cluster-range reads by mapping only the requested byte slices.

:class:`~repro.storage.SimulatedDFS` fronts this package; its logical
read/write counters are format-independent by construction.
"""

from repro.storage.engine.backend import (
    LocalDiskBackend,
    MemoryBackend,
    StorageBackend,
)
from repro.storage.engine.engine import PartitionMeta, StorageEngine
from repro.storage.engine.format import (
    FORMAT_V2_MAGIC,
    FORMAT_V2_VERSION,
    FORMAT_V3_VERSION,
    VERIFY_MODES,
    PartitionV2View,
    decode_v2_header,
    encode_partition_v2,
    encode_partition_v2_arrays,
    is_v2_payload,
)

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "LocalDiskBackend",
    "StorageEngine",
    "PartitionMeta",
    "PartitionV2View",
    "FORMAT_V2_MAGIC",
    "FORMAT_V2_VERSION",
    "FORMAT_V3_VERSION",
    "VERIFY_MODES",
    "encode_partition_v2",
    "encode_partition_v2_arrays",
    "decode_v2_header",
    "is_v2_payload",
]

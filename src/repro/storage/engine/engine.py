"""The storage engine: lazy partition access over a pluggable backend.

:class:`StorageEngine` owns the mapping from partition ids to stored blobs
and speaks both partition formats:

* **v2** (default) — :func:`~repro.storage.engine.format.encode_partition_v2`
  on write; reads open a :class:`~repro.storage.engine.format.PartitionV2View`
  that parses only header + directory and maps payload ranges on demand.
* **v1** — the legacy :meth:`PartitionFile.to_bytes` blob stream; reads
  deserialise the full partition (the compatibility shim).

The format of a *stored* partition is sniffed from its leading magic bytes,
so an engine configured for v2 transparently reads partitions written by a
v1 engine (and vice versa) — a backing directory can mix generations.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.exceptions import (
    PartitionCorruptError,
    PartitionNotFoundError,
    StorageError,
)
from repro.storage.engine.backend import StorageBackend
from repro.storage.engine.format import (
    VERIFY_MODES,
    PartitionV2View,
    encode_partition_v2,
    encode_partition_v2_arrays,
    is_v2_payload,
)
from repro.storage.partition import PartitionFile
from repro.storage.serialization import json_from_bytes

__all__ = ["StorageEngine", "PartitionMeta", "PartitionHandle"]

#: Anything the engine hands back from :meth:`StorageEngine.open_partition`:
#: a fully-deserialised v1 partition or a lazy v2 view.  Both expose the
#: same access interface (``read_cluster``/``read_clusters``/``read_all``/
#: ``cluster_keys``/``nbytes``/``record_count``/``series_length``/...).
PartitionHandle = Union[PartitionFile, PartitionV2View]

_V1_BLOB_LEN = struct.Struct("<Q")


@dataclass(frozen=True)
class PartitionMeta:
    """Header-level partition metadata (no payload bytes read)."""

    logical_nbytes: int
    record_count: int
    series_length: int


class StorageEngine:
    """Write/read partitions through a :class:`StorageBackend`.

    Parameters
    ----------
    backend:
        The byte store (memory or mmap-backed local disk), possibly
        wrapped in a :class:`~repro.resilience.FaultInjector`.
    partition_format:
        Format for *newly written* partitions: ``"v2"`` (default) or
        ``"v1"``.  Reads always sniff the stored format.
    checksums:
        Whether newly written v2 partitions carry the per-section CRC32
        block (header version 3, the default).  ``False`` reproduces the
        legacy version-2 bytes exactly.  Stored payloads of either
        version stay readable regardless.
    verify:
        Checksum-verification mode applied when opening v2 partitions:
        ``"off"``, ``"lazy"`` (default) or ``"eager"`` — see
        :class:`~repro.storage.engine.format.PartitionV2View`.
    corruption_cb:
        Zero-argument callable invoked per detected corruption (the DFS
        counts ``dfs.corruption_detected`` through it).
    """

    SUFFIX = ".part"

    def __init__(
        self,
        backend: StorageBackend,
        partition_format: str = "v2",
        checksums: bool = True,
        verify: str = "lazy",
        corruption_cb=None,
    ) -> None:
        if partition_format not in ("v1", "v2"):
            raise StorageError(
                f"unknown partition format {partition_format!r} "
                "(expected 'v1' or 'v2')"
            )
        if verify not in VERIFY_MODES:
            raise StorageError(
                f"unknown verify mode {verify!r} "
                f"(expected one of {VERIFY_MODES})"
            )
        self.backend = backend
        self.partition_format = partition_format
        self.checksums = bool(checksums)
        self.verify = verify
        self.corruption_cb = corruption_cb

    def _name(self, partition_id: str) -> str:
        return f"{partition_id}{self.SUFFIX}"

    def blob_name(self, partition_id: str) -> str:
        """The backend blob name a partition is stored under."""
        return self._name(partition_id)

    # -- write ------------------------------------------------------------------

    def write_partition(self, partition: PartitionFile) -> int:
        """Encode and store one partition; returns the physical byte count."""
        if self.partition_format == "v2":
            payload = encode_partition_v2(partition, checksums=self.checksums)
        else:
            payload = partition.to_bytes()
        self.backend.write(self._name(partition.partition_id), payload)
        return len(payload)

    def write_arrays(
        self,
        partition_id: str,
        ids: np.ndarray,
        values: np.ndarray,
        header: dict[str, tuple[int, int]],
        rows: np.ndarray | None = None,
    ) -> int:
        """Bulk-write entry point: store cluster-sorted arrays directly.

        With format v2 the arrays are encoded straight into the columnar
        payload — no intermediate :class:`PartitionFile` — which is how the
        flat-trie builder writes every partition.  With ``rows`` given,
        ``ids``/``values`` are source arrays and the stored records are
        ``ids[rows]``/``values[rows]``, gathered directly into the payload
        buffer.  The stored bytes are identical to
        ``write_partition(PartitionFile.from_clusters(...))`` over the
        same records.  Returns the physical byte count.
        """
        return self.write_payload(
            partition_id,
            self.encode_arrays(partition_id, ids, values, header, rows=rows),
        )

    def encode_arrays(
        self,
        partition_id: str,
        ids: np.ndarray,
        values: np.ndarray,
        header: dict[str, tuple[int, int]],
        rows: np.ndarray | None = None,
    ) -> bytes:
        """Encode cluster-sorted arrays into the configured format without
        storing them.

        The encode half of :meth:`write_arrays` — a pure function of its
        arguments, safe to run on worker threads.  The parallel builder
        encodes partition payloads concurrently through here and stores
        them serially, in partition order, via :meth:`write_payload`; the
        bytes are identical to a direct :meth:`write_arrays` call.
        """
        if self.partition_format == "v2":
            return encode_partition_v2_arrays(partition_id, ids, values,
                                              header, rows=rows,
                                              checksums=self.checksums)
        if rows is not None:
            ids = np.asarray(ids, dtype=np.int64)[rows]
            values = np.asarray(values, dtype=np.float64)[rows]
        return PartitionFile.from_arrays(
            partition_id, ids, values, header
        ).to_bytes()

    def write_payload(self, partition_id: str, payload: bytes) -> int:
        """Store an already-encoded partition payload (see
        :meth:`encode_arrays`); returns the physical byte count."""
        self.backend.write(self._name(partition_id), payload)
        return len(payload)

    # -- read -------------------------------------------------------------------

    def has_partition(self, partition_id: str) -> bool:
        return self.backend.exists(self._name(partition_id))

    def open_partition(self, partition_id: str) -> PartitionHandle:
        """Open a stored partition in whichever format it was written.

        v2 payloads come back as a lazy zero-copy view (header + directory
        parsed, payloads untouched); v1 payloads are fully deserialised.
        """
        name = self._name(partition_id)
        if not self.backend.exists(name):
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        size = self.backend.size(name)
        if is_v2_payload(self.backend.read_range(name, 0, min(size, 8))):
            return PartitionV2View(
                lambda offset, length: self.backend.read_range(
                    name, offset, length
                ),
                physical_size=size,
                verify=self.verify,
                corruption_cb=self.corruption_cb,
            )
        # v1 payloads carry no checksums; typed decode failures are the
        # best integrity signal available (a flipped byte that still
        # decodes is undetectable in v1 — one of the reasons v2+checksums
        # is the default).
        try:
            return PartitionFile.from_bytes(
                bytes(self.backend.read_range(name, 0, size))
            )
        except StorageError:
            raise
        except Exception as err:
            if self.corruption_cb is not None:
                self.corruption_cb()
            raise PartitionCorruptError(
                f"partition {partition_id!r}: undecodable v1 payload ({err})"
            ) from err

    def read_cluster_ranges(
        self, partition_id: str, keys: Iterable[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated records of the requested clusters.

        For v2 partitions only the byte ranges covering ``keys`` are
        mapped; the v1 shim deserialises the partition and slices it.
        """
        return self.open_partition(partition_id).read_clusters(list(keys))

    # -- metadata ---------------------------------------------------------------

    def partition_meta(self, partition_id: str) -> PartitionMeta:
        """Logical size, record count and series length from headers alone.

        Legacy v1 payloads written before size metadata existed fall back
        to a full deserialisation (the migration path).
        """
        name = self._name(partition_id)
        if not self.backend.exists(name):
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        size = self.backend.size(name)
        if is_v2_payload(self.backend.read_range(name, 0, min(size, 8))):
            view = PartitionV2View(
                lambda offset, length: self.backend.read_range(
                    name, offset, length
                ),
                physical_size=size,
                # Metadata scans never touch payload sections, so eager
                # payload verification would be pure waste here; cap at
                # lazy (meta/directory CRCs still checked at open).
                verify="off" if self.verify == "off" else "lazy",
                corruption_cb=self.corruption_cb,
            )
            return PartitionMeta(view.nbytes, view.record_count,
                                 view.series_length)
        if size < _V1_BLOB_LEN.size:
            raise StorageError(f"truncated partition payload {partition_id!r}")
        (meta_len,) = _V1_BLOB_LEN.unpack(
            bytes(self.backend.read_range(name, 0, _V1_BLOB_LEN.size))
        )
        if _V1_BLOB_LEN.size + meta_len > size:
            raise StorageError(f"truncated partition payload {partition_id!r}")
        meta = json_from_bytes(
            bytes(self.backend.read_range(name, _V1_BLOB_LEN.size, meta_len))
        )
        info = PartitionFile.stored_size_from_meta(meta)
        if info is None:  # legacy payload: no size metadata in the header
            part = PartitionFile.from_bytes(
                bytes(self.backend.read_range(name, 0, size))
            )
            return PartitionMeta(part.nbytes, part.record_count,
                                 part.series_length)
        return PartitionMeta(info[0], info[1], int(meta["series_length"]))

    def physical_nbytes(self, partition_id: str) -> int:
        """Stored payload size (format-dependent, unlike the logical size)."""
        name = self._name(partition_id)
        if not self.backend.exists(name):
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self.backend.size(name)

    # -- maintenance ------------------------------------------------------------

    def list_partitions(self) -> list[str]:
        """Ids of every stored partition, sorted."""
        n = len(self.SUFFIX)
        return sorted(
            name[:-n] for name in self.backend.list_names()
            if name.endswith(self.SUFFIX)
        )

    def delete_partition(self, partition_id: str) -> None:
        name = self._name(partition_id)
        if not self.backend.exists(name):
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        self.backend.delete(name)

    def close(self) -> None:
        """Release backend handles (open mmaps); stored data is untouched."""
        self.backend.close()

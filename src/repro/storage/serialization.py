"""Binary codecs shared by partition files and index skeletons.

A deliberately simple, dependency-free format: every object is a sequence
of length-prefixed blobs; NumPy arrays carry a small dtype/shape header in
front of their raw buffer.  The byte counts these codecs produce are what
the cost model charges for I/O and what the "global index size (MB)"
metric of Figures 8 and 12 reports.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

from repro.exceptions import StorageError

__all__ = [
    "write_blob",
    "read_blob",
    "array_to_bytes",
    "array_from_bytes",
    "json_to_bytes",
    "json_from_bytes",
]

_LEN = struct.Struct("<Q")
_ALLOWED_DTYPES = {"float64", "float32", "int64", "int32", "uint64", "uint32",
                   "uint16", "uint8", "int16", "int8", "bool"}


def write_blob(buf: io.BytesIO, data: bytes) -> None:
    """Append one length-prefixed blob."""
    buf.write(_LEN.pack(len(data)))
    buf.write(data)


def read_blob(buf: io.BytesIO) -> bytes:
    """Read the next length-prefixed blob."""
    header = buf.read(_LEN.size)
    if len(header) != _LEN.size:
        raise StorageError("truncated stream: missing blob length")
    (length,) = _LEN.unpack(header)
    data = buf.read(length)
    if len(data) != length:
        raise StorageError(f"truncated stream: expected {length} blob bytes")
    return data


def array_to_bytes(arr: np.ndarray) -> bytes:
    """Serialise one array: json header (dtype, shape) + raw C-order buffer."""
    arr = np.ascontiguousarray(arr)
    header = json.dumps({"dtype": str(arr.dtype), "shape": list(arr.shape)})
    buf = io.BytesIO()
    write_blob(buf, header.encode("utf-8"))
    write_blob(buf, arr.tobytes())
    return buf.getvalue()


def array_from_bytes(data: bytes) -> np.ndarray:
    """Inverse of :func:`array_to_bytes`."""
    buf = io.BytesIO(data)
    header = json.loads(read_blob(buf).decode("utf-8"))
    dtype = header["dtype"]
    if dtype not in _ALLOWED_DTYPES:
        raise StorageError(f"refusing to deserialise dtype {dtype!r}")
    raw = read_blob(buf)
    arr = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(header["shape"])
    return arr.copy()  # decouple from the immutable buffer


def json_to_bytes(obj: object) -> bytes:
    """Serialise a JSON-representable object (partition headers, metadata)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def json_from_bytes(data: bytes) -> object:
    return json.loads(data.decode("utf-8"))

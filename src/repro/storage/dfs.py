"""Simulated distributed file system (stands in for HDFS).

Stores :class:`~repro.storage.partition.PartitionFile` objects under string
ids, tracks byte-level read/write counters (which the benchmarks use for
the "additional data access" metric of Fig. 11(b)), and optionally persists
partitions to a backing directory so the "disk-based" property of the
paper's system is real rather than notional.

The capacity constraint ``c`` of Def. 12 lives here as ``block_records``:
builders ask the DFS how many records fit one block.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import PartitionNotFoundError, StorageError
from repro.series import series_nbytes
from repro.storage.partition import PartitionFile

__all__ = ["SimulatedDFS", "DfsCounters"]

_DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


@dataclass
class DfsCounters:
    """Cumulative I/O counters, for tests and access-volume metrics."""

    bytes_written: int = 0
    bytes_read: int = 0
    partitions_written: int = 0
    partitions_read: int = 0

    def snapshot(self) -> "DfsCounters":
        return DfsCounters(
            self.bytes_written, self.bytes_read,
            self.partitions_written, self.partitions_read,
        )


class SimulatedDFS:
    """An in-memory (optionally disk-backed) partition store.

    Parameters
    ----------
    block_bytes:
        Storage block size; the paper uses 64 or 128 MB HDFS blocks.
    backing_dir:
        If given, partitions are additionally serialised to
        ``backing_dir/<partition_id>.part`` and reads deserialise from
        disk, making I/O genuinely disk-based.
    """

    def __init__(
        self,
        block_bytes: int = _DEFAULT_BLOCK_BYTES,
        backing_dir: str | Path | None = None,
    ) -> None:
        if block_bytes < 1024:
            raise StorageError("block_bytes must be >= 1024")
        self.block_bytes = block_bytes
        self.backing_dir = Path(backing_dir) if backing_dir else None
        if self.backing_dir:
            self.backing_dir.mkdir(parents=True, exist_ok=True)
        self._partitions: dict[str, PartitionFile] = {}
        self._sizes: dict[str, int] = {}
        self.counters = DfsCounters()

    # -- capacity ---------------------------------------------------------------

    def block_records(self, series_length: int) -> int:
        """Capacity constraint ``c``: records of ``series_length`` per block."""
        return max(1, self.block_bytes // series_nbytes(series_length))

    # -- reattachment ---------------------------------------------------------------

    def attach(self) -> int:
        """Register the partitions already present in the backing directory.

        Lets a fresh process reopen a disk-persisted index: the DFS scans
        ``backing_dir`` for ``*.part`` files and registers them without
        reading their payloads.  Returns the number of partitions attached.
        """
        if not self.backing_dir:
            raise StorageError("attach() requires a backing_dir")
        attached = 0
        for path in sorted(self.backing_dir.glob("*.part")):
            pid = path.stem
            if pid in self._sizes:
                continue
            part = PartitionFile.from_bytes(path.read_bytes())
            self._sizes[pid] = part.nbytes
            attached += 1
        return attached

    # -- write/read ----------------------------------------------------------------

    def write_partition(self, partition: PartitionFile) -> None:
        pid = partition.partition_id
        if pid in self._partitions:
            raise StorageError(f"partition {pid!r} already exists")
        nbytes = partition.nbytes
        if self.backing_dir:
            path = self.backing_dir / f"{pid}.part"
            path.write_bytes(partition.to_bytes())
        else:
            self._partitions[pid] = partition
        self._sizes[pid] = nbytes
        self.counters.bytes_written += nbytes
        self.counters.partitions_written += 1

    def read_partition(self, partition_id: str) -> PartitionFile:
        if partition_id not in self._sizes:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        self.counters.bytes_read += self._sizes[partition_id]
        self.counters.partitions_read += 1
        if self.backing_dir:
            path = self.backing_dir / f"{partition_id}.part"
            return PartitionFile.from_bytes(path.read_bytes())
        return self._partitions[partition_id]

    # -- introspection -----------------------------------------------------------

    def has_partition(self, partition_id: str) -> bool:
        return partition_id in self._sizes

    def list_partitions(self) -> list[str]:
        return sorted(self._sizes)

    def partition_nbytes(self, partition_id: str) -> int:
        if partition_id not in self._sizes:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._sizes[partition_id]

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    def __len__(self) -> int:
        return len(self._sizes)

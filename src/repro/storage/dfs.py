"""Simulated distributed file system (stands in for HDFS).

Stores :class:`~repro.storage.partition.PartitionFile` objects under string
ids, tracks byte-level read/write counters (which the benchmarks use for
the "additional data access" metric of Fig. 11(b)), and optionally persists
partitions to a backing directory so the "disk-based" property of the
paper's system is real rather than notional.

The capacity constraint ``c`` of Def. 12 lives here as ``block_records``:
builders ask the DFS how many records fit one block.

Query-side additions:

* an opt-in **read cache** (``cache_bytes``) — a byte-bounded LRU over
  deserialised partitions.  Caching is purely physical: the logical
  counters (``bytes_read`` / ``partitions_read``) charge every partition
  touch regardless, so the paper's access-volume metrics are identical
  with the cache on or off;
* a **delta-name registry** — ``delta_partitions(base)`` answers the
  ``<base>.d<seq>`` naming-convention lookup from an in-memory index
  instead of rescanning the full partition list per query;
* **record-count metadata** — ``record_count(pid)`` is maintained at
  write/attach time from partition headers, so reopening an index never
  has to read partition payloads.
"""

from __future__ import annotations

from bisect import insort
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import PartitionNotFoundError, StorageError
from repro.series import series_nbytes
from repro.storage.partition import PartitionFile
from repro.storage.serialization import json_from_bytes, read_blob

__all__ = ["SimulatedDFS", "DfsCounters"]

_DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


@dataclass
class DfsCounters:
    """Cumulative I/O counters, for tests and access-volume metrics.

    ``bytes_read`` / ``partitions_read`` are *logical*: every read charges
    them, cache hit or not.  ``cache_hits`` / ``cache_misses`` track the
    physical behaviour of the read cache (both stay 0 with caching off).
    """

    bytes_written: int = 0
    bytes_read: int = 0
    partitions_written: int = 0
    partitions_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> "DfsCounters":
        return DfsCounters(
            self.bytes_written, self.bytes_read,
            self.partitions_written, self.partitions_read,
            self.cache_hits, self.cache_misses,
        )


class SimulatedDFS:
    """An in-memory (optionally disk-backed) partition store.

    Parameters
    ----------
    block_bytes:
        Storage block size; the paper uses 64 or 128 MB HDFS blocks.
    backing_dir:
        If given, partitions are additionally serialised to
        ``backing_dir/<partition_id>.part`` and reads deserialise from
        disk, making I/O genuinely disk-based.
    cache_bytes:
        Byte budget of the LRU read cache over deserialised partitions;
        0 (the default) disables caching.  Logical read counters are
        unaffected either way.
    """

    def __init__(
        self,
        block_bytes: int = _DEFAULT_BLOCK_BYTES,
        backing_dir: str | Path | None = None,
        cache_bytes: int = 0,
    ) -> None:
        if block_bytes < 1024:
            raise StorageError("block_bytes must be >= 1024")
        if cache_bytes < 0:
            raise StorageError("cache_bytes must be >= 0")
        self.block_bytes = block_bytes
        self.cache_bytes = cache_bytes
        self.backing_dir = Path(backing_dir) if backing_dir else None
        if self.backing_dir:
            self.backing_dir.mkdir(parents=True, exist_ok=True)
        self._partitions: dict[str, PartitionFile] = {}
        self._sizes: dict[str, int] = {}
        self._record_counts: dict[str, int] = {}
        self._deltas: dict[str, list[str]] = {}
        self._cache: OrderedDict[str, PartitionFile] = OrderedDict()
        self._cache_used = 0
        self.counters = DfsCounters()

    # -- capacity ---------------------------------------------------------------

    def block_records(self, series_length: int) -> int:
        """Capacity constraint ``c``: records of ``series_length`` per block."""
        return max(1, self.block_bytes // series_nbytes(series_length))

    # -- reattachment ---------------------------------------------------------------

    def attach(self) -> int:
        """Register the partitions already present in the backing directory.

        Lets a fresh process reopen a disk-persisted index: the DFS scans
        ``backing_dir`` for ``*.part`` files and registers them without
        reading their payloads (only the first header blob of each file;
        legacy files lacking size metadata fall back to a full read).
        Returns the number of partitions attached.
        """
        if not self.backing_dir:
            raise StorageError("attach() requires a backing_dir")
        attached = 0
        for path in sorted(self.backing_dir.glob("*.part")):
            pid = path.stem
            if pid in self._sizes:
                continue
            with path.open("rb") as fh:
                meta = json_from_bytes(read_blob(fh))
            info = PartitionFile.stored_size_from_meta(meta)
            if info is None:
                part = PartitionFile.from_bytes(path.read_bytes())
                info = (part.nbytes, part.record_count)
            self._register(pid, *info)
            attached += 1
        return attached

    # -- write/read ----------------------------------------------------------------

    def _register(self, pid: str, nbytes: int, record_count: int) -> None:
        self._sizes[pid] = nbytes
        self._record_counts[pid] = record_count
        base, sep, _ = pid.partition(".d")
        if sep:
            insort(self._deltas.setdefault(base, []), pid)

    def write_partition(self, partition: PartitionFile) -> None:
        pid = partition.partition_id
        if pid in self._sizes:
            raise StorageError(f"partition {pid!r} already exists")
        nbytes = partition.nbytes
        if self.backing_dir:
            path = self.backing_dir / f"{pid}.part"
            path.write_bytes(partition.to_bytes())
        else:
            self._partitions[pid] = partition
        # Defensive invalidation: duplicate ids are rejected above, so a
        # cached entry can never be stale today — but any future overwrite
        # path must evict here, and the cost is one dict lookup.
        self._cache_evict(pid)
        self._register(pid, nbytes, partition.record_count)
        self.counters.bytes_written += nbytes
        self.counters.partitions_written += 1

    def read_partition(self, partition_id: str) -> PartitionFile:
        if partition_id not in self._sizes:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        # Logical accounting is cache-independent: the paper's access-volume
        # metrics charge every partition touch.
        self.counters.bytes_read += self._sizes[partition_id]
        self.counters.partitions_read += 1
        if self.cache_bytes:
            cached = self._cache.get(partition_id)
            if cached is not None:
                self.counters.cache_hits += 1
                self._cache.move_to_end(partition_id)
                return cached
            self.counters.cache_misses += 1
        if self.backing_dir:
            path = self.backing_dir / f"{partition_id}.part"
            part = PartitionFile.from_bytes(path.read_bytes())
        else:
            part = self._partitions[partition_id]
        if self.cache_bytes:
            self._cache_insert(partition_id, part)
        return part

    # -- read cache --------------------------------------------------------------

    def _cache_insert(self, pid: str, part: PartitionFile) -> None:
        nbytes = self._sizes[pid]
        if nbytes > self.cache_bytes:
            return
        self._cache[pid] = part
        self._cache_used += nbytes
        while self._cache_used > self.cache_bytes:
            evicted, _ = self._cache.popitem(last=False)
            self._cache_used -= self._sizes[evicted]

    def _cache_evict(self, pid: str) -> None:
        if self._cache.pop(pid, None) is not None:
            self._cache_used -= self._sizes.get(pid, 0)

    @property
    def cache_used_bytes(self) -> int:
        """Bytes currently held by the read cache."""
        return self._cache_used

    def cache_clear(self) -> None:
        """Drop every cached partition (counters untouched)."""
        self._cache.clear()
        self._cache_used = 0

    # -- introspection -----------------------------------------------------------

    def has_partition(self, partition_id: str) -> bool:
        return partition_id in self._sizes

    def list_partitions(self) -> list[str]:
        return sorted(self._sizes)

    def delta_partitions(self, base_name: str) -> list[str]:
        """Partitions named ``<base_name>.d...``, in lexicographic order.

        Maintained incrementally at write/attach time, replacing the
        per-query ``list_partitions()`` prefix scan.
        """
        return list(self._deltas.get(base_name, ()))

    def partition_nbytes(self, partition_id: str) -> int:
        if partition_id not in self._sizes:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._sizes[partition_id]

    def record_count(self, partition_id: str) -> int:
        """Records in a partition, from header metadata (no payload read)."""
        if partition_id not in self._record_counts:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._record_counts[partition_id]

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    def __len__(self) -> int:
        return len(self._sizes)

"""Simulated distributed file system (stands in for HDFS).

A facade over the :mod:`repro.storage.engine` subsystem: partitions are
stored through a :class:`~repro.storage.engine.StorageEngine` — in-memory
or mmap-backed on disk, in binary format v2 (default) or the legacy v1
blob stream — while this class keeps everything *simulated* about the DFS:

* byte-level read/write counters (the "additional data access" metric of
  Fig. 11(b)).  Counters are **logical** and format-independent: every
  partition touch charges the partition's logical size (records plus JSON
  header length, the v1 accounting) no matter which physical format or
  cache served the bytes, so the paper's access-volume metrics are
  byte-identical across storage configurations;
* the capacity constraint ``c`` of Def. 12 (``block_records``);
* an opt-in byte-bounded LRU **read cache** over opened partition handles
  (``cache_bytes``), tracked physically by ``cache_hits``/``cache_misses``;
* **thread safety with a narrow lock** — one reentrant lock guards only
  the *mutable bookkeeping*: the partition registry, the read cache and
  the counter snapshot.  Everything that can block — backend opens,
  retry-backoff sleeps, fault-injected straggler sleeps — runs **outside**
  that lock, under a per-partition in-flight guard (single-flight per
  partition id), so concurrent readers of distinct partitions genuinely
  overlap instead of convoying behind one reader's sleep.  The narrowed
  lock preserves three invariants the test suite pins down:

  1. *Exact logical counters* — ``bytes_read``/``partitions_read`` (and
     the hit/miss split with caching on) are commutative sums taken under
     the lock, so a thread hammer observes arithmetically exact totals;
  2. *Deterministic per-name attempt schedules* — the per-partition
     guard serialises open attempts **per partition id**, so the fault
     injector's per-name attempt counter advances in the same sequence
     whether reads are issued serially or from concurrent shards (only
     cross-partition interleaving, which the schedule never depends on,
     is left to the OS);
  3. *Bit-identical zero-fault parity* — with no faults armed the read
     path does exactly the work of the former coarse-locked one, in the
     same per-partition order, so answers and counters are unchanged;
* a **delta-name registry** — ``delta_partitions(base)`` answers the
  ``<base>.d<seq>`` naming-convention lookup from an in-memory index;
* **header metadata** — ``record_count(pid)`` / ``series_length(pid)``
  maintained at write/attach time so reopening an index, or validating an
  append, never reads partition payloads.

With ``partition_format="v2"`` a read returns a lazy
:class:`~repro.storage.engine.PartitionV2View` whose cluster reads map
only the requested byte ranges; ``partition_format="v1"`` preserves the
seed behaviour exactly (in-memory: the original
:class:`~repro.storage.partition.PartitionFile` objects, zero
serialisation; on disk: full-blob deserialisation per read).
"""

from __future__ import annotations

import threading
import time
from bisect import insort
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import (
    PartitionLostError,
    PartitionNotFoundError,
    ReadTimeoutError,
    StorageError,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy
from repro.series import series_nbytes
from repro.storage.engine import LocalDiskBackend, MemoryBackend, StorageEngine
from repro.storage.engine.engine import PartitionHandle
from repro.storage.partition import PartitionFile, logical_partition_nbytes

__all__ = ["SimulatedDFS", "DfsCounters"]

_DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


@dataclass
class DfsCounters:
    """Cumulative I/O counters, for tests and access-volume metrics.

    ``bytes_read`` / ``partitions_read`` are *logical*: every successful
    read charges them, cache hit or not.  ``cache_hits`` / ``cache_misses``
    track the physical behaviour of the read cache (both stay 0 with
    caching off).  The resilience counters (PR 8) are zero in fault-free
    runs by construction: ``retries`` counts retry attempts after a
    recoverable failure, ``read_failures`` counts logical reads that
    failed for good (retries exhausted or partition lost), and
    ``corruption_detected`` counts checksum/decode integrity failures.
    """

    bytes_written: int = 0
    bytes_read: int = 0
    partitions_written: int = 0
    partitions_read: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    read_failures: int = 0
    corruption_detected: int = 0

    #: (field name, registry metric name) — the re-homing map between this
    #: value object and the ``dfs.*`` counters on a MetricsRegistry.
    METRIC_NAMES = (
        ("bytes_written", "dfs.bytes_written"),
        ("bytes_read", "dfs.bytes_read"),
        ("partitions_written", "dfs.partitions_written"),
        ("partitions_read", "dfs.partitions_read"),
        ("cache_hits", "dfs.cache_hits"),
        ("cache_misses", "dfs.cache_misses"),
        ("retries", "dfs.retries"),
        ("read_failures", "dfs.read_failures"),
        ("corruption_detected", "dfs.corruption_detected"),
    )

    def snapshot(self) -> "DfsCounters":
        return DfsCounters(
            self.bytes_written, self.bytes_read,
            self.partitions_written, self.partitions_read,
            self.cache_hits, self.cache_misses,
            self.retries, self.read_failures, self.corruption_detected,
        )


class SimulatedDFS:
    """An in-memory (optionally disk-backed) partition store.

    Parameters
    ----------
    block_bytes:
        Storage block size; the paper uses 64 or 128 MB HDFS blocks.
    backing_dir:
        If given, partitions are persisted to files under this directory
        and served through mmap, making I/O genuinely disk-based.
    cache_bytes:
        Byte budget of the LRU read cache over opened partition handles;
        0 (the default) disables caching.  Logical read counters are
        unaffected either way.
    partition_format:
        Physical format for newly written partitions: ``"v2"`` (default,
        the zero-copy columnar format) or ``"v1"`` (the legacy blob
        stream).  Reads sniff the stored format, so mixed directories and
        old payloads stay readable regardless of this setting.
    registry:
        :class:`~repro.obs.MetricsRegistry` the I/O counters live on as
        ``dfs.*`` counters (PR 7 re-homed them there so DFS accounting
        shares the observability schema).  ``None`` (the default) creates
        a private registry.  The :attr:`counters` property still returns
        a :class:`DfsCounters` snapshot with the exact same logical
        semantics the parity suites pin down.
    checksums:
        Whether newly written v2 partitions carry per-section CRC32
        checksums (header version 3; the default).  Purely physical —
        logical counters, query answers and simulated costs are
        byte-identical with checksums on or off.
    verify:
        Checksum-verification mode on reads: ``"off"``, ``"lazy"``
        (default — meta/directory at open, payload on first mapping) or
        ``"eager"`` (everything at open; corrupted payloads then fail
        *inside* the retry loop, so per-attempt bit-flips are
        recoverable).  Detected corruption raises
        :class:`~repro.exceptions.PartitionCorruptError` and bumps
        ``dfs.corruption_detected``.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; when given the
        backend is wrapped in a :class:`~repro.resilience.FaultInjector`
        realising the plan's deterministic fault schedule on the read
        path (a plan with all rates 0 exercises the wrapper and is
        byte-transparent — the zero-fault parity oracle).
    retry_policy:
        :class:`~repro.resilience.RetryPolicy` for :meth:`read_partition`;
        ``None`` uses the default (3 attempts, exponential backoff with
        seeded jitter, no deadline).  Fault-free reads never retry, so
        the policy is always armed without affecting parity.
    """

    def __init__(
        self,
        block_bytes: int = _DEFAULT_BLOCK_BYTES,
        backing_dir: str | Path | None = None,
        cache_bytes: int = 0,
        partition_format: str = "v2",
        registry: MetricsRegistry | None = None,
        checksums: bool = True,
        verify: str = "lazy",
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if block_bytes < 1024:
            raise StorageError("block_bytes must be >= 1024")
        if cache_bytes < 0:
            raise StorageError("cache_bytes must be >= 0")
        self.block_bytes = block_bytes
        self.cache_bytes = cache_bytes
        self.backing_dir = Path(backing_dir) if backing_dir else None
        if self.backing_dir:
            backend = LocalDiskBackend(self.backing_dir)
        else:
            backend = MemoryBackend()
        self.fault_injector: FaultInjector | None = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(backend, fault_plan)
            backend = self.fault_injector
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._engine = StorageEngine(
            backend,
            partition_format=partition_format,
            checksums=checksums,
            verify=verify,
            corruption_cb=self._on_corruption,
        )
        # v1 + in-memory keeps the seed's object store: partitions held as
        # live PartitionFile objects with zero serialisation cost.  Every
        # other configuration stores encoded bytes in the engine.
        self._partitions: dict[str, PartitionFile] = {}
        self._sizes: dict[str, int] = {}
        self._record_counts: dict[str, int] = {}
        self._series_lengths: dict[str, int] = {}
        self._deltas: dict[str, list[str]] = {}
        self._cache: OrderedDict[str, PartitionHandle] = OrderedDict()
        self._cache_used = 0
        # The narrow lock: registry, cache and counter mutations only.
        # Nothing that can block — backend opens, retry sleeps, injected
        # straggler sleeps — ever runs under it; those happen under the
        # per-partition guards below so only same-partition reads
        # serialise (see the module docstring's invariants).
        self._lock = threading.RLock()
        # Per-partition single-flight guards for the open path, created
        # lazily under self._lock.  Bounded by the number of registered
        # partitions, so no eviction is needed.
        self._inflight: dict[str, threading.Lock] = {}
        # Logical counters live on a MetricsRegistry as dfs.* counters (one
        # schema across the repo); handles are cached so the hot paths pay
        # one .inc() each.  They are always on — never gated on telemetry —
        # because the paper's access-volume metrics and the parity suites
        # are built on them.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metric_handles = tuple(
            self.registry.counter(metric)
            for _, metric in DfsCounters.METRIC_NAMES
        )
        (self._c_bytes_written, self._c_bytes_read,
         self._c_partitions_written, self._c_partitions_read,
         self._c_cache_hits, self._c_cache_misses,
         self._c_retries, self._c_read_failures,
         self._c_corruption) = self._metric_handles

    def _on_corruption(self) -> None:
        # Hooked into the engine as corruption_cb; called (possibly under
        # the DFS lock) right before a PartitionCorruptError raise.
        self._c_corruption.inc()

    @property
    def counters(self) -> DfsCounters:
        """Logical I/O counters, as a consistent :class:`DfsCounters` value.

        Snapshotted under the DFS lock, so the fields are mutually
        consistent even while readers/writers run concurrently.  The
        semantics are unchanged from the pre-registry implementation:
        logical, format- and cache-independent reads/writes; physical
        cache hit/miss tallies.
        """
        with self._lock:
            return DfsCounters(*(h.value for h in self._metric_handles))

    @property
    def partition_format(self) -> str:
        """Format newly written partitions are encoded in."""
        return self._engine.partition_format

    @property
    def engine(self) -> StorageEngine:
        """The underlying storage engine (format/backends/raw access)."""
        return self._engine

    def _object_store(self) -> bool:
        return self.partition_format == "v1" and not self.backing_dir

    # -- capacity ---------------------------------------------------------------

    def block_records(self, series_length: int) -> int:
        """Capacity constraint ``c``: records of ``series_length`` per block."""
        return max(1, self.block_bytes // series_nbytes(series_length))

    # -- reattachment ---------------------------------------------------------------

    def attach(self) -> int:
        """Register the partitions already present in the backing directory.

        Lets a fresh process reopen a disk-persisted index: the engine
        lists the stored partitions and reads only their headers (v2
        header + directory, or the v1 meta blob; legacy v1 files lacking
        size metadata fall back to a full read).  Returns the number of
        partitions attached.
        """
        if not self.backing_dir:
            raise StorageError("attach() requires a backing_dir")
        attached = 0
        for pid in self._engine.list_partitions():
            if pid in self._sizes:
                continue
            meta = self._engine.partition_meta(pid)
            self._register(pid, meta.logical_nbytes, meta.record_count,
                           meta.series_length)
            attached += 1
        return attached

    # -- write/read ----------------------------------------------------------------

    def _register(self, pid: str, nbytes: int, record_count: int,
                  series_length: int) -> None:
        self._sizes[pid] = nbytes
        self._record_counts[pid] = record_count
        self._series_lengths[pid] = series_length
        base, sep, _ = pid.partition(".d")
        if sep:
            insort(self._deltas.setdefault(base, []), pid)

    def write_partition(self, partition: PartitionFile) -> None:
        pid = partition.partition_id
        with self._lock:
            if pid in self._sizes:
                raise StorageError(f"partition {pid!r} already exists")
            nbytes = partition.nbytes
            if self._object_store():
                self._partitions[pid] = partition
            else:
                self._engine.write_partition(partition)
            # Defensive invalidation: duplicate ids are rejected above, so a
            # cached entry can never be stale today — but any future overwrite
            # path must evict here, and the cost is one dict lookup.
            self._cache_evict(pid)
            self._register(pid, nbytes, partition.record_count,
                           partition.series_length)
            self._c_bytes_written.inc(nbytes)
            self._c_partitions_written.inc()

    def write_partition_arrays(
        self,
        partition_id: str,
        ids,
        values,
        header: dict[str, tuple[int, int]],
        rows=None,
    ) -> int:
        """Bulk-write entry point: store cluster-sorted arrays directly.

        The flat-trie build pipeline routes and sorts every record in bulk,
        then writes each partition straight from the dataset arrays (with a
        ready cluster directory) through here — into the configured
        physical format, with no intermediate :class:`PartitionFile` on the
        v2 path.  With ``rows`` given, ``ids``/``values`` are source arrays
        and the stored records are ``ids[rows]``/``values[rows]``, gathered
        directly into the payload buffer.  Registration, logical counters
        and cache invalidation behave exactly like :meth:`write_partition`;
        the stored bytes are identical to writing
        ``PartitionFile.from_clusters`` over the same records.  Returns the
        partition's logical size in bytes.
        """
        record_count = int(rows.shape[0] if rows is not None else ids.shape[0])
        series_length = int(values.shape[1])
        nbytes = logical_partition_nbytes(record_count, series_length, header)
        with self._lock:
            if partition_id in self._sizes:
                raise StorageError(f"partition {partition_id!r} already exists")
            if self._object_store():
                self._partitions[partition_id] = PartitionFile.from_arrays(
                    partition_id,
                    ids[rows] if rows is not None else ids,
                    values[rows] if rows is not None else values,
                    header,
                )
            else:
                self._engine.write_arrays(partition_id, ids, values, header,
                                          rows=rows)
            self._cache_evict(partition_id)
            self._register(partition_id, nbytes, record_count, series_length)
            self._c_bytes_written.inc(nbytes)
            self._c_partitions_written.inc()
        return nbytes

    @property
    def stores_encoded(self) -> bool:
        """True when partitions live as encoded bytes in the engine — the
        precondition for :meth:`write_encoded_partition` (everything except
        the v1 in-memory object store)."""
        return not self._object_store()

    def write_encoded_partition(
        self,
        partition_id: str,
        payload: bytes,
        record_count: int,
        series_length: int,
        header: dict[str, tuple[int, int]],
    ) -> int:
        """Store a payload pre-encoded by :meth:`StorageEngine.encode_arrays`.

        The store half of :meth:`write_partition_arrays`, for the parallel
        builder: workers encode payloads concurrently (a pure function of
        the record arrays), the caller stores them through here serially in
        partition order.  Registration, logical counters and cache
        invalidation are identical to :meth:`write_partition_arrays` over
        the same records, so the build is bit-identical either way.
        """
        if self._object_store():
            raise StorageError(
                "write_encoded_partition requires an encoded store "
                "(v1 in-memory keeps live PartitionFile objects)"
            )
        nbytes = logical_partition_nbytes(record_count, series_length, header)
        with self._lock:
            if partition_id in self._sizes:
                raise StorageError(f"partition {partition_id!r} already exists")
            self._engine.write_payload(partition_id, payload)
            self._cache_evict(partition_id)
            self._register(partition_id, nbytes, record_count, series_length)
            self._c_bytes_written.inc(nbytes)
            self._c_partitions_written.inc()
        return nbytes

    def read_partition(self, partition_id: str) -> PartitionHandle:
        """One partition, as a :class:`PartitionFile` (v1) or lazy v2 view.

        Both handle types expose the same access interface; with format v2
        nothing beyond the header and cluster directory is materialised
        until cluster ranges are actually read.

        Recoverable failures — :class:`TransientReadError`, detected
        corruption, blown deadlines — are retried per
        :attr:`retry_policy` (``dfs.retries`` counts the extra attempts);
        :class:`PartitionLostError` and :class:`PartitionNotFoundError`
        are not retried.  A logical read that fails for good bumps
        ``dfs.read_failures`` and re-raises; only *successful* reads
        charge the logical ``bytes_read``/``partitions_read`` counters,
        which in fault-free runs is observationally identical to the
        pre-resilience accounting (every read succeeded).
        """
        # Lock discipline: the narrow lock covers only the existence check,
        # the cache probe and the counter/cache mutations.  The open itself
        # — backend I/O, retry-backoff sleeps, injected straggler sleeps —
        # runs under the partition's single-flight guard with the narrow
        # lock *released*, so readers of distinct partitions overlap while
        # same-partition attempts stay serialised (which is what keeps the
        # fault injector's per-name attempt schedule deterministic under
        # concurrent shards).
        with self._lock:
            if partition_id not in self._sizes:
                raise PartitionNotFoundError(f"no partition {partition_id!r}")
            guard = self._inflight.get(partition_id)
            if guard is None:
                guard = self._inflight.setdefault(
                    partition_id, threading.Lock()
                )
        if self.cache_bytes:
            cached = self._cached_read(partition_id)
            if cached is not None:
                return cached
        with guard:
            if self.cache_bytes:
                # Re-probe: a reader that held the guard while we waited
                # may have opened and cached this partition already.
                cached = self._cached_read(partition_id)
                if cached is not None:
                    return cached
            try:
                part = self._open_with_retry(partition_id)
            except StorageError:
                with self._lock:
                    self._c_read_failures.inc()
                raise
            with self._lock:
                self._c_bytes_read.inc(self._sizes[partition_id])
                self._c_partitions_read.inc()
                if self.cache_bytes:
                    self._c_cache_misses.inc()
                    self._cache_insert(partition_id, part)
            return part

    def _cached_read(self, partition_id: str) -> PartitionHandle | None:
        """Serve one read from the cache, or return ``None`` on a miss.

        On a hit the logical counters and the hit tally are charged and
        the LRU entry refreshed — all under the narrow lock, atomically
        with respect to the :attr:`counters` snapshot.  The miss tally is
        *not* charged here: only the reader that actually opens the
        partition charges a miss, so ``cache_hits + cache_misses`` equals
        ``partitions_read`` exactly under any interleaving.
        """
        with self._lock:
            cached = self._cache.get(partition_id)
            if cached is None:
                return None
            # Logical accounting is cache-independent: the paper's
            # access-volume metrics charge every partition touch.
            self._c_bytes_read.inc(self._sizes[partition_id])
            self._c_partitions_read.inc()
            self._c_cache_hits.inc()
            self._cache.move_to_end(partition_id)
            return cached

    def _open_with_retry(self, partition_id: str) -> PartitionHandle:
        """Open one partition under the retry policy.

        The caller holds the partition's single-flight guard but **not**
        the narrow DFS lock: backoff and injected straggler sleeps here
        block only same-partition readers.  Counter bumps re-acquire the
        narrow lock so the :attr:`counters` snapshot stays mutually
        consistent.
        """
        if self._object_store():
            # Live PartitionFile objects: no physical read to fail.
            return self._partitions[partition_id]
        policy = self.retry_policy
        injector = self.fault_injector
        name = self._engine.blob_name(partition_id)
        last_err: StorageError | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff_delay(name, attempt)
                if delay > 0:
                    time.sleep(delay)
                with self._lock:
                    self._c_retries.inc()
            if injector is not None:
                injector.begin_attempt(name)
            t_attempt = time.perf_counter()
            try:
                part = self._engine.open_partition(partition_id)
            except (PartitionLostError, PartitionNotFoundError):
                raise  # permanent: retrying cannot help
            except StorageError as err:
                last_err = err
                continue
            if (
                policy.deadline_s is not None
                and time.perf_counter() - t_attempt > policy.deadline_s
            ):
                # Post-hoc deadline: the simulated DFS cannot abort a read
                # mid-flight, so a straggling attempt is failed after the
                # fact and retried like any transient fault.
                last_err = ReadTimeoutError(
                    f"read of {partition_id!r} exceeded the "
                    f"{policy.deadline_s}s deadline"
                )
                continue
            return part
        assert last_err is not None
        raise last_err

    # -- read cache --------------------------------------------------------------

    def _cache_insert(self, pid: str, part: PartitionHandle) -> None:
        # Caller holds self._lock.  Idempotent on purpose: a pid already
        # cached (possible when an eviction races a re-read in caller code
        # built on snapshots) must not double-count _cache_used.
        if pid in self._cache:
            self._cache.move_to_end(pid)
            return
        nbytes = self._sizes[pid]
        if nbytes > self.cache_bytes:
            return
        self._cache[pid] = part
        self._cache_used += nbytes
        while self._cache_used > self.cache_bytes:
            evicted, _ = self._cache.popitem(last=False)
            self._cache_used -= self._sizes[evicted]

    def _cache_evict(self, pid: str) -> None:
        # Caller holds self._lock.
        if self._cache.pop(pid, None) is not None:
            self._cache_used -= self._sizes.get(pid, 0)

    @property
    def cache_used_bytes(self) -> int:
        """Bytes currently held by the read cache."""
        with self._lock:
            return self._cache_used

    def cache_clear(self) -> None:
        """Drop every cached partition (counters untouched)."""
        with self._lock:
            self._cache.clear()
            self._cache_used = 0

    # -- introspection -----------------------------------------------------------

    def has_partition(self, partition_id: str) -> bool:
        return partition_id in self._sizes

    def list_partitions(self) -> list[str]:
        return sorted(self._sizes)

    def delta_partitions(self, base_name: str) -> list[str]:
        """Partitions named ``<base_name>.d...``, in lexicographic order.

        Maintained incrementally at write/attach time, replacing the
        per-query ``list_partitions()`` prefix scan.
        """
        return list(self._deltas.get(base_name, ()))

    def partition_nbytes(self, partition_id: str) -> int:
        if partition_id not in self._sizes:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._sizes[partition_id]

    def record_count(self, partition_id: str) -> int:
        """Records in a partition, from header metadata (no payload read)."""
        if partition_id not in self._record_counts:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._record_counts[partition_id]

    def series_length(self, partition_id: str) -> int:
        """Series length of a partition, from header metadata (no payload read)."""
        if partition_id not in self._series_lengths:
            raise PartitionNotFoundError(f"no partition {partition_id!r}")
        return self._series_lengths[partition_id]

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    def __len__(self) -> int:
        return len(self._sizes)

"""Physical partition files.

Section VI ("Localized Record-Level Similarity within Identified
Partitions") specifies the layout CLIMBER relies on at query time:

    "The data records within each data partition are organized such that
     all data series objects belonging to a trie node are stored
     contiguously next to each other.  The start offset of each trie node
     cluster is maintained in a header section within the partition."

A :class:`PartitionFile` implements exactly that: records grouped into
*clusters* (keyed by the trie-node path string), stored contiguously, with
a header mapping each cluster key to its (offset, count).  Reading one
cluster touches only its slice; reading the partition touches everything —
the difference the paper's query algorithms exploit.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import StorageError
from repro.series import series_nbytes
from repro.storage.serialization import (
    array_from_bytes,
    array_to_bytes,
    json_from_bytes,
    json_to_bytes,
    read_blob,
    write_blob,
)

__all__ = ["PartitionFile", "logical_partition_nbytes"]


def logical_partition_nbytes(
    record_count: int,
    series_length: int,
    header: Mapping[str, tuple[int, int]],
) -> int:
    """The *logical* stored size of a partition, in bytes.

    Records (with per-record overhead) plus the serialised JSON header —
    the quantity the DFS counters charge per read and the cost model bills
    for I/O.  This is the single definition of that accounting: every
    physical format (v1 blobs, v2 columnar) and every registration path
    (write-time, attach-time) must report sizes through it so the
    Fig. 11(b) access-volume metrics stay format-independent.
    """
    records = record_count * series_nbytes(series_length)
    return records + len(
        json_to_bytes({k: list(v) for k, v in header.items()})
    )


@dataclass
class PartitionFile:
    """One physical storage partition.

    Build with :meth:`from_clusters`; the constructor trusts its inputs.
    """

    partition_id: str
    ids: np.ndarray
    values: np.ndarray
    header: dict[str, tuple[int, int]]

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_clusters(
        cls,
        partition_id: str,
        clusters: Mapping[str, tuple[np.ndarray, np.ndarray]],
    ) -> "PartitionFile":
        """Assemble a partition from ``{cluster_key: (ids, values)}``.

        Clusters are laid out in sorted key order, each contiguous.
        """
        if not clusters:
            raise StorageError(f"partition {partition_id!r} needs >= 1 cluster")
        keys = sorted(clusters)
        id_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        header: dict[str, tuple[int, int]] = {}
        offset = 0
        width = None
        for key in keys:
            cid, cval = clusters[key]
            cid = np.asarray(cid, dtype=np.int64)
            cval = np.asarray(cval, dtype=np.float64)
            if cval.ndim != 2 or cid.shape[0] != cval.shape[0]:
                raise StorageError(f"cluster {key!r} ids/values mismatch")
            if width is None:
                width = cval.shape[1]
            elif cval.shape[1] != width:
                raise StorageError("all clusters must share one series length")
            header[key] = (offset, cid.shape[0])
            offset += cid.shape[0]
            id_parts.append(cid)
            val_parts.append(cval)
        return cls(
            partition_id=partition_id,
            ids=np.concatenate(id_parts),
            values=np.vstack(val_parts),
            header=header,
        )

    @classmethod
    def from_arrays(
        cls,
        partition_id: str,
        ids: np.ndarray,
        values: np.ndarray,
        header: Mapping[str, tuple[int, int]],
    ) -> "PartitionFile":
        """Wrap records already laid out in final cluster order.

        The bulk-write counterpart of :meth:`from_clusters`: the caller
        (the flat-trie build pipeline) has sorted the records so each
        cluster is a contiguous run and supplies the directory directly —
        no per-cluster concatenation happens here.  ``header`` insertion
        order defines cluster order and must be key-sorted to match the
        :meth:`from_clusters` layout contract.
        """
        if not header:
            raise StorageError(f"partition {partition_id!r} needs >= 1 cluster")
        ids = np.asarray(ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or ids.ndim != 1 or ids.shape[0] != values.shape[0]:
            raise StorageError(
                f"partition {partition_id!r}: ids/values shape mismatch"
            )
        out_header: dict[str, tuple[int, int]] = {}
        for key, (offset, count) in header.items():
            offset, count = int(offset), int(count)
            if offset < 0 or count < 0 or offset + count > ids.shape[0]:
                raise StorageError(
                    f"cluster {key!r} range outside partition payload"
                )
            out_header[key] = (offset, count)
        return cls(partition_id, ids, values, out_header)

    # -- access ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return int(self.ids.shape[0])

    @property
    def series_length(self) -> int:
        return int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        """Stored size: records (with per-record overhead) plus the header.

        Computed once and cached — the query path asks repeatedly and the
        header serialisation is not free.
        """
        cached = self.__dict__.get("_nbytes")
        if cached is None:
            cached = self.__dict__["_nbytes"] = logical_partition_nbytes(
                self.record_count, self.series_length, self.header
            )
        return cached

    def cluster_keys(self) -> list[str]:
        return list(self.header)

    def read_cluster(self, key: str) -> tuple[np.ndarray, np.ndarray]:
        """Records of one trie-node cluster (a view, not a copy)."""
        if key not in self.header:
            raise StorageError(
                f"partition {self.partition_id!r} has no cluster {key!r}"
            )
        start, count = self.header[key]
        return self.ids[start : start + count], self.values[start : start + count]

    def read_clusters(
        self, keys: Iterable[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated records of several clusters."""
        ids_parts, val_parts = [], []
        for key in keys:
            cid, cval = self.read_cluster(key)
            ids_parts.append(cid)
            val_parts.append(cval)
        if not ids_parts:
            raise StorageError("read_clusters requires at least one key")
        return np.concatenate(ids_parts), np.vstack(val_parts)

    def read_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Every record in the partition."""
        return self.ids, self.values

    def cluster_sizes(self) -> dict[str, int]:
        return {k: count for k, (_, count) in self.header.items()}

    # -- serialisation -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        write_blob(buf, json_to_bytes(
            {"partition_id": self.partition_id,
             "header": {k: list(v) for k, v in self.header.items()},
             "record_count": self.record_count,
             "series_length": self.series_length}
        ))
        write_blob(buf, array_to_bytes(self.ids))
        write_blob(buf, array_to_bytes(self.values))
        return buf.getvalue()

    @staticmethod
    def stored_size_from_meta(meta: Mapping) -> tuple[int, int] | None:
        """``(nbytes, record_count)`` from a partition's first header blob.

        Lets the DFS register a persisted partition without deserialising
        its payload (reopen is O(partitions), not O(bytes)).  Returns
        ``None`` for legacy payloads written before the size metadata was
        added to the header.
        """
        if "record_count" not in meta or "series_length" not in meta:
            return None
        records = int(meta["record_count"])
        nbytes = logical_partition_nbytes(
            records, int(meta["series_length"]),
            {k: tuple(v) for k, v in meta["header"].items()},
        )
        return nbytes, records

    @classmethod
    def from_bytes(cls, data: bytes) -> "PartitionFile":
        buf = io.BytesIO(data)
        meta = json_from_bytes(read_blob(buf))
        ids = array_from_bytes(read_blob(buf))
        values = array_from_bytes(read_blob(buf))
        header = {k: (int(v[0]), int(v[1])) for k, v in meta["header"].items()}
        return cls(meta["partition_id"], ids, values, header)

"""CLIMBER-INX construction (paper Fig. 6).

The four steps, executed for real on the input dataset while declaring
paper-scale costs to the cluster simulator:

1. partition-level sampling; PAA + pivot selection + rank-sensitive
   signatures of the sample;
2. aggregation of signatures and data-driven centroid selection
   (Algorithm 2);
3. group formation (Algorithm 1), per-group trie partitioning (§IV-D) and
   FFD leaf packing (Def. 13) — yielding the index skeleton;
4. broadcast of skeleton + pivots, full-data signature conversion, and
   re-distribution of every record into its physical partition.

Phase naming matches Fig. 10(a): stages are prefixed ``build/skeleton``,
``build/convert`` and ``build/redistribute`` so the per-phase breakdown
can be read back from the simulation report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.cluster import (
    ClusterSimulator,
    CostModel,
    SimReport,
    TaskCost,
    ops_paa,
    ops_signature,
)
from repro.core.assignment import GroupAssigner
from repro.core.centroids import compute_centroids
from repro.core.config import ClimberConfig
from repro.core.packing import first_fit_decreasing
from repro.core.skeleton import (
    GroupEntry,
    IndexSkeleton,
    SkeletonWithPivots,
    cluster_key,
    partition_name,
)
from repro.core.trie import build_group_trie
from repro.exceptions import ConfigurationError
from repro.pivots import decay_weights, permutation_prefixes, select_random_pivots
from repro.series import SeriesDataset, paa_transform
from repro.storage import PartitionFile, SimulatedDFS

__all__ = ["BuildArtifacts", "build_index_artifacts"]


@dataclass
class BuildArtifacts:
    """Everything the builder produces; consumed by ClimberIndex."""

    skeleton: IndexSkeleton
    pivots: np.ndarray
    dfs: SimulatedDFS
    assigner: GroupAssigner
    sim_report: SimReport
    wall_seconds: float
    n_records: int

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Construction-phase breakdown (paper Fig. 10(a))."""
        return {
            "skeleton": self.sim_report.seconds_for("build/skeleton"),
            "conversion": self.sim_report.seconds_for("build/convert"),
            "redistribution": self.sim_report.seconds_for("build/redistribute"),
        }


def build_index_artifacts(
    dataset: SeriesDataset,
    config: ClimberConfig,
    dfs: SimulatedDFS | None = None,
    model: CostModel | None = None,
) -> BuildArtifacts:
    """Run the full four-step construction workflow."""
    import time

    t0 = time.perf_counter()
    if dataset.length < config.word_length:
        raise ConfigurationError(
            f"series length {dataset.length} < word length {config.word_length}"
        )
    dfs = dfs if dfs is not None else SimulatedDFS(
        cache_bytes=config.dfs_cache_bytes,
        partition_format=config.partition_format,
    )
    sim = ClusterSimulator(model or CostModel())
    rng = np.random.default_rng(config.seed)
    scale = config.cost_scale
    n = dataset.length
    w, r, m = config.word_length, config.n_pivots, config.prefix_length
    capacity = config.capacity or dfs.block_records(n)
    sig_ops = ops_paa(n) + ops_signature(r, w, m)

    # ------------------------------------------------------------------ Step 1
    chunks = dataset.split_into_chunks(config.n_input_partitions)
    n_sampled = max(1, round(config.sample_fraction * len(chunks)))
    sample_idx = np.sort(rng.choice(len(chunks), size=n_sampled, replace=False))
    sample_rows = np.concatenate(
        [chunks[i].values for i in sample_idx], axis=0
    )
    alpha = sample_rows.shape[0] / dataset.count
    sample_bytes = sum(chunks[i].nbytes for i in sample_idx)
    sim.run_scaled_stage(
        "build/skeleton/sample",
        TaskCost(
            read_bytes=int(sample_bytes * scale),
            cpu_ops=int(sample_rows.shape[0] * sig_ops * scale),
        ),
        min_tasks=len(sample_idx),
    )
    sample_paa = paa_transform(sample_rows, w)
    if r > sample_paa.shape[0]:
        raise ConfigurationError(
            f"sample holds {sample_paa.shape[0]} series < n_pivots {r}; "
            "increase sample_fraction or decrease n_pivots"
        )
    pivots = select_random_pivots(sample_paa, r, rng)
    sample_ranked = permutation_prefixes(sample_paa, pivots, m)

    # ------------------------------------------------------------------ Step 2
    ranked_counter: Counter[tuple[int, ...]] = Counter(
        tuple(int(p) for p in row) for row in sample_ranked
    )
    unranked_counter: Counter[tuple[int, ...]] = Counter()
    for sig, freq in ranked_counter.items():
        unranked_counter[tuple(sorted(sig))] += freq
    unranked_sigs = list(unranked_counter)
    unranked_freqs = [unranked_counter[s] for s in unranked_sigs]
    centroids = compute_centroids(
        unranked_sigs,
        unranked_freqs,
        sample_fraction=alpha,
        capacity=capacity,
        epsilon=config.epsilon,
        max_centroids=config.max_centroids,
    )
    # Driver-side work on the aggregated signature list: its size grows
    # with the number of *distinct* signatures, not the data volume, so it
    # is charged honestly (not multiplied by cost_scale).
    sim.run_driver_step(
        "build/skeleton/centroids",
        TaskCost(cpu_ops=len(unranked_sigs) * max(1, len(centroids)) * m),
    )

    # ------------------------------------------------------------------ Step 3
    weights = decay_weights(m, config.decay, config.decay_rate)
    assigner = GroupAssigner(centroids, r, m, weights=weights, rng=rng)
    distinct_ranked = np.array(sorted(ranked_counter), dtype=np.int64)
    distinct_freqs = np.array(
        [ranked_counter[tuple(row)] for row in distinct_ranked.tolist()]
    )
    group_of_sig = assigner.assign(distinct_ranked).group_indices

    n_groups = len(centroids) + 1
    members: list[list[tuple[tuple[int, ...], float]]] = [[] for _ in range(n_groups)]
    for row, freq, gid in zip(
        distinct_ranked.tolist(), distinct_freqs.tolist(), group_of_sig.tolist()
    ):
        members[gid].append((tuple(row), freq / alpha))

    groups: list[GroupEntry] = []
    next_pid = 0
    for gid in range(n_groups):
        sigs = [s for s, _ in members[gid]]
        counts = [c for _, c in members[gid]]
        trie = build_group_trie(sigs, counts, capacity)
        leaves = list(trie.leaves())
        bins = first_fit_decreasing(
            [(leaf.path, leaf.count) for leaf in leaves], capacity
        )
        leaf_by_path = {leaf.path: leaf for leaf in leaves}
        bin_loads: list[float] = []
        bin_pids: list[int] = []
        for bin_paths in bins:
            pid = next_pid
            next_pid += 1
            load = 0.0
            for path in bin_paths:
                leaf = leaf_by_path[path]
                leaf.partition_ids = {pid}
                load += leaf.count
            bin_loads.append(load)
            bin_pids.append(pid)
        trie.finalize_partitions()
        default_pid = bin_pids[int(np.argmin(bin_loads))]
        groups.append(
            GroupEntry(
                group_id=gid,
                centroid=() if gid == 0 else centroids[gid - 1],
                trie=trie,
                default_partition=default_pid,
                est_size=trie.count,
            )
        )
    skeleton = IndexSkeleton(
        prefix_length=m,
        n_pivots=r,
        word_length=w,
        groups=groups,
        n_partitions=next_pid,
    )
    sim.run_driver_step(
        "build/skeleton/assemble",
        TaskCost(cpu_ops=len(distinct_ranked) * m * 8),
    )

    # ------------------------------------------------------------------ Step 4
    broadcast_bytes = len(SkeletonWithPivots(skeleton, pivots).to_bytes())
    sim.broadcast("build/redistribute/broadcast", broadcast_bytes)

    sim.run_scaled_stage(
        "build/convert",
        TaskCost(
            read_bytes=int(dataset.nbytes * scale),
            cpu_ops=int(dataset.count * sig_ops * scale),
        ),
        min_tasks=len(chunks),
    )

    # Real routing of every record.
    clusters: dict[int, dict[str, list[int]]] = {}
    row_offset = 0
    for chunk in chunks:
        paa = paa_transform(chunk.values, w)
        ranked = permutation_prefixes(paa, pivots, m)
        gids = assigner.assign(ranked).group_indices
        for local in range(chunk.count):
            gid = int(gids[local])
            entry = groups[gid]
            node = entry.trie.descend(ranked[local])
            if node.is_leaf:
                pid = next(iter(node.partition_ids))
                key = cluster_key(gid, node.path)
            else:
                pid = entry.default_partition
                key = cluster_key(gid, None)
            clusters.setdefault(pid, {}).setdefault(key, []).append(
                row_offset + local
            )
        row_offset += chunk.count

    written_bytes = 0
    n_written = 0
    for pid in sorted(clusters):
        mapping = {
            key: (dataset.ids[rows], dataset.values[rows])
            for key, rows in clusters[pid].items()
            for rows in [np.asarray(rows, dtype=np.int64)]
        }
        part = PartitionFile.from_clusters(partition_name(pid), mapping)
        dfs.write_partition(part)
        written_bytes += part.nbytes
        n_written += 1
    sim.run_scaled_stage(
        "build/redistribute/shuffle",
        TaskCost(shuffle_bytes=int(dataset.nbytes * scale)),
        min_tasks=len(chunks),
    )
    sim.run_scaled_stage(
        "build/redistribute/write",
        TaskCost(write_bytes=int(written_bytes * scale)),
        min_tasks=n_written,
    )

    return BuildArtifacts(
        skeleton=skeleton,
        pivots=pivots,
        dfs=dfs,
        assigner=assigner,
        sim_report=sim.fresh_report(),
        wall_seconds=time.perf_counter() - t0,
        n_records=dataset.count,
    )

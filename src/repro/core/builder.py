"""CLIMBER-INX construction (paper Fig. 6).

The four steps, executed for real on the input dataset while declaring
paper-scale costs to the cluster simulator:

1. partition-level sampling; PAA + pivot selection + rank-sensitive
   signatures of the sample;
2. aggregation of signatures and data-driven centroid selection
   (Algorithm 2);
3. group formation (Algorithm 1), per-group trie partitioning (§IV-D) and
   FFD leaf packing (Def. 13) — yielding the index skeleton;
4. broadcast of skeleton + pivots, full-data signature conversion, and
   re-distribution of every record into its physical partition.

Phase naming matches Fig. 10(a): stages are prefixed ``build/skeleton``,
``build/convert`` and ``build/redistribute`` so the per-phase breakdown
can be read back from the simulation report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster import (
    ClusterSimulator,
    CostModel,
    SimReport,
    TaskCost,
    ops_paa,
    ops_signature,
)
from repro.core.assignment import GroupAssigner
from repro.core.centroids import compute_centroids
from repro.core.config import ClimberConfig
from repro.core.packing import first_fit_decreasing
from repro.core.parallel import (
    Executor,
    make_executor,
    record_parallel_fallback,
    split_ranges,
)
from repro.core.skeleton import (
    GroupEntry,
    IndexSkeleton,
    SkeletonWithPivots,
    cluster_key,
    partition_name,
)
from repro.core.trie import build_group_trie
from repro.exceptions import ConfigurationError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.pivots import decay_weights, permutation_prefixes, select_random_pivots
from repro.series import SeriesDataset, paa_transform
from repro.storage import PartitionFile, SimulatedDFS
from repro.storage.engine.format import encode_partition_v2_arrays

__all__ = ["BuildArtifacts", "build_index_artifacts"]


@dataclass
class BuildArtifacts:
    """Everything the builder produces; consumed by ClimberIndex."""

    skeleton: IndexSkeleton
    pivots: np.ndarray
    dfs: SimulatedDFS
    assigner: GroupAssigner
    sim_report: SimReport
    wall_seconds: float
    n_records: int
    wall_phase_seconds: dict[str, float] = field(default_factory=dict)
    """Real (not simulated) wall time of the Step-4 sub-phases:
    ``convert`` (PAA + signatures + group assignment) and ``redistribute``
    (trie routing, grouping and partition writes) — the before/after axis
    of ``benchmarks/bench_index_build.py``."""

    telemetry: Telemetry = field(default_factory=lambda: NULL_TELEMETRY)
    """The telemetry the build recorded into (``build.*`` histograms and
    span timings when enabled).  ``ClimberIndex.build`` adopts it so query
    metrics land on the same registry."""

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Construction-phase breakdown (paper Fig. 10(a))."""
        return {
            "skeleton": self.sim_report.seconds_for("build/skeleton"),
            "conversion": self.sim_report.seconds_for("build/convert"),
            "redistribution": self.sim_report.seconds_for("build/redistribute"),
        }


def build_index_artifacts(
    dataset: SeriesDataset,
    config: ClimberConfig,
    dfs: SimulatedDFS | None = None,
    model: CostModel | None = None,
    redistribution: str = "flat",
    conversion: str = "fused",
    telemetry: Telemetry | None = None,
) -> BuildArtifacts:
    """Run the full four-step construction workflow.

    Parameters
    ----------
    redistribution:
        Step-4 implementation: ``"flat"`` (default) routes every record
        through the CSR-compiled :class:`~repro.core.trie_flat.FlatTrieRouter`
        in bulk and writes partitions directly from sorted arrays;
        ``"legacy"`` is the original per-record descend loop, kept as the
        parity reference and benchmark baseline.  Both produce
        byte-identical partitions and identical simulated stage costs.
    conversion:
        Step-4 signature conversion: ``"fused"`` (default) streams the
        dataset through PAA -> ``permutation_prefixes`` -> vectorised
        ``assign`` in large row blocks written into preallocated output
        arrays; ``"legacy"`` is the original per-input-chunk loop over the
        retained reference assigner (per-row WD tie-break), kept as the
        parity reference and the baseline of
        ``benchmarks/bench_conversion.py``.  Both produce bit-identical
        signatures, group indices and RNG stream positions, so the
        partitions they feed are byte-identical too.
    telemetry:
        :class:`~repro.obs.Telemetry` the build records per-stage spans
        into (``build.skeleton_s``/``convert_s``/``redistribute_s``
        histograms, per-block and per-encode task timings).  ``None``
        creates one from ``config.telemetry`` — disabled by default, so
        the build pays one flag check per stage.  Observation only: the
        produced partitions, counters and RNG stream are bit-identical
        with telemetry on or off.
    """
    import time

    if redistribution not in ("flat", "legacy"):
        raise ConfigurationError(
            f"unknown redistribution mode {redistribution!r}"
        )
    if conversion not in ("fused", "legacy"):
        raise ConfigurationError(f"unknown conversion mode {conversion!r}")
    tel = telemetry if telemetry is not None else (
        Telemetry(enabled=True, sample_every=config.telemetry_sample_every)
        if config.telemetry else NULL_TELEMETRY
    )
    t0 = time.perf_counter()
    if dataset.length < config.word_length:
        raise ConfigurationError(
            f"series length {dataset.length} < word length {config.word_length}"
        )
    dfs = dfs if dfs is not None else SimulatedDFS(
        cache_bytes=config.dfs_cache_bytes,
        partition_format=config.partition_format,
        checksums=config.partition_checksums,
        verify=config.verify_checksums,
        fault_plan=config.effective_fault_plan,
        retry_policy=config.retry_policy,
    )
    sim = ClusterSimulator(model or CostModel())
    rng = np.random.default_rng(config.seed)
    scale = config.cost_scale
    n = dataset.length
    w, r, m = config.word_length, config.n_pivots, config.prefix_length
    capacity = config.capacity or dfs.block_records(n)
    sig_ops = ops_paa(n) + ops_signature(r, w, m)

    # ------------------------------------------------------------------ Step 1
    chunks = dataset.split_into_chunks(config.n_input_partitions)
    n_sampled = max(1, round(config.sample_fraction * len(chunks)))
    sample_idx = np.sort(rng.choice(len(chunks), size=n_sampled, replace=False))
    sample_rows = np.concatenate(
        [chunks[i].values for i in sample_idx], axis=0
    )
    alpha = sample_rows.shape[0] / dataset.count
    sample_bytes = sum(chunks[i].nbytes for i in sample_idx)
    sim.run_scaled_stage(
        "build/skeleton/sample",
        TaskCost(
            read_bytes=int(sample_bytes * scale),
            cpu_ops=int(sample_rows.shape[0] * sig_ops * scale),
        ),
        min_tasks=len(sample_idx),
    )
    sample_paa = paa_transform(sample_rows, w)
    if r > sample_paa.shape[0]:
        raise ConfigurationError(
            f"sample holds {sample_paa.shape[0]} series < n_pivots {r}; "
            "increase sample_fraction or decrease n_pivots"
        )
    pivots = select_random_pivots(sample_paa, r, rng)
    sample_ranked = permutation_prefixes(sample_paa, pivots, m)

    # ------------------------------------------------------------------ Step 2
    # Signature aggregation is pure array work: one lexicographic
    # np.unique over the sample's ranked signatures (replacing a Python
    # Counter over tuples that walked every sampled row), and a second over
    # their sorted rows for the rank-insensitive statistics.  Downstream is
    # order-insensitive: compute_centroids re-sorts by (-frequency,
    # signature) internally, and the distinct ranked rows come out in the
    # same lexicographic order the old ``sorted(counter)`` produced.
    distinct_ranked, distinct_freqs = np.unique(
        np.asarray(sample_ranked, dtype=np.int64), axis=0, return_counts=True
    )
    unranked_rows, unranked_inverse = np.unique(
        np.sort(distinct_ranked, axis=1), axis=0, return_inverse=True
    )
    unranked_freq_arr = np.zeros(unranked_rows.shape[0], dtype=np.int64)
    np.add.at(
        unranked_freq_arr,
        np.asarray(unranked_inverse).reshape(-1),
        distinct_freqs,
    )
    unranked_sigs = [tuple(int(p) for p in row) for row in unranked_rows]
    unranked_freqs = unranked_freq_arr.tolist()
    centroids = compute_centroids(
        unranked_sigs,
        unranked_freqs,
        sample_fraction=alpha,
        capacity=capacity,
        epsilon=config.epsilon,
        max_centroids=config.max_centroids,
        n_pivots=r,
    )
    # Driver-side work on the aggregated signature list: its size grows
    # with the number of *distinct* signatures, not the data volume, so it
    # is charged honestly (not multiplied by cost_scale).
    sim.run_driver_step(
        "build/skeleton/centroids",
        TaskCost(cpu_ops=len(unranked_sigs) * max(1, len(centroids)) * m),
    )

    # ------------------------------------------------------------------ Step 3
    weights = decay_weights(m, config.decay, config.decay_rate)
    assigner = GroupAssigner(centroids, r, m, weights=weights, rng=rng)
    group_of_sig = assigner.assign(distinct_ranked).group_indices

    n_groups = len(centroids) + 1
    members: list[list[tuple[tuple[int, ...], float]]] = [[] for _ in range(n_groups)]
    for row, freq, gid in zip(
        distinct_ranked.tolist(), distinct_freqs.tolist(), group_of_sig.tolist()
    ):
        members[gid].append((tuple(row), freq / alpha))

    groups: list[GroupEntry] = []
    next_pid = 0
    for gid in range(n_groups):
        sigs = [s for s, _ in members[gid]]
        counts = [c for _, c in members[gid]]
        trie = build_group_trie(sigs, counts, capacity)
        leaves = list(trie.leaves())
        bins = first_fit_decreasing(
            [(leaf.path, leaf.count) for leaf in leaves], capacity
        )
        leaf_by_path = {leaf.path: leaf for leaf in leaves}
        bin_loads: list[float] = []
        bin_pids: list[int] = []
        for bin_paths in bins:
            pid = next_pid
            next_pid += 1
            load = 0.0
            for path in bin_paths:
                leaf = leaf_by_path[path]
                leaf.partition_ids = {pid}
                load += leaf.count
            bin_loads.append(load)
            bin_pids.append(pid)
        trie.finalize_partitions()
        default_pid = bin_pids[int(np.argmin(bin_loads))]
        groups.append(
            GroupEntry(
                group_id=gid,
                centroid=() if gid == 0 else centroids[gid - 1],
                trie=trie,
                default_partition=default_pid,
                est_size=trie.count,
            )
        )
    skeleton = IndexSkeleton(
        prefix_length=m,
        n_pivots=r,
        word_length=w,
        groups=groups,
        n_partitions=next_pid,
    )
    sim.run_driver_step(
        "build/skeleton/assemble",
        TaskCost(cpu_ops=len(distinct_ranked) * m * 8),
    )
    if tel.enabled:
        tel.registry.histogram("build.skeleton_s").observe(
            time.perf_counter() - t0
        )

    # ------------------------------------------------------------------ Step 4
    broadcast_bytes = len(SkeletonWithPivots(skeleton, pivots).to_bytes())
    sim.broadcast("build/redistribute/broadcast", broadcast_bytes)

    sim.run_scaled_stage(
        "build/convert",
        TaskCost(
            read_bytes=int(dataset.nbytes * scale),
            cpu_ops=int(dataset.count * sig_ops * scale),
        ),
        min_tasks=len(chunks),
    )

    # Full-data signature conversion + group assignment.  Both modes
    # consume the RNG stream identically: tie-break draws depend only on
    # the global row order, never on how rows are blocked into assign
    # calls, so the fused path is free to use larger blocks than the
    # input chunking.  The fused/flat pipeline runs its block conversion,
    # trie compiles and partition encodes on the configured executor
    # (serial for n_workers=1 — bit-identical results either way); the
    # legacy modes are the parity baselines and always run serially.
    executor = make_executor(config.executor, config.effective_n_workers)
    try:
        t_convert = time.perf_counter()
        if conversion == "fused":
            ranked_all, gids_all = _convert_fused(
                dataset, pivots, assigner, w, m, executor=executor,
                telemetry=tel,
            )
        else:
            ranked_all, gids_all = _convert_legacy(
                chunks, pivots, assigner, w, m
            )
        wall_convert = time.perf_counter() - t_convert

        # Re-distribution of every record into its physical partition.
        t_redist = time.perf_counter()
        if redistribution == "flat":
            written_bytes, n_written = _redistribute_flat(
                dataset, skeleton, ranked_all, gids_all, dfs,
                executor=executor, telemetry=tel,
            )
        else:
            written_bytes, n_written = _redistribute_legacy(
                dataset, groups, ranked_all, gids_all, dfs
            )
        wall_redistribute = time.perf_counter() - t_redist
    finally:
        executor.close()
    if tel.enabled:
        tel.registry.histogram("build.convert_s").observe(wall_convert)
        tel.registry.histogram("build.redistribute_s").observe(
            wall_redistribute
        )

    sim.run_scaled_stage(
        "build/redistribute/shuffle",
        TaskCost(shuffle_bytes=int(dataset.nbytes * scale)),
        min_tasks=len(chunks),
    )
    sim.run_scaled_stage(
        "build/redistribute/write",
        TaskCost(write_bytes=int(written_bytes * scale)),
        min_tasks=n_written,
    )

    wall_seconds = time.perf_counter() - t0
    if tel.enabled:
        tel.registry.histogram("build.wall_s").observe(wall_seconds)
    return BuildArtifacts(
        skeleton=skeleton,
        pivots=pivots,
        dfs=dfs,
        assigner=assigner,
        sim_report=sim.fresh_report(),
        wall_seconds=wall_seconds,
        n_records=dataset.count,
        wall_phase_seconds={
            "convert": wall_convert,
            "redistribute": wall_redistribute,
        },
        telemetry=tel,
    )


def _convert_block(task):
    """One conversion block: PAA -> signatures -> deferred assignment.

    A module-level pure function of its task tuple — picklable, so it runs
    on any executor kind.  The RNG-dependent tie resolution is *not* done
    here: :meth:`GroupAssigner.assign_deferred` returns the pending draws
    and the caller resolves them serially in block order, which is what
    keeps every worker count on the exact RNG stream of a sequential
    sweep.
    """
    values, pivots, assigner, word_length, prefix_length = task
    paa = paa_transform(values, word_length)
    ranked = permutation_prefixes(paa, pivots, prefix_length)
    gids, _od_ties, pending = assigner.assign_deferred(ranked)
    return ranked, gids, pending


def _convert_fused(
    dataset: SeriesDataset,
    pivots: np.ndarray,
    assigner: GroupAssigner,
    word_length: int,
    prefix_length: int,
    executor: Executor | None = None,
    block_rows: int = 4096,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> tuple[np.ndarray, np.ndarray]:
    """Streamed full-data conversion into preallocated output arrays.

    One PAA -> ``permutation_prefixes`` -> deferred-``assign`` pass per
    ``block_rows`` slice of the dataset — a block size picked so every
    intermediate (distance matrix, OD workspace, WD pairs) stays
    cache-resident: sweeps at the benchmark operating point put the
    optimum at a few thousand rows, with >2x degradation by 64k rows once
    the ``(d, k)`` matrices spill.

    The blocks are independent tasks on ``executor`` (serial when omitted).
    Blocking is fixed by ``block_rows`` — never by the worker count — and
    the RNG tail (:meth:`GroupAssigner.resolve_ties`) runs on this thread
    in block order after the map, so signatures, group indices and the RNG
    stream are bit-identical for every worker count, and to the pre-split
    per-block ``assign`` loop this replaced.
    """
    n = dataset.count
    ranked_all = np.empty((n, prefix_length), dtype=np.int32)
    gids_all = np.empty(n, dtype=np.int64)
    spans = split_ranges(n, block_rows)
    tasks = [
        (dataset.values[start:end], pivots, assigner, word_length,
         prefix_length)
        for start, end in spans
    ]
    # Per-block task timing (build.convert.block_s + per-worker counters)
    # only on shared-memory executors: the wrapper closes over registry
    # locks and must not cross a pickle boundary into a process pool.
    block_fn = _convert_block
    if executor is None or executor.shares_memory:
        block_fn = telemetry.wrap_tasks("build.convert.block", _convert_block)
    if executor is None:
        results = map(block_fn, tasks)
    else:
        results = executor.map(block_fn, tasks)
    for (start, end), (ranked, gids, pending) in zip(spans, results):
        ranked_all[start:end] = ranked
        block = gids_all[start:end]
        block[...] = gids
        assigner.resolve_ties(block, pending)
    return ranked_all, gids_all


def _convert_legacy(
    chunks,
    pivots: np.ndarray,
    assigner: GroupAssigner,
    word_length: int,
    prefix_length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The retained per-input-chunk conversion loop (parity reference).

    One pass per input chunk through the reference assigner (per-row WD
    tie-break), accumulating per-chunk arrays that are concatenated at the
    end — the seed implementation, kept as the conversion baseline.
    """
    ranked_parts: list[np.ndarray] = []
    gid_parts: list[np.ndarray] = []
    for chunk in chunks:
        paa = paa_transform(chunk.values, word_length)
        ranked = permutation_prefixes(paa, pivots, prefix_length)
        ranked_parts.append(ranked)
        gid_parts.append(assigner.assign_reference(ranked).group_indices)
    ranked_all = (
        ranked_parts[0] if len(ranked_parts) == 1
        else np.concatenate(ranked_parts, axis=0)
    )
    gids_all = (
        gid_parts[0] if len(gid_parts) == 1 else np.concatenate(gid_parts)
    )
    return ranked_all, gids_all


def _redistribute_flat(
    dataset: SeriesDataset,
    skeleton: IndexSkeleton,
    ranked_all: np.ndarray,
    gids_all: np.ndarray,
    dfs: SimulatedDFS,
    executor: Executor | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> tuple[int, int]:
    """Bulk Step-4 redistribution over the CSR-compiled tries.

    One :meth:`FlatTrieRouter.route` resolves every record's cluster in
    ``prefix_length`` ``searchsorted`` sweeps over the fused trie, one
    stable argsort over the precomputed ``(partition, cluster key)`` ranks
    groups the records into the exact layout
    :meth:`PartitionFile.from_clusters` would build, and each partition is
    gathered straight from the dataset arrays into its format-v2 payload
    buffer — no per-record Python, no intermediate v1 partition objects,
    no sorted copy of the dataset.

    With any pooled ``executor``, the per-partition payload encodes fan
    out (pure functions of the record arrays); stores and their counters
    run on this thread in partition order, so the stored bytes and every
    counter are identical to the serial path.  Shared-memory pools encode
    through the live engine handle zero-copy; process pools receive a
    plain-data, picklable spec per partition — the records pre-gathered
    into fresh arrays plus the format/checksum flags — and encode through
    the module-level :func:`_encode_partition_task` (the PR-6 "engine
    handles aren't picklable" serial fallback is gone).  The per-group
    trie compiles still need the caller's address space, so process pools
    compile serially; the only remaining encode fallback is the v1
    in-memory object store (live ``PartitionFile`` objects, nothing to
    encode), which stays *visible*: a RuntimeWarning plus the
    process-lifetime ``parallel.fallbacks`` counter.
    """
    pooled = executor is not None and executor.n_workers > 1
    shared = pooled and executor.shares_memory
    with telemetry.trace("build.redistribute.compile"):
        router = skeleton.flat_router(executor=executor if shared else None)
    with telemetry.trace("build.redistribute.route"):
        kid_of = router.route(ranked_all, gids_all)
        order, parts = router.partition_layout(kid_of)
    written_bytes = 0
    if pooled and not dfs.stores_encoded:
        record_parallel_fallback(
            "v1 in-memory object store holds live PartitionFile objects "
            "(no encoded payloads to fan out); writing serially"
        )
    with telemetry.trace("build.redistribute.write"):
        if pooled and dfs.stores_encoded:
            engine = dfs.engine
            series_length = int(dataset.values.shape[1])
            if shared:
                # Zero-copy encode task: workers share the caller's
                # address space, so each task gathers its rows straight
                # from the dataset arrays through the live engine handle.
                def encode(item):
                    pid, start, end, header = item
                    return engine.encode_arrays(
                        partition_name(pid), dataset.ids, dataset.values,
                        header, rows=order[start:end],
                    )

                # Per-task telemetry only on shared-memory pools: the
                # wrapper closes over registry locks and must not cross a
                # pickle boundary.
                payloads = executor.map(
                    telemetry.wrap_tasks("build.redistribute.encode",
                                         encode),
                    parts,
                )
            else:
                specs = [
                    (partition_name(pid),
                     dataset.ids[order[start:end]],
                     dataset.values[order[start:end]],
                     header, engine.partition_format, engine.checksums)
                    for pid, start, end, header in parts
                ]
                payloads = executor.map(_encode_partition_task, specs)
            for (pid, start, end, header), payload in zip(parts, payloads):
                written_bytes += dfs.write_encoded_partition(
                    partition_name(pid), payload,
                    record_count=end - start,
                    series_length=series_length,
                    header=header,
                )
        else:
            for pid, start, end, header in parts:
                written_bytes += dfs.write_partition_arrays(
                    partition_name(pid),
                    dataset.ids,
                    dataset.values,
                    header,
                    rows=order[start:end],
                )
    return written_bytes, len(parts)


def _encode_partition_task(spec):
    """Encode one partition payload from a plain-data spec.

    A module-level pure function of picklable inputs — the process-pool
    counterpart of the shared-memory encode closure above.  The spec
    carries the partition's records as freshly-gathered arrays plus the
    format/checksum flags, so no live engine or DFS handle crosses the
    pickle boundary, and the returned bytes are identical to
    :meth:`StorageEngine.encode_arrays` over the same records.
    """
    pid, ids, values, header, fmt, checksums = spec
    if fmt == "v2":
        return encode_partition_v2_arrays(pid, ids, values, header,
                                          checksums=checksums)
    return PartitionFile.from_arrays(pid, ids, values, header).to_bytes()


def _redistribute_legacy(
    dataset: SeriesDataset,
    groups: list[GroupEntry],
    ranked_all: np.ndarray,
    gids_all: np.ndarray,
    dfs: SimulatedDFS,
) -> tuple[int, int]:
    """The seed per-record redistribution loop (parity reference/baseline)."""
    clusters: dict[int, dict[str, list[int]]] = {}
    for row in range(ranked_all.shape[0]):
        gid = int(gids_all[row])
        entry = groups[gid]
        node = entry.trie.descend(ranked_all[row])
        if node.is_leaf:
            pid = next(iter(node.partition_ids))
            key = cluster_key(gid, node.path)
        else:
            pid = entry.default_partition
            key = cluster_key(gid, None)
        clusters.setdefault(pid, {}).setdefault(key, []).append(row)

    written_bytes = 0
    for pid in sorted(clusters):
        mapping = {
            key: (dataset.ids[rows], dataset.values[rows])
            for key, rows in clusters[pid].items()
            for rows in [np.asarray(rows, dtype=np.int64)]
        }
        part = PartitionFile.from_clusters(partition_name(pid), mapping)
        dfs.write_partition(part)
        written_bytes += part.nbytes
    return written_bytes, len(clusters)

"""CLIMBER core: the paper's primary contribution.

Feature extraction (CLIMBER-FX) lives in :mod:`repro.series` (PAA) and
:mod:`repro.pivots` (P4 signatures); this package assembles them into the
two-level index (CLIMBER-INX) and the query algorithms (CLIMBER-kNN,
CLIMBER-kNN-Adaptive, OD-Smallest).
"""

from repro.core.assignment import AssignmentResult, GroupAssigner
from repro.core.builder import BuildArtifacts, build_index_artifacts
from repro.core.centroids import (
    FALLBACK_CENTROID,
    compute_centroids,
    compute_centroids_reference,
)
from repro.core.config import PAPER_DEFAULTS, ClimberConfig
from repro.core.index import ClimberIndex, GroupCandidate, QueryResult, QueryStats
from repro.core.packing import first_fit, first_fit_decreasing, one_per_bin
from repro.core.progressive import (
    ProgressiveCalibration,
    ProgressiveUpdate,
    StopRule,
    parse_early_stop,
    resolve_stop_rule,
)
from repro.core.skeleton import (
    GroupEntry,
    IndexSkeleton,
    SkeletonWithPivots,
    cluster_key,
    partition_name,
)
from repro.core.trie import DEFAULT_CLUSTER_SUFFIX, TrieNode, build_group_trie
from repro.core.trie_flat import FlatTrie, FlatTrieRouter

__all__ = [
    "ClimberConfig",
    "PAPER_DEFAULTS",
    "ClimberIndex",
    "QueryResult",
    "QueryStats",
    "GroupCandidate",
    "ProgressiveCalibration",
    "ProgressiveUpdate",
    "StopRule",
    "parse_early_stop",
    "resolve_stop_rule",
    "GroupAssigner",
    "AssignmentResult",
    "compute_centroids",
    "compute_centroids_reference",
    "FALLBACK_CENTROID",
    "TrieNode",
    "build_group_trie",
    "FlatTrie",
    "FlatTrieRouter",
    "DEFAULT_CLUSTER_SUFFIX",
    "first_fit_decreasing",
    "first_fit",
    "one_per_bin",
    "GroupEntry",
    "IndexSkeleton",
    "SkeletonWithPivots",
    "cluster_key",
    "partition_name",
    "BuildArtifacts",
    "build_index_artifacts",
]

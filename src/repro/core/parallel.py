"""Parallel execution layer: serial / thread-pool / process-pool executors.

Everything hot in this repository is vectorised numpy (PRs 1-4), and the
numpy kernels that dominate the build — ``cdist``, the popcount sweeps,
the payload gathers — release the GIL, so a *thread* pool is the default
way to use more cores: no pickling, shared address space (the flat-trie
compile and the query planner hand ``TrieNode`` objects across stages by
identity, which only works in one process).  A process pool is available
for conversion-style tasks whose inputs and outputs pickle cheaply; the
ParIS+/MESSI line of data-series indexing work shows both shapes.

Determinism contract
--------------------
Executors preserve *submission order* in their results (``map`` returns
``results[i] == fn(items[i])``), and every parallel call site in this
repository is written so that worker scheduling cannot leak into results:

* tasks are pure functions of their item (per-block conversion, per-group
  trie compiles, per-partition payload encodes, per-shard query batches);
* anything stateful — the RNG stream behind Algorithm 1's tie-breaks, DFS
  write registration, simulated cost accounting — happens on the caller's
  thread, in item order, *after* the parallel map returns (see
  :meth:`repro.core.assignment.GroupAssigner.assign_deferred`).

That is what makes ``n_workers=8`` bit-identical to ``n_workers=1``:
same partition bytes, same counters, same kNN answers, regardless of how
the OS schedules workers.  ``tests/test_parallel_parity.py`` enforces it.

Task-level fault tolerance (PR 8): a pooled task that raises is
resubmitted once (the ``parallel.task_retries`` counter records it); a
second failure falls back to a serial re-run on the caller's thread via
:func:`record_parallel_fallback`, so only *persistent* failures propagate
— and they re-raise on the caller's thread with no hangs and no
partially-registered state (the failure-propagation tests pin this
down).  The retry is safe because every task is a pure function of its
item (see above): re-running it cannot double-apply state, and a
recovered result is bit-identical to a first-try success.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ConfigurationError
from repro.obs import global_registry

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "resolve_n_workers",
    "make_executor",
    "record_parallel_fallback",
    "split_ranges",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

EXECUTOR_KINDS = ("serial", "thread", "process")

#: Environment override consumed when ``ClimberConfig.n_workers`` is left
#: unset — lets CI (and operators) turn parallelism on for an existing
#: workload without touching call sites: ``CLIMBER_N_WORKERS=2 pytest``.
N_WORKERS_ENV = "CLIMBER_N_WORKERS"


def resolve_n_workers(n_workers: int | None) -> int:
    """Effective worker count: explicit value, else env, else 1."""
    if n_workers is None:
        raw = os.environ.get(N_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{N_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    return int(n_workers)


class Executor:
    """Minimal ordered-map executor interface.

    ``map`` applies ``fn`` to every item and returns the results *in item
    order*; a raised worker exception propagates to the caller.  ``close``
    releases pool resources (idempotent).  Executors are context managers.
    """

    #: True when workers share the caller's address space, i.e. tasks may
    #: mutate caller-owned arrays/objects (disjoint slices) and return
    #: structure-shared objects.  Process pools must not be used for such
    #: tasks; call sites gate on this flag.
    shares_memory: bool = True

    n_workers: int = 1

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-caller execution; the ``n_workers=1`` reference every parallel
    path must be bit-identical to."""

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        return [fn(item) for item in items]


def _map_with_task_retry(pool, fn: Callable[[_T], _R],
                         items: Iterable[_T]) -> list[_R]:
    """Ordered pooled map with retry-once-then-serial-rerun per task.

    Each item is submitted as its own future so a single flaky task —
    a transient injected fault, a worker killed mid-run — costs one
    resubmission (``parallel.task_retries``), not the whole map.  A task
    that fails twice on the pool is re-run serially on the caller's
    thread (recorded via :func:`record_parallel_fallback`); if even that
    raises, the exception propagates and the remaining futures are
    cancelled.  Tasks are pure functions of their items, so a recovered
    result is bit-identical to a first-try success and results keep
    submission order.
    """
    items = list(items)
    futures = [pool.submit(fn, item) for item in items]
    results: list[_R] = []
    try:
        for i, future in enumerate(futures):
            try:
                results.append(future.result())
                continue
            except Exception:
                global_registry().counter("parallel.task_retries").inc()
            try:
                results.append(pool.submit(fn, items[i]).result())
                continue
            except Exception:
                record_parallel_fallback(
                    f"pooled task {i} failed twice; re-running serially "
                    "on the caller's thread"
                )
            results.append(fn(items[i]))
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return results


class ThreadExecutor(Executor):
    """Thread-pool executor (the default): GIL-releasing numpy kernels
    scale across cores with zero serialisation cost."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 2:
            raise ConfigurationError("ThreadExecutor needs n_workers >= 2")
        self.n_workers = int(n_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="climber"
        )

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        return _map_with_task_retry(self._pool, fn, items)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class ProcessExecutor(Executor):
    """Process-pool executor for pickle-friendly tasks.

    No shared memory: tasks must be pure functions of picklable items and
    return picklable results.  Call sites that hand out live object graphs
    (trie compiles, query shards) check :attr:`shares_memory` and fall
    back to threads.  The serial-rerun leg of the task retry runs ``fn``
    in the caller's process — equivalent by the same purity argument.
    """

    shares_memory = False

    def __init__(self, n_workers: int) -> None:
        if n_workers < 2:
            raise ConfigurationError("ProcessExecutor needs n_workers >= 2")
        self.n_workers = int(n_workers)
        self._pool = ProcessPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        return _map_with_task_retry(self._pool, fn, items)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def record_parallel_fallback(reason: str) -> None:
    """Make a parallelism downgrade visible instead of silent.

    Bumps the process-lifetime ``parallel.fallbacks`` counter (always on —
    it surfaces in ``index.stats()`` and every BENCH artifact's
    ``process_metrics``) and warns, so a run that quietly degraded from
    the requested executor can be diagnosed after the fact.  The fallback
    itself stays correct-by-construction (bit-identical results); only
    its *visibility* changes.
    """
    global_registry().counter("parallel.fallbacks").inc()
    warnings.warn(
        f"parallel execution degraded: {reason}", RuntimeWarning, stacklevel=3
    )


def make_executor(
    kind: str = "thread",
    n_workers: int | None = None,
    require_shared_memory: bool = False,
) -> Executor:
    """Build an executor for ``n_workers`` effective workers.

    ``n_workers`` resolves through :func:`resolve_n_workers` (explicit →
    ``CLIMBER_N_WORKERS`` → 1); one worker always yields the
    :class:`SerialExecutor`, so a single code path serves both modes.
    With ``require_shared_memory`` a ``"process"`` request degrades to
    threads — used by call sites whose tasks share live object graphs.
    The degrade is recorded via :func:`record_parallel_fallback` (warning
    + ``parallel.fallbacks`` counter) so it is never silent.
    """
    if kind not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor kind {kind!r} (expected one of {EXECUTOR_KINDS})"
        )
    n = resolve_n_workers(n_workers)
    if n == 1 or kind == "serial":
        return SerialExecutor()
    if kind == "process" and require_shared_memory:
        record_parallel_fallback(
            "process executor requested for a shared-memory stage "
            "(tasks hand live object graphs across workers); using threads"
        )
        kind = "thread"
    if kind == "thread":
        return ThreadExecutor(n)
    return ProcessExecutor(n)


def split_ranges(n: int, chunk: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` ranges covering ``0..n`` in ``chunk`` steps.

    The canonical work decomposition of the parallel call sites: blocking
    is *fixed by the chunk size*, never by the worker count, so the task
    list — and therefore every deterministic per-task result — is
    identical for any ``n_workers``.
    """
    if chunk < 1:
        raise ConfigurationError("chunk must be >= 1")
    return [(start, min(n, start + chunk)) for start in range(0, n, chunk)]

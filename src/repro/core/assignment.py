"""Group assignment rules (Algorithm 1), vectorised over whole batches.

Every data series is assigned to the centroid with the smallest Overlap
Distance; Weight Distance breaks OD ties, a seeded random draw breaks WD
ties, and objects overlapping no centroid at all go to the fall-back group
G0.  The returned group indices follow the paper's convention:

* index 0  — the fall-back group G0 (``<*,*,...>``),
* index i>0 — the group anchored at ``centroids[i - 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pivots import (
    decay_weights,
    overlap_distance_matrix,
    pack_pivot_sets,
    rank_insensitive,
    weight_distance_matrix,
)

__all__ = ["GroupAssigner", "AssignmentResult"]


@dataclass(frozen=True)
class AssignmentResult:
    """Batch assignment outcome plus tie statistics (used by tests/benches)."""

    group_indices: np.ndarray
    od_ties_broken: int
    wd_ties_broken: int


class GroupAssigner:
    """Assigns rank-sensitive signatures to groups per Algorithm 1.

    Parameters
    ----------
    centroids:
        Rank-insensitive centroid signatures (without the fall-back).
    n_pivots:
        Total pivot count ``r`` (bitset width).
    prefix_length:
        Signature length ``m``.
    weights:
        Decay weights of Def. 9; defaults to exponential ``lambda = 1/2``.
    rng:
        Source of the random tie-breaks (line 14).  A fresh default
        generator is created when omitted.
    """

    def __init__(
        self,
        centroids: Sequence[tuple[int, ...]],
        n_pivots: int,
        prefix_length: int,
        weights: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not centroids:
            raise ConfigurationError("at least one centroid is required")
        for c in centroids:
            if len(c) != prefix_length:
                raise ConfigurationError(
                    f"centroid {c} length != prefix_length {prefix_length}"
                )
        self.centroids = [tuple(c) for c in centroids]
        self.n_pivots = n_pivots
        self.prefix_length = prefix_length
        self.weights = (
            decay_weights(prefix_length) if weights is None else np.asarray(weights)
        )
        if self.weights.shape != (prefix_length,):
            raise ConfigurationError("weights length must equal prefix_length")
        self.rng = rng or np.random.default_rng()
        self._packed_centroids = pack_pivot_sets(
            np.asarray(self.centroids, dtype=np.int64), n_pivots
        )

    def assign(self, ranked: np.ndarray) -> AssignmentResult:
        """Assign a batch of rank-sensitive signatures to groups.

        Returns group indices with 0 = fall-back, i>0 = ``centroids[i-1]``.
        """
        ranked = np.asarray(ranked, dtype=np.int64)
        if ranked.ndim != 2 or ranked.shape[1] != self.prefix_length:
            raise ConfigurationError(
                f"expected (d, {self.prefix_length}) ranked signatures"
            )
        m = self.prefix_length
        unranked = rank_insensitive(ranked)
        packed = pack_pivot_sets(unranked, self.n_pivots)
        od = overlap_distance_matrix(packed, self._packed_centroids, m)

        best_od = od.min(axis=1)
        out = np.zeros(ranked.shape[0], dtype=np.int64)

        # Lines 3-5: zero overlap with every centroid -> fall-back group 0.
        fallback = best_od == m
        # Lines 6-7: unique smallest OD.
        is_best = od == best_od[:, None]
        n_best = is_best.sum(axis=1)
        unique = (~fallback) & (n_best == 1)
        out[unique] = od[unique].argmin(axis=1) + 1

        # Lines 8-14: OD ties -> Weight Distance, then random.
        tied = (~fallback) & (n_best > 1)
        od_ties = int(tied.sum())
        wd_ties = 0
        if od_ties:
            rows = np.flatnonzero(tied)
            wd = weight_distance_matrix(
                ranked[rows], self._packed_centroids, self.n_pivots, self.weights
            )
            # Restrict to the OD-tied centroids per row.
            wd = np.where(is_best[rows], wd, np.inf)
            best_wd = wd.min(axis=1)
            wd_best = wd <= best_wd[:, None] + 1e-12
            n_wd_best = wd_best.sum(axis=1)
            for local, row in enumerate(rows):
                candidates = np.flatnonzero(wd_best[local])
                if n_wd_best[local] == 1:
                    out[row] = candidates[0] + 1
                else:
                    wd_ties += 1
                    out[row] = int(self.rng.choice(candidates)) + 1
        return AssignmentResult(out, od_ties, wd_ties)

    def assign_one(self, ranked_sig: Sequence[int]) -> int:
        """Assign a single signature (used for query routing)."""
        row = np.asarray(ranked_sig, dtype=np.int64).reshape(1, -1)
        return int(self.assign(row).group_indices[0])

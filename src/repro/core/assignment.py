"""Group assignment rules (Algorithm 1), vectorised over whole batches.

Every data series is assigned to the centroid with the smallest Overlap
Distance; Weight Distance breaks OD ties, a seeded random draw breaks WD
ties, and objects overlapping no centroid at all go to the fall-back group
G0.  The returned group indices follow the paper's convention:

* index 0  — the fall-back group G0 (``<*,*,...>``),
* index i>0 — the group anchored at ``centroids[i - 1]``.

Two implementations share one head (packing + the OD matrix):

* :meth:`GroupAssigner.assign` — the fully-array path: per-row argmin
  over the WD matrix masked to the OD-tied centroids, vectorised
  multiplicity counts, and **one** batched RNG draw for the residual
  WD ties of the whole batch;
* :meth:`GroupAssigner.assign_reference` — the retained seed loop
  (per-row ``flatnonzero`` + ``rng.choice``), kept as the parity oracle
  for ``tests/test_conversion_parity.py`` and the conversion benchmark.

The two are **bit-identical** — same group indices, same tie counters,
and the same RNG stream consumption: ``rng.choice(c)`` draws exactly
``rng.integers(0, len(c))``, and a broadcast ``rng.integers(0, counts)``
consumes the bit stream like the equivalent sequence of scalar draws, so
results do not depend on how a dataset is blocked into ``assign`` calls.

For the parallel build pipeline, ``assign`` additionally splits into a
**deterministic core** (:meth:`GroupAssigner.assign_deferred` — pure
array work, safe to run on any worker, RNG untouched) and a tiny
**serial tail** (:meth:`GroupAssigner.resolve_ties` — the one batched
draw for the block's residual WD ties).  Workers compute cores
concurrently; the caller resolves tails in block order, so the RNG
stream is consumed exactly as the serial path consumes it and results
are bit-identical for every worker count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pivots import (
    centroid_membership,
    decay_weights,
    overlap_distance_matrix_reference,
    pack_pivot_sets,
    rank_insensitive,
    total_weight,
    wd_tie_tolerance,
    weight_distance_matrix_reference,
)

__all__ = ["GroupAssigner", "AssignmentResult", "PendingTies"]

_OD_TILE_BYTES = 1 << 18
"""Byte target for the OD sweep's uint64 AND workspace tile.  The sweep is
memory-bound: at large row blocks the full ``(d, k)`` uint64 buffer spills
every cache level and each popcount pass re-streams it from DRAM.  Tiling
rows so one tile's AND buffer stays ~256 KB keeps the word loop resident
in L2; the arithmetic is exact integer work, so tiling cannot change a
single bit of the result (the kernel-parity suite checks anyway)."""


@dataclass(frozen=True)
class AssignmentResult:
    """Batch assignment outcome plus tie statistics (used by tests/benches)."""

    group_indices: np.ndarray
    od_ties_broken: int
    wd_ties_broken: int


@dataclass(frozen=True)
class PendingTies:
    """Residual WD ties of one ``assign_deferred`` block, awaiting the draw.

    Everything here is a pure function of the block's data: which rows
    remain tied after the WD cascade, how many candidates each has, and
    the candidate centroid columns (ascending, concatenated row by row).
    Resolution (:meth:`GroupAssigner.resolve_ties`) is the only part of
    assignment that touches the RNG, so deferring it to the caller's
    thread — in block order — keeps parallel assignment bit-identical to
    serial.
    """

    rows: np.ndarray
    n_tied: np.ndarray
    cand_cols: np.ndarray
    cand_offsets: np.ndarray


class GroupAssigner:
    """Assigns rank-sensitive signatures to groups per Algorithm 1.

    Parameters
    ----------
    centroids:
        Rank-insensitive centroid signatures (without the fall-back).
    n_pivots:
        Total pivot count ``r`` (bitset width).
    prefix_length:
        Signature length ``m``.
    weights:
        Decay weights of Def. 9; defaults to exponential ``lambda = 1/2``.
    rng:
        Source of the random tie-breaks (line 14).  A fresh default
        generator is created when omitted.
    """

    def __init__(
        self,
        centroids: Sequence[tuple[int, ...]],
        n_pivots: int,
        prefix_length: int,
        weights: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not centroids:
            raise ConfigurationError("at least one centroid is required")
        for c in centroids:
            if len(c) != prefix_length:
                raise ConfigurationError(
                    f"centroid {c} length != prefix_length {prefix_length}"
                )
        self.centroids = [tuple(c) for c in centroids]
        self.n_pivots = n_pivots
        self.prefix_length = prefix_length
        self.weights = (
            decay_weights(prefix_length) if weights is None else np.asarray(weights)
        )
        if self.weights.shape != (prefix_length,):
            raise ConfigurationError("weights length must equal prefix_length")
        self.rng = rng or np.random.default_rng()
        self._packed_centroids = pack_pivot_sets(
            np.asarray(self.centroids, dtype=np.int64), n_pivots
        )
        # WD ties are detected relative to the Total Weight: WD values are
        # differences from TW, so their float error scales with ulp(TW) and
        # a fixed absolute 1e-12 mis-classifies ties under large weights.
        self._total_weight = total_weight(self.weights)
        self._wd_tol = wd_tie_tolerance(self._total_weight)
        # (n_pivots, k) float membership table: the pair-wise WD kernel of
        # the fully-array path gathers from it rank by rank, producing the
        # exact per-element terms of weight_distance_matrix (same shared
        # unpacking — the bit-parity guarantee depends on it).
        self._membership = centroid_membership(self._packed_centroids, n_pivots)
        # Reusable workspace of the OD stage, one buffer per role, held
        # per *thread*: the streamed conversion calls assign with one
        # fixed block size, so each worker allocates (and page-faults) its
        # matrices exactly once; concurrent assign calls from the parallel
        # conversion pipeline never share a buffer.  A batch of a
        # different size simply reallocates, so varying batch sizes (e.g.
        # repeated appends) never accumulate dead buffers.
        self._tls = threading.local()

    def __getstate__(self) -> dict:
        # Thread-local workspaces are address-space-bound scratch; a
        # process-pool worker re-creates its own on first use.
        state = self.__dict__.copy()
        state["_tls"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tls = threading.local()

    def _buffer(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        workspace = getattr(self._tls, "buffers", None)
        if workspace is None:
            workspace = self._tls.buffers = {}
        buf = workspace.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            workspace[name] = buf
        return buf

    # -- shared head ---------------------------------------------------------------

    def _od_head(
        self, ranked: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Validation + the OD-matrix stage of the fully-array path.

        Returns ``(ranked, out, is_best, rows)`` where ``out`` already
        holds the fall-back zeros and the unique-smallest-OD winners
        (Algorithm 1 lines 3-7) and ``rows`` are the OD-tied row indices.
        """
        ranked = np.asarray(ranked, dtype=np.int64)
        if ranked.ndim != 2 or ranked.shape[1] != self.prefix_length:
            raise ConfigurationError(
                f"expected (d, {self.prefix_length}) ranked signatures"
            )
        m = self.prefix_length
        d = ranked.shape[0]
        k = self._packed_centroids.shape[0]
        # The bitset encoding is order-free, so the ranked rows pack
        # directly — no rank_insensitive sort pass needed.
        packed = pack_pivot_sets(ranked, self.n_pivots)

        # Pivot-set intersection sizes, accumulated word by word into the
        # reusable workspace (same arithmetic as overlap_distance_matrix;
        # OD = m - intersection, so comparisons below run on intersections
        # directly with flipped signs).  The sweep runs in row *tiles*
        # sized so the uint64 AND buffer stays L2-resident: one full-block
        # buffer re-streams from DRAM on every popcount pass, which made
        # this stage memory-bound at large d.  Exact integer work — the
        # tiling is invisible in the results.
        cents = self._packed_centroids
        tile = max(32, _OD_TILE_BYTES // max(1, k * 8))
        tile = min(tile, d) if d else 0
        and_buf = self._buffer("and", (tile, k), np.uint64)
        # Intersections are bounded by m (each signature sets m bits), so
        # uint8 accumulation is safe for any realistic prefix length.
        inter = self._buffer(
            "inter", (d, k), np.uint8 if m < 256 else np.uint16
        )
        cnt_buf = (
            self._buffer("cnt", (tile, k), np.uint8)
            if cents.shape[1] > 1 else None
        )
        for start in range(0, d, tile or 1):
            end = min(d, start + tile)
            rows_and = and_buf[: end - start]
            rows_inter = inter[start:end]
            np.bitwise_and(
                packed[start:end, 0][:, None], cents[:, 0][None, :],
                out=rows_and,
            )
            np.bitwise_count(rows_and, out=rows_inter)
            for word in range(1, cents.shape[1]):
                rows_cnt = cnt_buf[: end - start]
                np.bitwise_and(
                    packed[start:end, word][:, None], cents[:, word][None, :],
                    out=rows_and,
                )
                np.bitwise_count(rows_and, out=rows_cnt)
                rows_inter += rows_cnt

        best_inter = np.max(inter, axis=1)
        out = np.zeros(d, dtype=np.int64)

        # Lines 3-5: zero overlap with every centroid -> fall-back group 0.
        fallback = best_inter == 0
        # Lines 6-7: unique smallest OD (= largest intersection).
        is_best = self._buffer("is_best", (d, k), bool)
        np.equal(inter, best_inter[:, None], out=is_best)
        n_best = is_best.sum(axis=1)
        unique = (~fallback) & (n_best == 1)
        first_best = is_best.argmax(axis=1)
        out[unique] = first_best[unique] + 1

        tied = (~fallback) & (n_best > 1)
        rows = np.flatnonzero(tied)
        return ranked, out, is_best, rows

    # -- implementations -----------------------------------------------------------

    def assign(self, ranked: np.ndarray) -> AssignmentResult:
        """Assign a batch of rank-sensitive signatures to groups.

        Returns group indices with 0 = fall-back, i>0 = ``centroids[i-1]``.
        """
        out, od_ties, pending = self.assign_deferred(ranked)
        wd_ties = self.resolve_ties(out, pending)
        return AssignmentResult(out, od_ties, wd_ties)

    def assign_deferred(
        self, ranked: np.ndarray
    ) -> tuple[np.ndarray, int, PendingTies | None]:
        """The deterministic core of :meth:`assign` — RNG untouched.

        Returns ``(group_indices, od_ties, pending)``: every row whose
        assignment is decided without a random draw is final in
        ``group_indices``; rows with residual WD ties are described by
        ``pending`` (``None`` when there are none) and resolved later by
        :meth:`resolve_ties`.  Pure array work over per-thread buffers, so
        parallel conversion workers run it concurrently; the caller then
        resolves the pending draws serially in block order, consuming the
        RNG stream exactly as one sequential ``assign`` sweep would.
        """
        ranked, out, is_best, rows = self._od_head(ranked)
        od_ties = int(rows.size)
        pending: PendingTies | None = None
        if od_ties:
            # Lines 8-14: OD ties -> Weight Distance, then random.  WD is
            # evaluated only at the actual (tied row, tied centroid) pairs
            # — row-major, so each tied row owns one contiguous pair
            # segment — with per-element terms identical to the full
            # weight_distance_matrix.
            sub = is_best[rows]
            prow, pcol = np.nonzero(sub)
            sig_pairs = ranked[rows][prow]  # (pairs, m) pivot ids
            matched = np.zeros(prow.shape[0], dtype=np.float64)
            membership = self._membership
            for rank in range(self.prefix_length):
                matched += self.weights[rank] * membership[
                    sig_pairs[:, rank], pcol
                ]
            wd_pair = self._total_weight - matched

            counts = sub.sum(axis=1)
            offsets = np.zeros(counts.shape[0], dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            best_wd = np.minimum.reduceat(wd_pair, offsets)
            flags = wd_pair <= best_wd[prow] + self._wd_tol
            n_tied = np.add.reduceat(flags.astype(np.int64), offsets)

            single = n_tied == 1
            # First flagged pair of each segment == the unique winner for
            # single-tie rows (pairs are in ascending centroid order).
            pair_ids = np.where(flags, np.arange(prow.shape[0]), prow.shape[0])
            first = np.minimum.reduceat(pair_ids, offsets)
            out[rows[single]] = pcol[first[single]] + 1

            multi = ~single
            if multi.any():
                # Flagged candidates of the multi rows, ascending centroid
                # order within each row's contiguous pair segment — the
                # (draw+1)-th flagged pair of old inline selection is
                # exactly cand_cols[cand_offsets + draw].
                chosen = flags & multi[prow]
                n_multi = n_tied[multi]
                cand_offsets = np.zeros(n_multi.shape[0], dtype=np.int64)
                np.cumsum(n_multi[:-1], out=cand_offsets[1:])
                pending = PendingTies(
                    rows=rows[multi],
                    n_tied=n_multi,
                    cand_cols=pcol[chosen],
                    cand_offsets=cand_offsets,
                )
        return out, od_ties, pending

    def resolve_ties(
        self,
        out: np.ndarray,
        pending: PendingTies | None,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Resolve one block's residual WD ties in ``out``; returns their count.

        One batched ``integers(0, n_tied)`` draw — the broadcast call
        consumes the generator exactly like the reference's per-row
        ``rng.choice`` calls, and like the draw the pre-split ``assign``
        made inline, so stream positions are unchanged.
        """
        if pending is None:
            return 0
        draws = (rng or self.rng).integers(0, pending.n_tied)
        out[pending.rows] = pending.cand_cols[pending.cand_offsets + draws] + 1
        return int(pending.rows.size)

    def assign_reference(self, ranked: np.ndarray) -> AssignmentResult:
        """The retained seed implementation: per-row WD tie-break loop.

        A faithful transcription of the pre-vectorisation ``assign`` —
        rank-insensitive sort before packing, the seed 3-D broadcast OD
        kernel (:func:`overlap_distance_matrix_reference`), the full-width
        WD matrix through the seed
        :func:`weight_distance_matrix_reference` kernel, and a Python loop
        with per-row ``flatnonzero`` + ``rng.choice`` draws (only the WD
        tie tolerance follows the relative-tolerance fix).  Keeping the
        seed kernels makes the parity suite adversarial: two independent
        implementations must agree bit for bit.
        Bit-identical to :meth:`assign` in group indices, tie counters and
        RNG stream consumption; kept as the parity oracle and the
        conversion-benchmark baseline.
        """
        ranked = np.asarray(ranked, dtype=np.int64)
        if ranked.ndim != 2 or ranked.shape[1] != self.prefix_length:
            raise ConfigurationError(
                f"expected (d, {self.prefix_length}) ranked signatures"
            )
        m = self.prefix_length
        unranked = rank_insensitive(ranked)
        packed = pack_pivot_sets(unranked, self.n_pivots)
        od = overlap_distance_matrix_reference(packed, self._packed_centroids, m)

        best_od = od.min(axis=1)
        out = np.zeros(ranked.shape[0], dtype=np.int64)

        # Lines 3-5: zero overlap with every centroid -> fall-back group 0.
        fallback = best_od == m
        # Lines 6-7: unique smallest OD.
        is_best = od == best_od[:, None]
        n_best = is_best.sum(axis=1)
        unique = (~fallback) & (n_best == 1)
        out[unique] = od[unique].argmin(axis=1) + 1

        # Lines 8-14: OD ties -> Weight Distance, then random.
        tied = (~fallback) & (n_best > 1)
        od_ties = int(tied.sum())
        wd_ties = 0
        if od_ties:
            rows = np.flatnonzero(tied)
            wd = weight_distance_matrix_reference(
                ranked[rows], self._packed_centroids, self.n_pivots, self.weights
            )
            # Restrict to the OD-tied centroids per row.
            wd = np.where(is_best[rows], wd, np.inf)
            best_wd = wd.min(axis=1)
            wd_best = wd <= best_wd[:, None] + self._wd_tol
            n_wd_best = wd_best.sum(axis=1)
            for local, row in enumerate(rows):
                candidates = np.flatnonzero(wd_best[local])
                if n_wd_best[local] == 1:
                    out[row] = candidates[0] + 1
                else:
                    wd_ties += 1
                    out[row] = int(self.rng.choice(candidates)) + 1
        return AssignmentResult(out, od_ties, wd_ties)

    def assign_one(self, ranked_sig: Sequence[int]) -> int:
        """Assign a single signature (used for query routing)."""
        row = np.asarray(ranked_sig, dtype=np.int64).reshape(1, -1)
        return int(self.assign(row).group_indices[0])

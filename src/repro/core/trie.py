"""Trie-based partition formation within a data series group (§IV-D).

A group bigger than the capacity constraint ``c`` is split by the *first*
pivot of its members' rank-sensitive signatures; any child still over
capacity splits again by the second pivot, and so on (paper Fig. 5).  The
resulting leaves are Voronoi-style partitions: a leaf's root-to-leaf path
is the pivot-permutation prefix shared by everything stored under it.

Counts here are *estimates* at full-data scale (sample frequency divided by
the sampling fraction), since the skeleton is built from a sample.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["TrieNode", "build_group_trie", "DEFAULT_CLUSTER_SUFFIX"]

DEFAULT_CLUSTER_SUFFIX = "~"
"""Cluster-key suffix for records that cannot complete a root-to-leaf walk
and therefore live in the group's default partition (§V Step 3)."""


class TrieNode:
    """One node of a group's partition trie.

    Attributes
    ----------
    pivot:
        The pivot id on the edge from the parent (``None`` at the root).
    path:
        Pivot ids from the root to this node — the node's permutation
        prefix.
    count:
        Estimated number of records (full-data scale) in this subtree.
    children:
        ``pivot id -> TrieNode``; empty for leaves.
    partition_ids:
        Physical partitions covering this subtree: a single id at leaves,
        the union of the subtree at internal nodes (paper Fig. 5).
    """

    __slots__ = ("pivot", "path", "count", "children", "partition_ids")

    def __init__(
        self, pivot: int | None, path: tuple[int, ...], count: float
    ) -> None:
        self.pivot = pivot
        self.path = path
        self.count = float(count)
        self.children: dict[int, TrieNode] = {}
        self.partition_ids: set[int] = set()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        return len(self.path)

    def leaves(self) -> Iterator["TrieNode"]:
        """Yield leaves of this subtree in sorted pivot order.

        Iterative (like every traversal here): tries can be as deep as the
        signature prefix, beyond Python's recursion limit at large ``m``.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
                continue
            for pivot in sorted(node.children, reverse=True):
                stack.append(node.children[pivot])

    def descend(self, ranked_sig: Sequence[int]) -> "TrieNode":
        """Deepest node reachable by following the signature (Algorithm 3 L11)."""
        node = self
        for pivot in ranked_sig:
            child = node.children.get(int(pivot))
            if child is None:
                return node
            node = child
        return node

    def descend_path(self, ranked_sig: Sequence[int]) -> list["TrieNode"]:
        """All nodes visited on the walk, root first, deepest last."""
        nodes = [self]
        node = self
        for pivot in ranked_sig:
            child = node.children.get(int(pivot))
            if child is None:
                break
            node = child
            nodes.append(node)
        return nodes

    def subtree_partition_ids(self) -> set[int]:
        """Recompute the union of leaf partition ids (used after packing)."""
        out: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out |= node.partition_ids
            else:
                stack.extend(node.children.values())
        return out

    def finalize_partitions(self) -> None:
        """Propagate leaf partition ids up to every internal node.

        Bottom-up over an explicit post-order stack, so each internal node
        unions its children's already-final sets exactly once.
        """
        post: list[TrieNode] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                post.append(node)
                stack.extend(node.children.values())
        for node in reversed(post):
            ids: set[int] = set()
            for child in node.children.values():
                ids |= child.partition_ids
            node.partition_ids = ids

    def node_count(self) -> int:
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"TrieNode(path={self.path}, count={self.count:.0f}, {kind})"


def build_group_trie(
    signatures: Sequence[tuple[int, ...]],
    counts: Sequence[float],
    capacity: float,
) -> TrieNode:
    """Build the partition trie of one group (paper Fig. 5).

    Parameters
    ----------
    signatures:
        Distinct rank-sensitive signatures of the group's (sampled) members.
    counts:
        Estimated full-scale record count per signature.
    capacity:
        Capacity constraint ``c`` (records).  Nodes above it keep splitting
        while signature positions remain.

    Returns
    -------
    TrieNode
        The group's trie root.  A group within capacity yields a root-leaf.
    """
    if len(signatures) != len(counts):
        raise ConfigurationError("signatures and counts length mismatch")
    if capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    total = float(sum(counts))
    root = TrieNode(None, (), total)
    if not signatures:
        return root
    prefix_len = len(signatures[0])
    _split(root, list(zip(signatures, (float(c) for c in counts))), capacity, prefix_len)
    return root


def _split(
    node: TrieNode,
    members: list[tuple[tuple[int, ...], float]],
    capacity: float,
    prefix_len: int,
) -> None:
    """Split ``node`` while it exceeds capacity (Fig. 5).

    Iterative with an explicit work stack: a trie can be as deep as the
    signature prefix, and at large ``m`` a recursive formulation walks off
    Python's recursion limit long before the prefix is exhausted.
    """
    stack: list[tuple[TrieNode, list[tuple[tuple[int, ...], float]]]] = [
        (node, members)
    ]
    while stack:
        node, members = stack.pop()
        if node.count <= capacity or node.depth >= prefix_len:
            continue
        buckets: dict[int, list[tuple[tuple[int, ...], float]]] = {}
        for sig, cnt in members:
            buckets.setdefault(int(sig[node.depth]), []).append((sig, cnt))
        for pivot in sorted(buckets):
            subset = buckets[pivot]
            child = TrieNode(
                pivot, node.path + (pivot,), sum(c for _, c in subset)
            )
            node.children[pivot] = child
            stack.append((child, subset))

"""Node packing (Def. 13): group trie leaves into few physical partitions.

Bin packing is NP-hard; following the paper we use First Fit Decreasing
(FFD), the classic greedy approximation with worst-case ratio 1.5 and
``O(m log m)`` running time.  First Fit (no sorting) and one-leaf-per-bin
packers are included for the packing ablation bench.
"""

from __future__ import annotations

from typing import Hashable, Sequence, TypeVar

from repro.exceptions import ConfigurationError

__all__ = ["first_fit_decreasing", "first_fit", "one_per_bin"]

K = TypeVar("K", bound=Hashable)


def _validate(items: Sequence[tuple[K, float]], capacity: float) -> None:
    if capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    for key, size in items:
        if size < 0:
            raise ConfigurationError(f"negative size for item {key!r}")


def first_fit_decreasing(
    items: Sequence[tuple[K, float]], capacity: float
) -> list[list[K]]:
    """FFD packing of ``(key, size)`` items into bins of ``capacity``.

    Items larger than the capacity get a bin of their own — the capacity
    constraint is soft (§V: "the final partition sizes could slightly
    differ"), and a trie leaf can exceed ``c`` when its signature prefix is
    exhausted before the count drops below capacity.

    Returns
    -------
    list of list
        Keys grouped per bin, in bin-creation order.
    """
    _validate(items, capacity)
    ordered = sorted(items, key=lambda kv: (-kv[1], str(kv[0])))
    bins: list[list[K]] = []
    residual: list[float] = []
    # Upper bound on any bin's free space: when an item exceeds it, no bin
    # can hold the item and the O(bins) first-fit scan is skipped outright.
    # The bound is allowed to go stale upward (placements only shrink
    # residuals), and every *failed* full scan tightens it to the true
    # maximum it just observed — so with decreasing item sizes the
    # can't-fit-anywhere regime costs O(1) per item instead of O(bins).
    max_residual = 0.0
    for key, size in ordered:
        placed = False
        if size <= max_residual:
            scan_max = 0.0
            for i, free in enumerate(residual):
                if size <= free:
                    bins[i].append(key)
                    residual[i] = free - size
                    placed = True
                    break
                if free > scan_max:
                    scan_max = free
            if not placed:
                max_residual = scan_max
        if not placed:
            bins.append([key])
            free = max(0.0, capacity - size)
            residual.append(free)
            if free > max_residual:
                max_residual = free
    return bins


def first_fit(items: Sequence[tuple[K, float]], capacity: float) -> list[list[K]]:
    """First Fit without the decreasing sort (ablation comparator)."""
    _validate(items, capacity)
    bins: list[list[K]] = []
    residual: list[float] = []
    for key, size in items:
        placed = False
        for i, free in enumerate(residual):
            if size <= free:
                bins[i].append(key)
                residual[i] = free - size
                placed = True
                break
        if not placed:
            bins.append([key])
            residual.append(max(0.0, capacity - size))
    return bins


def one_per_bin(items: Sequence[tuple[K, float]], capacity: float) -> list[list[K]]:
    """No packing at all: every leaf its own partition (ablation comparator).

    This is the "many tiny partitions" regime the paper calls prohibitive
    for distributed systems.
    """
    _validate(items, capacity)
    return [[key] for key, _ in items]

"""CLIMBER configuration.

All tunables of Sections IV-VI in one validated dataclass.  Paper defaults
(§VII-A): 200 pivots, prefix length 10, K = 500, CLIMBER-kNN-Adaptive-4X
as the default variant.  The scaled-down defaults used by tests and
benchmarks are set per call site; this class only validates consistency.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.progressive import parse_early_stop
from repro.exceptions import ConfigurationError
from repro.pivots.distances import DecayKind
from repro.resilience import FaultPlan, RetryPolicy

__all__ = [
    "ClimberConfig",
    "PAPER_DEFAULTS",
    "ON_PARTITION_FAILURE_ENV",
    "EARLY_STOP_ENV",
]

#: Environment fallback for ``ClimberConfig.on_partition_failure`` — lets
#: the CI chaos smoke run the whole suite in degraded-query mode without
#: touching call sites.
ON_PARTITION_FAILURE_ENV = "CLIMBER_ON_PARTITION_FAILURE"

#: Environment fallback for ``ClimberConfig.early_stop`` — lets CI arm
#: the progressive stopping rule over a whole tier-1 run without touching
#: call sites (only ``knn_progressive``/``knn_batch_progressive`` consult
#: it; the exact ``knn``/``knn_batch`` paths never stop early).
EARLY_STOP_ENV = "CLIMBER_EARLY_STOP"


@dataclass(frozen=True)
class ClimberConfig:
    """Parameters of CLIMBER-FX, CLIMBER-INX, and the query algorithms.

    Parameters
    ----------
    word_length:
        PAA segments ``w`` (CLIMBER-FX Step 1).
    n_pivots:
        Total pivots ``r`` (paper default 200; sweet spot 150-250, Fig. 10).
    prefix_length:
        Pivot-permutation-prefix length ``m`` (paper default 10; ideal range
        10-20, Fig. 12).
    capacity:
        Partition capacity ``c`` in records (Def. 12).  ``None`` means
        "derive from the DFS block size", matching the paper's HDFS-block
        constraint.
    sample_fraction:
        ``alpha`` — fraction of input partitions sampled to build the index
        skeleton (construction Steps 1-3).
    min_centroid_separation:
        ``epsilon`` in Algorithm 2 — minimum Overlap Distance between any
        two selected centroids.  ``None`` defaults to ``ceil(m / 2)`` (the
        paper gives no value; see DESIGN.md §4).
    max_centroids:
        Optional stopping criterion of Algorithm 2.
    decay, decay_rate:
        Pivot-weight decay function of Def. 9 (exponential with
        ``lambda = 1/2`` by default, as in the paper's Example 1).
    adaptive_factor:
        Partition budget multiplier of CLIMBER-kNN-Adaptive relative to
        CLIMBER-kNN: 2 for the -2X variant, 4 for -4X, 1 disables
        adaptivity.
    seed:
        Seed for pivot selection and the random tie-breaks of
        Algorithms 1 and 3.
    n_input_partitions:
        How many chunks the raw dataset arrives in (the sampling unit of
        construction Step 1).
    cost_scale:
        Paper-scale multiplier for the simulated cost accounting: every
        declared byte/op count is multiplied by this factor so a scaled-down
        run reports paper-scale simulated times.  1.0 reports the honest
        scaled cost.  See DESIGN.md §1.
    sim_partition_bytes:
        When set, each partition touched by a *query* is charged as one
        storage block of this many bytes (the paper's 64 MB HDFS block)
        instead of the scaled partition's bytes times ``cost_scale``.
        Needed because a 10^5 scale-down cannot match total data volume and
        per-block volume simultaneously; queries are block-granular in the
        paper, so benches set this to 64 MB.  ``None`` keeps honest scaled
        accounting.
    dfs_cache_bytes:
        Byte budget of the DFS partition read-cache used when the builder
        creates its own :class:`~repro.storage.SimulatedDFS` (callers
        passing a DFS configure caching on it directly).  0 (the default)
        disables caching.  The cache is purely physical: simulated cost
        accounting and the DFS's logical read counters are identical with
        it on or off.
    partition_format:
        Physical partition format the builder-created DFS writes: ``"v2"``
        (default, the zero-copy columnar format served as mmap/frombuffer
        views) or ``"v1"`` (the legacy blob stream).  Purely physical, like
        the cache: query results, logical read counters, and simulated
        cost accounting are byte-identical across formats.
    n_workers:
        Worker count of the parallel execution layer
        (:mod:`repro.core.parallel`): build conversion blocks, trie
        compiles, partition encodes and ``knn_batch`` query shards all run
        on this many workers.  ``None`` (the default) resolves through the
        ``CLIMBER_N_WORKERS`` environment variable, else 1.  Purely
        physical: any worker count produces **bit-identical** results —
        same partition bytes, counters and kNN answers as ``n_workers=1``
        (the parity suite proves it).
    executor:
        Executor kind behind ``n_workers``: ``"thread"`` (default — the
        hot numpy kernels release the GIL, and thread pools share the
        index's object graph), ``"process"`` (pickle-friendly stages only;
        shared-structure stages fall back to threads), or ``"serial"``.
    telemetry:
        Enable the observability layer (:mod:`repro.obs`): per-stage build
        spans, per-query latency histograms and ``explain_query`` probes.
        Purely observational — query results, partition bytes and logical
        DFS counters are bit-identical with it on or off (the obs parity
        test proves it).  Off by default; disabled mode costs one
        attribute lookup per gated site.
    telemetry_sample_every:
        Sampling period of the enabled-mode per-query probes: 1 (default)
        probes every query; ``N > 1`` probes one query in N and the rest
        pay only the ``query.count`` increment — the always-on production
        sampling mode (enabled-mode overhead drops to ~disabled level).
        Sampled-out queries still return exact answers/stats; only the
        per-query stage histograms subsample.
    partition_checksums:
        Whether builder-created DFS instances write v2 partitions with
        per-section CRC32 checksums (header version 3; the default).
        Purely physical: answers, logical counters and simulated costs
        are identical with checksums on or off, and either generation of
        stored payload stays readable.
    verify_checksums:
        Read-side verification mode: ``"off"``, ``"lazy"`` (default) or
        ``"eager"`` (see :class:`~repro.storage.engine.PartitionV2View`).
        Corruption raises
        :class:`~repro.exceptions.PartitionCorruptError`.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injected under the
        builder-created DFS.  ``None`` consults the ``CLIMBER_FAULT_*``
        environment knobs (:meth:`FaultPlan.from_env`); the resolved plan
        is exposed as :attr:`effective_fault_plan`.
    retry_policy:
        :class:`~repro.resilience.RetryPolicy` of the DFS read path;
        ``None`` uses the DFS default (3 attempts, seeded-jitter
        exponential backoff).
    on_partition_failure:
        Default degraded-query mode for ``knn``/``knn_batch``:
        ``"raise"`` propagates storage failures, ``"skip"`` drops the
        failed partition from the candidate read set and answers from
        the rest (stats record ``partitions_failed``/``coverage``).
        ``None`` (default) resolves through the
        ``CLIMBER_ON_PARTITION_FAILURE`` environment variable, else
        ``"raise"``.
    early_stop:
        Default stopping knob of the *progressive* query path
        (``knn_progressive``/``knn_batch_progressive``; the exact
        ``knn``/``knn_batch`` paths never stop early): ``"off"``,
        ``"confidence"`` (calibrated streak at
        :attr:`early_stop_confidence`), ``"confidence:0.95"`` or
        ``"streak:3"`` — see :func:`repro.core.progressive.parse_early_stop`.
        ``None`` (default) resolves through the ``CLIMBER_EARLY_STOP``
        environment variable, else ``"off"``.
    early_stop_confidence:
        Confidence level used when :attr:`early_stop` resolves to plain
        ``"confidence"`` (default 0.9): the calibrated fraction of
        queries whose early answer must already equal the full-budget
        answer.
    """

    word_length: int = 16
    n_pivots: int = 200
    prefix_length: int = 10
    capacity: int | None = None
    sample_fraction: float = 0.1
    min_centroid_separation: int | None = None
    max_centroids: int | None = None
    decay: DecayKind = "exponential"
    decay_rate: float | None = None
    adaptive_factor: int = 4
    seed: int = 0
    n_input_partitions: int = 32
    cost_scale: float = 1.0
    sim_partition_bytes: int | None = None
    dfs_cache_bytes: int = 0
    partition_format: str = "v2"
    n_workers: int | None = None
    executor: str = "thread"
    telemetry: bool = False
    telemetry_sample_every: int = 1
    partition_checksums: bool = True
    verify_checksums: str = "lazy"
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    on_partition_failure: str | None = None
    early_stop: str | None = None
    early_stop_confidence: float = 0.9

    def __post_init__(self) -> None:
        if self.word_length < 1:
            raise ConfigurationError("word_length must be >= 1")
        if self.n_pivots < 2:
            raise ConfigurationError("n_pivots must be >= 2")
        if not 1 <= self.prefix_length <= self.n_pivots:
            raise ConfigurationError(
                f"prefix_length must be in [1, n_pivots={self.n_pivots}]"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError("capacity must be >= 1 when given")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if self.min_centroid_separation is not None and not (
            0 <= self.min_centroid_separation <= self.prefix_length
        ):
            raise ConfigurationError(
                "min_centroid_separation must be in [0, prefix_length]"
            )
        if self.max_centroids is not None and self.max_centroids < 1:
            raise ConfigurationError("max_centroids must be >= 1 when given")
        if self.adaptive_factor < 1:
            raise ConfigurationError("adaptive_factor must be >= 1")
        if self.n_input_partitions < 1:
            raise ConfigurationError("n_input_partitions must be >= 1")
        if self.cost_scale <= 0:
            raise ConfigurationError("cost_scale must be positive")
        if self.sim_partition_bytes is not None and self.sim_partition_bytes < 1024:
            raise ConfigurationError("sim_partition_bytes must be >= 1024")
        if self.dfs_cache_bytes < 0:
            raise ConfigurationError("dfs_cache_bytes must be >= 0")
        if self.partition_format not in ("v1", "v2"):
            raise ConfigurationError(
                f"partition_format must be 'v1' or 'v2', "
                f"got {self.partition_format!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1 when given")
        if self.executor not in ("serial", "thread", "process"):
            raise ConfigurationError(
                f"executor must be 'serial', 'thread' or 'process', "
                f"got {self.executor!r}"
            )
        if self.telemetry_sample_every < 1:
            raise ConfigurationError("telemetry_sample_every must be >= 1")
        if self.verify_checksums not in ("off", "lazy", "eager"):
            raise ConfigurationError(
                f"verify_checksums must be 'off', 'lazy' or 'eager', "
                f"got {self.verify_checksums!r}"
            )
        if self.on_partition_failure not in (None, "raise", "skip"):
            raise ConfigurationError(
                f"on_partition_failure must be 'raise' or 'skip', "
                f"got {self.on_partition_failure!r}"
            )
        if self.early_stop is not None:
            parse_early_stop(self.early_stop)  # raises on a bad spec
        if not 0.0 < self.early_stop_confidence < 1.0:
            raise ConfigurationError(
                f"early_stop_confidence must be in (0, 1), "
                f"got {self.early_stop_confidence!r}"
            )

    @property
    def effective_fault_plan(self) -> FaultPlan | None:
        """Explicit :attr:`fault_plan`, else the ``CLIMBER_FAULT_*`` env plan."""
        if self.fault_plan is not None:
            return self.fault_plan
        return FaultPlan.from_env()

    @property
    def effective_on_partition_failure(self) -> str:
        """Resolved degraded-query mode: explicit → env → ``"raise"``."""
        if self.on_partition_failure is not None:
            return self.on_partition_failure
        raw = os.environ.get(ON_PARTITION_FAILURE_ENV, "").strip()
        if not raw:
            return "raise"
        if raw not in ("raise", "skip"):
            raise ConfigurationError(
                f"{ON_PARTITION_FAILURE_ENV}={raw!r} must be 'raise' or 'skip'"
            )
        return raw

    @property
    def effective_early_stop(self) -> str:
        """Resolved progressive stopping knob: explicit → env → ``"off"``."""
        if self.early_stop is not None:
            return self.early_stop
        raw = os.environ.get(EARLY_STOP_ENV, "").strip()
        if not raw:
            return "off"
        parse_early_stop(raw)  # raises on a bad env spec
        return raw

    @property
    def effective_n_workers(self) -> int:
        """Resolved worker count: ``n_workers`` → ``CLIMBER_N_WORKERS`` → 1."""
        from repro.core.parallel import resolve_n_workers

        return resolve_n_workers(self.n_workers)

    @property
    def epsilon(self) -> int:
        """Effective minimum centroid separation for Algorithm 2."""
        if self.min_centroid_separation is not None:
            return self.min_centroid_separation
        return (self.prefix_length + 1) // 2


PAPER_DEFAULTS = ClimberConfig(
    word_length=16,
    n_pivots=200,
    prefix_length=10,
    sample_fraction=0.01,
    adaptive_factor=4,
)
"""The paper's default configuration (§VII-A), for reference in benches."""

"""The CLIMBER-INX index skeleton (paper Fig. 5).

The skeleton is the small driver-resident structure produced by
construction Steps 1-3 and broadcast to every worker in Step 4: the list
of groups (each with its rank-insensitive centroid, its partition trie and
its default partition) plus the pivot matrix.  Its serialised size is the
"global index size (MB)" metric of Figures 8 and 12.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.core.trie import DEFAULT_CLUSTER_SUFFIX, TrieNode
from repro.exceptions import ConfigurationError, StorageError
from repro.storage.serialization import (
    array_from_bytes,
    array_to_bytes,
    json_from_bytes,
    json_to_bytes,
    read_blob,
    write_blob,
)

__all__ = ["GroupEntry", "IndexSkeleton", "partition_name", "cluster_key"]


def partition_name(pid: int) -> str:
    """DFS name of physical partition ``pid`` (beta_i in paper Fig. 5)."""
    return f"beta{pid}"


def cluster_key(group_id: int, path: tuple[int, ...] | None) -> str:
    """Header key of a trie node's record cluster inside a partition.

    ``path=None`` denotes the group's default cluster (records whose
    signature could not complete a root-to-leaf walk).
    """
    if path is None:
        return f"G{group_id}/{DEFAULT_CLUSTER_SUFFIX}"
    if not path:
        return f"G{group_id}"
    return f"G{group_id}/" + "/".join(str(p) for p in path)


@dataclass
class GroupEntry:
    """One first-level entry of the skeleton (a data series group)."""

    group_id: int
    centroid: tuple[int, ...]
    trie: TrieNode
    default_partition: int
    est_size: float

    @property
    def is_fallback(self) -> bool:
        """True for the special group G0 with centroid ``<*,*,...>``."""
        return not self.centroid


@dataclass
class IndexSkeleton:
    """Groups + tries + partition directory; serialisable and broadcastable."""

    prefix_length: int
    n_pivots: int
    word_length: int
    groups: list[GroupEntry] = field(default_factory=list)
    n_partitions: int = 0
    _flat_router: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.groups:
            return
        if self.groups[0].centroid != ():
            raise ConfigurationError("group 0 must be the fall-back group")

    @property
    def centroids(self) -> list[tuple[int, ...]]:
        """Real centroids, in group order (excludes the fall-back G0)."""
        return [g.centroid for g in self.groups[1:]]

    def group(self, group_id: int) -> GroupEntry:
        if not 0 <= group_id < len(self.groups):
            raise ConfigurationError(f"no group {group_id}")
        return self.groups[group_id]

    def total_trie_nodes(self) -> int:
        return sum(g.trie.node_count() for g in self.groups)

    def flat_router(self, executor=None):
        """The CSR-compiled trie router over this skeleton's groups.

        Compiled lazily, once: the builder's bulk redistribution, the
        vectorised query routing table and :meth:`ClimberIndex.append` all
        share the same compile.  The skeleton's tries are frozen after
        construction (appends never rebalance), so the cache never goes
        stale.  ``executor`` (a :class:`repro.core.parallel.Executor`)
        parallelises the per-group compiles of a *first* call; a cached
        router is returned as-is.
        """
        if self._flat_router is None:
            from repro.core.trie_flat import FlatTrieRouter

            self._flat_router = FlatTrieRouter(self, executor=executor)
        return self._flat_router

    def fallback_mask(self) -> np.ndarray:
        """Boolean mask over groups, True at fall-back entries (routing)."""
        return np.array([g.is_fallback for g in self.groups], dtype=bool)

    def centroid_matrix(self) -> np.ndarray:
        """``(n_real, m)`` int64 matrix of non-fallback centroids, in group order.

        The array form the vectorised routing engine packs into bitsets;
        rows line up with ``fallback_mask() == False`` positions.
        """
        real = [g.centroid for g in self.groups if not g.is_fallback]
        if not real:
            return np.zeros((0, self.prefix_length), dtype=np.int64)
        return np.asarray(real, dtype=np.int64)

    # -- serialisation ----------------------------------------------------------
    #
    # Tries serialise to nested lists: [pivot, count, partition_ids_if_leaf,
    # [children...]].  Internal nodes recompute their id unions on load.

    @staticmethod
    def _trie_to_obj(node: TrieNode) -> list:
        # Iterative, like every trie traversal: our own frames never bound
        # the representable depth (the JSON encoder's nesting limit is the
        # remaining ceiling, far beyond any real prefix length).
        def make(nd: TrieNode) -> list:
            pids = sorted(nd.partition_ids) if nd.is_leaf else []
            return [nd.pivot, round(nd.count, 3), pids, []]

        root_obj = make(node)
        stack = [(node, root_obj)]
        while stack:
            nd, obj = stack.pop()
            for pivot in sorted(nd.children):
                child_obj = make(nd.children[pivot])
                obj[3].append(child_obj)
                stack.append((nd.children[pivot], child_obj))
        return root_obj

    @staticmethod
    def _trie_from_obj(obj: list, path: tuple[int, ...]) -> TrieNode:
        pivot, count, pids, children = obj
        root = TrieNode(pivot, path, count)
        root.partition_ids = set(int(p) for p in pids)
        stack = [(root, children)]
        while stack:
            node, child_objs = stack.pop()
            for child_obj in child_objs:
                c_pivot = int(child_obj[0])
                child = TrieNode(c_pivot, node.path + (c_pivot,), child_obj[1])
                child.partition_ids = set(int(p) for p in child_obj[2])
                node.children[c_pivot] = child
                stack.append((child, child_obj[3]))
        return root

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        meta = {
            "prefix_length": self.prefix_length,
            "n_pivots": self.n_pivots,
            "word_length": self.word_length,
            "n_partitions": self.n_partitions,
            "groups": [
                {
                    "id": g.group_id,
                    "centroid": list(g.centroid),
                    "default": g.default_partition,
                    "est_size": round(g.est_size, 3),
                    "trie": self._trie_to_obj(g.trie),
                }
                for g in self.groups
            ],
        }
        write_blob(buf, json_to_bytes(meta))
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "IndexSkeleton":
        buf = io.BytesIO(data)
        meta = json_from_bytes(read_blob(buf))
        if not isinstance(meta, dict):
            raise StorageError("malformed skeleton payload")
        groups = []
        for g in meta["groups"]:
            trie = cls._trie_from_obj(g["trie"], ())
            trie.finalize_partitions()
            groups.append(
                GroupEntry(
                    group_id=int(g["id"]),
                    centroid=tuple(int(p) for p in g["centroid"]),
                    trie=trie,
                    default_partition=int(g["default"]),
                    est_size=float(g["est_size"]),
                )
            )
        return cls(
            prefix_length=int(meta["prefix_length"]),
            n_pivots=int(meta["n_pivots"]),
            word_length=int(meta["word_length"]),
            groups=groups,
            n_partitions=int(meta["n_partitions"]),
        )

    @property
    def nbytes(self) -> int:
        """Serialised size — the paper's "global index size" metric."""
        return len(self.to_bytes())


@dataclass
class SkeletonWithPivots:
    """What actually gets broadcast in Step 4: skeleton + pivot matrix."""

    skeleton: IndexSkeleton
    pivots: np.ndarray

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        write_blob(buf, self.skeleton.to_bytes())
        write_blob(buf, array_to_bytes(self.pivots))
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SkeletonWithPivots":
        buf = io.BytesIO(data)
        skeleton = IndexSkeleton.from_bytes(read_blob(buf))
        pivots = array_from_bytes(read_blob(buf))
        return cls(skeleton, pivots)


__all__.append("SkeletonWithPivots")

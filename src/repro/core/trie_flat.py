"""Flattened CSR trie router: batch descend over numpy arrays.

The pointer-based :class:`~repro.core.trie.TrieNode` tries are the right
structure to *build* (§IV-D splits them incrementally), but walking them —
``descend`` during index construction Step 4, ``descend_path`` during query
routing — is per-record Python dict-chasing.  At build scale (every record
of the dataset is redistributed through a trie walk) that loop dominates
CLIMBER-INX construction, exactly the cost the parallel-indexing literature
(ParIS/MESSI) identifies as the adoption barrier for data-series indexes.

This module compiles each group's trie, once, into CSR-style arrays:

* a sorted **child-edge table** — one global ``edge_key`` array where the
  entry for edge ``parent --pivot--> child`` is ``parent * stride + pivot``.
  Nodes are numbered in pre-order (children in sorted pivot order), so the
  keys are globally sorted and one ``np.searchsorted`` resolves an entire
  batch of (node, pivot) lookups per trie level;
* per-node **leaf/partition metadata** (``is_leaf``, ``leaf_pid``, depth,
  counts) and pre-rendered cluster-key strings;
* **subtree ranges**: pre-order numbering makes every subtree a contiguous
  id interval, so the leaves (and therefore the covering partitions) of any
  node are a slice — no recursion at query time.

:class:`FlatTrie.descend_many` resolves thousands of signatures per call;
:class:`FlatTrieRouter` stitches the per-group tries into the whole-index
routing step used by the builder's bulk redistribution, by
:meth:`ClimberIndex.append`, and by the query planner's path walks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.skeleton import IndexSkeleton, cluster_key
from repro.core.trie import TrieNode
from repro.exceptions import ConfigurationError

__all__ = ["FlatTrie", "FlatTrieRouter"]

_DENSE_EDGE_MAP_CAP = 1 << 22
"""Entry cap for the router's dense edge-lookup table (int32 entries, so
16 MB at the cap); bigger composite key spaces fall back to binary search
over the sorted CSR edge table."""


class FlatTrie:
    """CSR compile of one group's partition trie.

    Parameters
    ----------
    root:
        The group's trie root (packed and finalised: leaves carry their
        physical partition id).
    group_id:
        The owning group — baked into the pre-rendered cluster keys.
    n_pivots:
        Total pivot count ``r``; the stride of the composite edge keys.
        Any pivot id outside ``[0, n_pivots)`` misses by construction.

    Attributes
    ----------
    nodes:
        The original :class:`TrieNode` objects in pre-order (children in
        sorted pivot order) — index ``i`` here is node id ``i`` in every
        array below.  Mapping back lets the query pipeline keep its
        node-object interface while the walks run on arrays.
    """

    def __init__(self, root: TrieNode, group_id: int, n_pivots: int) -> None:
        if n_pivots < 1:
            raise ConfigurationError("n_pivots must be >= 1")
        self.group_id = int(group_id)
        self.stride = int(n_pivots)
        # Pre-order traversal, children in sorted pivot order.  Parents
        # precede children, and every subtree occupies a contiguous id range.
        nodes: list[TrieNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            for pivot in sorted(node.children, reverse=True):
                stack.append(node.children[pivot])
        n = len(nodes)
        self.nodes = nodes
        index_of = {id(node): i for i, node in enumerate(nodes)}
        self._node_index = index_of
        self.depth = np.fromiter((nd.depth for nd in nodes), np.int64, n)
        self.count = np.fromiter((nd.count for nd in nodes), np.float64, n)
        self.is_leaf = np.fromiter((nd.is_leaf for nd in nodes), bool, n)
        self.leaf_pid = np.fromiter(
            (
                min(nd.partition_ids) if nd.is_leaf and nd.partition_ids else -1
                for nd in nodes
            ),
            np.int64,
            n,
        )
        if int(self.stride) <= int(max((p for nd in nodes for p in nd.children),
                                       default=-1)):
            raise ConfigurationError(
                "n_pivots must exceed every pivot id used by the trie"
            )

        # Child-edge table (CSR): edges grouped by parent id (ascending),
        # pivots sorted within each parent -> edge_key globally sorted.
        child_start = np.zeros(n + 1, dtype=np.int64)
        edge_key: list[int] = []
        edge_child: list[int] = []
        for i, node in enumerate(nodes):
            for pivot in sorted(node.children):
                edge_key.append(i * self.stride + pivot)
                edge_child.append(index_of[id(node.children[pivot])])
            child_start[i + 1] = len(edge_key)
        self.child_start = child_start
        self.edge_key = np.asarray(edge_key, dtype=np.int64)
        self.edge_child = np.asarray(edge_child, dtype=np.int64)
        self._edge_lookup = dict(zip(edge_key, edge_child))
        self.max_depth = int(self.depth.max()) if n else 0

        # Subtree ranges: with pre-order ids, node i's subtree is
        # [i, subtree_end[i]).  Computed leaf-to-root (reverse order): an
        # internal node ends where its last (largest-pivot) child ends.
        subtree_end = np.empty(n, dtype=np.int64)
        for i in range(n - 1, -1, -1):
            node = nodes[i]
            if node.is_leaf:
                subtree_end[i] = i + 1
            else:
                last = node.children[max(node.children)]
                subtree_end[i] = subtree_end[index_of[id(last)]]
        self.subtree_end = subtree_end

        self.leaf_positions = np.flatnonzero(self.is_leaf)
        self.leaf_keys = [
            cluster_key(self.group_id, nodes[i].path) for i in self.leaf_positions
        ]
        self.default_key = cluster_key(self.group_id, None)

    # -- geometry ----------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return int(self.edge_key.size)

    def id_of(self, node: TrieNode) -> int:
        """Flat id of one of this trie's nodes (identity-keyed)."""
        try:
            return self._node_index[id(node)]
        except KeyError:
            raise ConfigurationError("node does not belong to this trie") from None

    # -- batch walks -------------------------------------------------------------

    def descend_many(self, ranked: np.ndarray) -> np.ndarray:
        """Deepest reachable node for every signature row, in one sweep.

        The walk is lockstep: after ``t`` levels every still-active row sits
        at depth ``t``, so level ``t`` consumes column ``t`` of ``ranked``.
        Each level resolves all active (node, pivot) pairs with a single
        ``searchsorted`` over the composite edge-key table.
        :meth:`FlatTrieRouter.route` runs the same level kernel over the
        fused multi-group table (plus a dense edge map) — change the walk
        in both places.

        Parity-exact with ``TrieNode.descend`` row by row.
        """
        arr = np.asarray(ranked, dtype=np.int64)
        if arr.ndim != 2:
            raise ConfigurationError("ranked must be a (q, m) signature batch")
        q = arr.shape[0]
        node = np.zeros(q, dtype=np.int64)
        if q == 0 or self.n_edges == 0:
            return node
        active = np.arange(q)
        n_edges = self.edge_key.size
        stride = self.stride
        for level in range(min(arr.shape[1], self.max_depth)):
            piv = arr[active, level]
            valid = (piv >= 0) & (piv < stride)
            key = node[active] * stride + np.where(valid, piv, 0)
            pos = np.searchsorted(self.edge_key, key)
            pos_c = np.minimum(pos, n_edges - 1)
            hit = valid & (self.edge_key[pos_c] == key)
            if not hit.any():
                break
            active = active[hit]
            node[active] = self.edge_child[pos_c[hit]]
        return node

    def descend_path_ids(self, ranked_sig: Sequence[int]) -> list[int]:
        """Node ids visited by one signature's walk, root first.

        The single-query mirror of :meth:`descend_many`: a flat dict over
        composite edge keys, no per-node object hops.  Matches
        ``TrieNode.descend_path`` node for node.
        """
        lookup = self._edge_lookup
        stride = self.stride
        node = 0
        out = [0]
        for pivot in ranked_sig:
            nxt = lookup.get(node * stride + int(pivot))
            if nxt is None:
                break
            node = nxt
            out.append(node)
        return out

    def descend_path_nodes(self, ranked_sig: Sequence[int]) -> tuple[TrieNode, ...]:
        """The walk as :class:`TrieNode` objects (query-planner interface)."""
        nodes = self.nodes
        return tuple(nodes[i] for i in self.descend_path_ids(ranked_sig))

    # -- subtree queries ---------------------------------------------------------

    def _leaf_range(self, node_id: int) -> tuple[int, int]:
        lo = int(np.searchsorted(self.leaf_positions, node_id))
        hi = int(np.searchsorted(self.leaf_positions, self.subtree_end[node_id]))
        return lo, hi

    def covering_partitions(self, node_ids: Iterable[int]) -> list[np.ndarray]:
        """Sorted physical partition ids covering each node's subtree.

        Batch form of ``TrieNode.partition_ids`` (the union of the
        subtree's leaf partitions): each node's leaves are one slice of the
        pre-order leaf table, so a covering set is ``np.unique`` of a
        ``leaf_pid`` slice — no tree walk.
        """
        out = []
        for nid in node_ids:
            lo, hi = self._leaf_range(int(nid))
            pids = self.leaf_pid[self.leaf_positions[lo:hi]]
            out.append(np.unique(pids[pids >= 0]))
        return out

    def subtree_keys(self, node_id: int) -> list[str]:
        """Cluster keys of the subtree's leaves, in sorted-pivot leaf order.

        Pre-rendered at compile time; equals
        ``[cluster_key(gid, leaf.path) for leaf in node.leaves()]``.
        """
        lo, hi = self._leaf_range(int(node_id))
        return self.leaf_keys[lo:hi]


class FlatTrieRouter:
    """All of a skeleton's tries compiled flat, plus whole-index routing.

    Per-group :class:`FlatTrie` compiles serve the query planner; for the
    bulk build/append path the router additionally fuses every group into
    **one global CSR trie**: node ids are offset per group (group ``g``'s
    nodes occupy ``[offset[g], offset[g+1])``), the per-group edge tables
    concatenate into a single sorted composite-key table, and a batch walk
    starts each record at its group's root — so redistributing the whole
    dataset is ``prefix_length`` ``searchsorted`` sweeps total, independent
    of the group count.

    Every node maps to a *cluster id* (``kid``): the leaf's own cluster
    when a completed walk reaches a packed leaf, else the group's default
    cluster ``G<gid>/~``.  Each kid belongs to exactly one physical
    partition (``kid_pid``), and ``kid_rank`` pre-orders kids by
    ``(partition id, cluster key string)`` — so one stable integer argsort
    over ``kid_rank[kid_of]`` lands every record in exactly the layout
    :meth:`PartitionFile.from_clusters` builds from a key-sorted mapping.
    """

    def __init__(self, skeleton: IndexSkeleton, executor=None) -> None:
        self.skeleton = skeleton
        self.stride = int(skeleton.n_pivots)
        if executor is not None and executor.n_workers > 1:
            # Per-group compiles are independent pure-Python traversals, so
            # a thread pool overlaps them; map preserves group order, and
            # each FlatTrie depends only on its own group, so the result is
            # identical to the serial loop.  Compiled tries are keyed by
            # TrieNode identity (``_node_index``) and structure-share the
            # skeleton's nodes — shared memory is required, never a process
            # pool (make_executor's require_shared_memory gate).
            if not executor.shares_memory:
                raise ConfigurationError(
                    "FlatTrieRouter compile requires a shared-memory executor"
                )
            self.tries = executor.map(
                lambda g: FlatTrie(g.trie, g.group_id, skeleton.n_pivots),
                skeleton.groups,
            )
        else:
            self.tries = [
                FlatTrie(g.trie, g.group_id, skeleton.n_pivots)
                for g in skeleton.groups
            ]
        n_groups = len(self.tries)
        offsets = np.zeros(n_groups + 1, dtype=np.int64)
        kid_keys: list[str] = []
        kid_pid: list[int] = []
        node_kid_parts: list[np.ndarray] = []
        edge_key_parts: list[np.ndarray] = []
        edge_child_parts: list[np.ndarray] = []
        for g, (entry, ft) in enumerate(zip(skeleton.groups, self.tries)):
            off = offsets[g]
            offsets[g + 1] = off + ft.n_nodes
            default_kid = len(kid_keys)
            kid_keys.append(ft.default_key)
            kid_pid.append(int(entry.default_partition))
            kid = np.full(ft.n_nodes, default_kid, dtype=np.int64)
            leaf_pids = ft.leaf_pid[ft.leaf_positions]
            leaf_kids = np.arange(len(ft.leaf_keys), dtype=np.int64) \
                + len(kid_keys)
            kid_keys.extend(ft.leaf_keys)
            kid_pid.extend(int(p) for p in leaf_pids)
            # A record routes to the leaf's own cluster only when the leaf
            # is actually packed (has a partition id); an unpacked leaf
            # behaves like a stalled walk (append semantics).
            routable = leaf_pids >= 0
            kid[ft.leaf_positions[routable]] = leaf_kids[routable]
            node_kid_parts.append(kid)
            # Global edge keys: local key = local_node * stride + pivot,
            # so offsetting the node id adds off * stride.  Group blocks
            # are disjoint ascending ranges -> global table stays sorted.
            edge_key_parts.append(ft.edge_key + off * self.stride)
            edge_child_parts.append(ft.edge_child + off)
        self.node_offset = offsets
        self.root_of = offsets[:-1]
        self.node_kid = (
            np.concatenate(node_kid_parts) if node_kid_parts
            else np.zeros(0, dtype=np.int64)
        )
        self.edge_key = (
            np.concatenate(edge_key_parts) if edge_key_parts
            else np.zeros(0, dtype=np.int64)
        )
        self.edge_child = (
            np.concatenate(edge_child_parts) if edge_child_parts
            else np.zeros(0, dtype=np.int64)
        )
        self.max_depth = max((ft.max_depth for ft in self.tries), default=0)
        # Dense O(1) edge lookup: the composite key space is
        # n_nodes * stride entries, tiny for real skeletons (a few hundred
        # KB), so the batch walk can replace per-level binary searches with
        # one flat gather.  Falls back to searchsorted past the cap.
        n_nodes_total = int(offsets[-1])
        self._dense_keys = n_nodes_total * self.stride
        if 0 < self._dense_keys <= _DENSE_EDGE_MAP_CAP and self.edge_key.size:
            edge_map = np.full(self._dense_keys, -1, dtype=np.int32)
            edge_map[self.edge_key] = self.edge_child.astype(np.int32)
            self.edge_map: np.ndarray | None = edge_map
        else:
            self.edge_map = None
        self.cluster_keys = kid_keys
        self.kid_pid = np.asarray(kid_pid, dtype=np.int64)
        # Rank kids by (partition id, key string): records sorted by
        # kid_rank are grouped by ascending partition, clusters inside a
        # partition in lexicographic key order.
        key_order = np.argsort(np.asarray(kid_keys))
        key_rank = np.empty(len(kid_keys), dtype=np.int64)
        key_rank[key_order] = np.arange(len(kid_keys))
        order = np.lexsort((key_rank, self.kid_pid))
        rank = np.empty(len(kid_keys), dtype=np.int64)
        rank[order] = np.arange(len(kid_keys))
        self.kid_rank = rank

    @property
    def n_groups(self) -> int:
        return len(self.tries)

    def route(
        self, ranked: np.ndarray, group_indices: np.ndarray
    ) -> np.ndarray:
        """Resolve every record to its cluster id in one global batch walk.

        The whole-dataset replacement for the per-record ``trie.descend``
        loop of construction Step 4 / ``append``: records start at their
        group's root in the fused trie and the lockstep level walk resolves
        all still-active records with a single ``searchsorted`` per prefix
        position.  Returns ``kid_of``; partitions follow as
        ``kid_pid[kid_of]``.
        """
        arr = np.asarray(ranked, dtype=np.int64)
        gids = np.asarray(group_indices, dtype=np.int64)
        if arr.ndim != 2 or gids.ndim != 1 or arr.shape[0] != gids.shape[0]:
            raise ConfigurationError("ranked and group_indices disagree")
        if gids.size and (gids.min() < 0 or gids.max() >= self.n_groups):
            raise ConfigurationError("group index out of range")
        node = self.root_of[gids]
        q = arr.shape[0]
        if q == 0 or self.edge_key.size == 0:
            return self.node_kid[node] if q else np.zeros(0, dtype=np.int64)
        active = np.arange(q)
        n_edges = self.edge_key.size
        stride = self.stride
        edge_map = self.edge_map
        for level in range(min(arr.shape[1], self.max_depth)):
            piv = arr[active, level]
            valid = (piv >= 0) & (piv < stride)
            key = node[active] * stride + np.where(valid, piv, 0)
            if edge_map is not None:
                child = edge_map[key]
                hit = valid & (child >= 0)
                if not hit.any():
                    break
                active = active[hit]
                node[active] = child[hit]
            else:
                pos = np.searchsorted(self.edge_key, key)
                pos_c = np.minimum(pos, n_edges - 1)
                hit = valid & (self.edge_key[pos_c] == key)
                if not hit.any():
                    break
                active = active[hit]
                node[active] = self.edge_child[pos_c[hit]]
        return self.node_kid[node]

    def partition_layout(
        self, kid_of: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[int, int, int, dict[str, tuple[int, int]]]]]:
        """Sort-based grouping of routed records into partition layouts.

        Returns ``(order, parts)``: ``order`` permutes record rows into
        final storage order (ascending partition id, clusters in sorted key
        order within each partition, arrival order within each cluster —
        one stable integer argsort over the precomputed ``kid_rank``
        reproduces the legacy per-record grouping byte for byte), and
        ``parts`` lists ``(pid, start, end, header)`` per partition, with
        ``header`` mapping cluster keys to partition-relative
        ``(offset, count)``.
        """
        order = np.argsort(self.kid_rank[kid_of], kind="stable")
        n = order.size
        parts: list[tuple[int, int, int, dict[str, tuple[int, int]]]] = []
        if n == 0:
            return order, parts
        sorted_kid = kid_of[order]
        # A kid determines its partition, so cluster runs and partition
        # boundaries both fall out of kid changes alone.
        change = np.flatnonzero(sorted_kid[1:] != sorted_kid[:-1]) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [n]))
        run_kid = sorted_kid[starts]
        run_pid = self.kid_pid[run_kid]
        part_first = np.flatnonzero(
            np.concatenate(([True], run_pid[1:] != run_pid[:-1]))
        )
        part_last = np.concatenate((part_first[1:], [run_pid.size]))
        keys = self.cluster_keys
        for f, l in zip(part_first, part_last):
            pstart = int(starts[f])
            header: dict[str, tuple[int, int]] = {}
            for r in range(f, l):
                s, e = int(starts[r]), int(ends[r])
                header[keys[int(run_kid[r])]] = (s - pstart, e - s)
            parts.append((int(run_pid[f]), pstart, int(ends[l - 1]), header))
        return order, parts

"""Progressive kNN substrate: incremental answers and calibrated stopping.

CLIMBER's routed partition order visits the most promising partitions
first, which makes ProS-style *progressive* search natural: instead of
answering only after the full adaptive budget is spent,
:meth:`~repro.core.ClimberIndex.knn_progressive` streams one
:class:`ProgressiveUpdate` per partition read — the running top-k, how
much it just improved, and how long it has been stable — and an optional
early-stopping rule decides when the answer has stabilised enough to
serve.

This module holds the query-path-independent pieces:

* :class:`ProgressiveUpdate` — one yielded state of a progressive query.
* :class:`StopRule` — a resolved stopping criterion (a stable-streak
  threshold: stop once the top-k has survived that many consecutive
  partition reads unchanged, provided k answers are in hand).
* :class:`ProgressiveCalibration` — the offline-calibrated mapping from a
  *confidence* level to a streak threshold.  Calibration replays held-out
  queries with stopping disabled and measures, for every candidate streak
  ``s``, the fraction of queries whose stop-at-``s`` answer already equals
  the full-budget answer; ``threshold_for(c)`` picks the smallest streak
  achieving fraction >= ``c``.  The artifact is JSON, persisted next to
  the index (see ``evaluation/calibration.py`` and the README workflow).
* :func:`parse_early_stop` / :func:`resolve_stop_rule` — the shared knob
  grammar: ``"off"``, ``"confidence"``, ``"confidence:0.95"``,
  ``"streak:3"`` (or a bare int), threaded through
  :class:`~repro.core.config.ClimberConfig`, the ``CLIMBER_EARLY_STOP``
  environment fallback, ``knn_progressive`` arguments and
  ``QueryService.submit``.

The stopping rule never fires before ``k`` neighbours are in hand, so an
early-stopped answer is always a *complete* (if possibly improvable)
answer set; a query against an index holding fewer than ``k`` records
simply runs to full coverage.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.index import QueryStats

__all__ = [
    "CALIBRATION_SCHEMA",
    "ProgressiveCalibration",
    "ProgressiveUpdate",
    "StopRule",
    "parse_early_stop",
    "resolve_stop_rule",
]

CALIBRATION_SCHEMA = "repro.progressive-calibration/v1"

#: Streak ceiling of the built-in prior calibration (see
#: :meth:`ProgressiveCalibration.prior`).
_PRIOR_MAX_STREAK = 24


@dataclass(frozen=True)
class ProgressiveUpdate:
    """One yielded state of a progressive kNN query.

    Every partition read (successful or skipped under degraded mode)
    produces one update carrying the running answer and its stability
    diagnostics; the final update additionally carries the full
    :class:`~repro.core.index.QueryStats` and sets :attr:`done`.  With
    early stopping disabled the final update is bit-identical — ids,
    distances, and logical DFS counters — to the equivalent
    :meth:`~repro.core.ClimberIndex.knn` call (the parity oracle).
    """

    ids: np.ndarray
    distances: np.ndarray
    k: int
    partitions_visited: int
    """Physical partitions visited so far (read, or skipped as failed)."""
    partitions_planned: int
    """Physical partitions the routed plan would visit at full coverage."""
    new_neighbors: int
    """Ids that entered the running top-k at this step."""
    kth_distance: float
    """Current k-th neighbour distance (``inf`` until k are in hand)."""
    improvement: float
    """Relative drop of the k-th distance at this step (0.0 = no change)."""
    stable_steps: int
    """Consecutive partition visits that left the top-k unchanged."""
    stability: float
    """``stable_steps / partitions_visited`` — a [0, 1) stability score."""
    done: bool
    """True only on the final update (full coverage or early stop)."""
    stopped_early: bool = False
    """True when the stopping rule fired before full coverage."""
    partitions_forgone: tuple[str, ...] = ()
    """Planned partitions never visited because the rule fired (in the
    routed order they would have been read)."""
    stats: "QueryStats | None" = None
    """Full query stats — populated on the final update only."""

    @property
    def visited_fraction(self) -> float:
        """Fraction of the routed plan actually visited (1.0 = complete)."""
        if self.partitions_planned == 0:
            return 1.0
        return self.partitions_visited / self.partitions_planned


@dataclass(frozen=True)
class StopRule:
    """A resolved early-stopping criterion for one progressive query.

    Stop once ``stable_steps >= streak`` *and* ``k`` neighbours are in
    hand *and* at least ``min_partitions`` partitions were visited.
    """

    streak: int
    kind: str = "streak"
    confidence: float | None = None
    min_partitions: int = 1

    def __post_init__(self) -> None:
        if self.streak < 1:
            raise ConfigurationError("stop-rule streak must be >= 1")
        if self.min_partitions < 1:
            raise ConfigurationError("stop-rule min_partitions must be >= 1")

    def should_stop(self, have_k: bool, visited: int, stable_steps: int) -> bool:
        return (
            have_k
            and visited >= self.min_partitions
            and stable_steps >= self.streak
        )


@dataclass(frozen=True)
class ProgressiveCalibration:
    """Offline-calibrated stability curve: streak threshold per confidence.

    ``curve`` maps every candidate streak length ``s`` to the fraction of
    calibration queries whose stop-at-``s`` answer already equalled the
    full-budget answer (measured with stopping disabled on held-out
    queries — see :func:`repro.evaluation.calibrate_early_stop`).  The
    curve is non-decreasing in ``s`` by construction, so
    :meth:`threshold_for` is a simple scan.
    """

    curve: tuple[tuple[int, float], ...]
    k: int = 0
    variant: str = "prior"
    n_queries: int = 0
    source: str = "prior"
    created: str | None = None
    schema: str = field(default=CALIBRATION_SCHEMA)

    def __post_init__(self) -> None:
        if not self.curve:
            raise ConfigurationError("calibration curve must be non-empty")
        streaks = [int(s) for s, _ in self.curve]
        if streaks != sorted(streaks) or len(set(streaks)) != len(streaks):
            raise ConfigurationError(
                "calibration curve streaks must be strictly increasing"
            )
        for _, frac in self.curve:
            if not 0.0 <= frac <= 1.0:
                raise ConfigurationError(
                    "calibration curve fractions must be in [0, 1]"
                )

    @property
    def max_streak(self) -> int:
        return int(self.curve[-1][0])

    def threshold_for(self, confidence: float) -> int:
        """Smallest streak whose calibrated agreement reaches ``confidence``.

        When no calibrated streak reaches it, the conservative answer is
        one past the largest calibrated streak — on most queries that
        disables early stopping rather than over-promise.
        """
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {confidence!r}"
            )
        for streak, frac in self.curve:
            if frac >= confidence:
                return int(streak)
        return self.max_streak + 1

    @classmethod
    def prior(cls) -> "ProgressiveCalibration":
        """The built-in conservative prior used before offline calibration.

        Models each further partition visit as improving the top-k with
        probability 1/2 (a pessimistic prior for a promise-ordered plan):
        after ``s`` stable visits the chance any improvement remains is
        ``0.5 ** s``, so ``threshold_for(c)`` resolves to the smallest
        ``s`` with ``1 - 0.5 ** s >= c`` (0.9 -> 4, 0.99 -> 7).  Offline
        calibration replaces this with measured behaviour.
        """
        curve = tuple(
            (s, 1.0 - 0.5 ** s) for s in range(1, _PRIOR_MAX_STREAK + 1)
        )
        return cls(curve=curve)

    # -- persistence -------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "curve": [[int(s), float(f)] for s, f in self.curve],
                "k": self.k,
                "variant": self.variant,
                "n_queries": self.n_queries,
                "source": self.source,
                "created": self.created,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ProgressiveCalibration":
        data = json.loads(payload)
        if data.get("schema") != CALIBRATION_SCHEMA:
            raise ConfigurationError(
                f"unknown calibration schema {data.get('schema')!r}"
            )
        return cls(
            curve=tuple((int(s), float(f)) for s, f in data["curve"]),
            k=int(data.get("k", 0)),
            variant=str(data.get("variant", "prior")),
            n_queries=int(data.get("n_queries", 0)),
            source=str(data.get("source", "prior")),
            created=data.get("created"),
        )

    def save(self, path: str | Path) -> Path:
        """Persist the calibration artifact next to the index it serves."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ProgressiveCalibration":
        return cls.from_json(Path(path).read_text())


def parse_early_stop(spec: object) -> tuple[str, float | int | None]:
    """Parse an early-stop knob into ``(kind, value)``.

    Grammar (shared by :class:`~repro.core.config.ClimberConfig`, the
    ``CLIMBER_EARLY_STOP`` environment variable, ``knn_progressive``
    arguments and ``QueryService.submit``):

    * ``"off"`` — never stop early -> ``("off", None)``
    * ``"confidence"`` — calibrated stop at the caller's confidence
      -> ``("confidence", None)``
    * ``"confidence:0.95"`` -> ``("confidence", 0.95)``
    * ``"streak:3"`` or a bare ``int`` — raw streak threshold
      -> ``("streak", 3)``
    """
    if isinstance(spec, bool):
        raise ConfigurationError(f"invalid early_stop spec {spec!r}")
    if isinstance(spec, int):
        if spec < 1:
            raise ConfigurationError("early_stop streak must be >= 1")
        return ("streak", spec)
    if not isinstance(spec, str):
        raise ConfigurationError(f"invalid early_stop spec {spec!r}")
    text = spec.strip().lower()
    if text == "off":
        return ("off", None)
    if text == "confidence":
        return ("confidence", None)
    if text.startswith("confidence:"):
        try:
            value = float(text.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"invalid early_stop confidence in {spec!r}"
            ) from None
        if not 0.0 < value < 1.0 or not math.isfinite(value):
            raise ConfigurationError(
                f"early_stop confidence must be in (0, 1), got {value!r}"
            )
        return ("confidence", value)
    if text.startswith("streak:"):
        try:
            value = int(text.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"invalid early_stop streak in {spec!r}"
            ) from None
        if value < 1:
            raise ConfigurationError("early_stop streak must be >= 1")
        return ("streak", value)
    raise ConfigurationError(
        f"early_stop must be 'off', 'confidence[:c]', 'streak:n' or an "
        f"int, got {spec!r}"
    )


def resolve_stop_rule(
    spec: object,
    default_confidence: float,
    calibration: ProgressiveCalibration | None,
) -> StopRule | None:
    """Resolve a knob value into a :class:`StopRule` (or ``None`` = off).

    ``"confidence"`` mode consults ``calibration`` when one is attached
    and falls back to :meth:`ProgressiveCalibration.prior` otherwise, so
    the knob is usable before offline calibration has run (the prior is
    deliberately conservative).
    """
    kind, value = parse_early_stop(spec)
    if kind == "off":
        return None
    if kind == "streak":
        return StopRule(streak=int(value), kind="streak")
    confidence = float(value) if value is not None else default_confidence
    cal = calibration if calibration is not None else ProgressiveCalibration.prior()
    return StopRule(
        streak=cal.threshold_for(confidence),
        kind="confidence",
        confidence=confidence,
    )

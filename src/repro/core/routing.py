"""Vectorised query-time routing engine (Algorithm 3 lines 5-19).

Routing a query means comparing its P4 signature against *every* group
centroid — Overlap Distance to find the best-matching groups, Weight
Distance to break ties.  Done naively that is O(groups) Python set algebra
per query; at paper scale (hundreds of groups, heavy query traffic) it
dominates single-query latency.

:class:`RoutingTable` precomputes, once per :class:`~repro.core.index.ClimberIndex`
(and again on ``reopen``, which goes through the same constructor):

* packed uint64 centroid bitsets (:func:`repro.pivots.pack_pivot_sets`),
* the fall-back mask and per-group metadata arrays,
* the decay-weight vector and its total weight,

so that routing one query — or a whole batch — is a handful of NumPy
calls over :func:`repro.pivots.routing_distances`.  The engine is
*parity-exact* with the scalar path it replaced: identical OD/WD values
bit-for-bit, identical candidate ordering (OD → WD → group id) and the
same tie-break cascade (WD → path length → node size → seeded random,
consuming the RNG stream identically).  The seed implementation is kept
below as :func:`scalar_group_candidates` / :func:`scalar_select_primary`
for property tests and before/after benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.skeleton import GroupEntry, IndexSkeleton
from repro.core.trie import TrieNode
from repro.exceptions import ConfigurationError
from repro.pivots import (
    overlap_distance,
    overlap_distance_matrix,
    pack_pivot_sets,
    routing_distances,
    total_weight,
    wd_tie_tolerance,
    weight_distance,
    weight_distance_matrix,
    words_for,
)

__all__ = [
    "GroupCandidate",
    "RoutingTable",
    "select_primary",
    "scalar_group_candidates",
    "scalar_select_primary",
]


@dataclass(frozen=True)
class GroupCandidate:
    """One group considered during routing, with its match diagnostics."""

    entry: GroupEntry
    od: int
    wd: float
    path: tuple[TrieNode, ...]

    @property
    def gn(self) -> TrieNode:
        """The deepest trie node reached by the query (Node GN)."""
        return self.path[-1]

    @property
    def path_len(self) -> int:
        return self.gn.depth


class RoutingTable:
    """Precomputed arrays that make group routing a few NumPy ops.

    Parameters
    ----------
    skeleton:
        The index skeleton whose groups are routed over.
    weights:
        ``(m,)`` decay weights of Def. 9 (the index's configured decay).
    """

    def __init__(self, skeleton: IndexSkeleton, weights: np.ndarray) -> None:
        self.skeleton = skeleton
        # CSR-compiled tries: trie walks during candidate construction (and
        # the covering-partition lookups in the query pipeline) read flat
        # arrays instead of chasing TrieNode children dicts.
        self.flat = skeleton.flat_router()
        m = skeleton.prefix_length
        self.prefix_length = m
        self.n_pivots = skeleton.n_pivots
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != (m,):
            raise ConfigurationError("weights length must equal prefix_length")
        self.total_weight = total_weight(self.weights)
        self.n_groups = len(skeleton.groups)
        self.fallback_mask = skeleton.fallback_mask()
        self.real_indices = np.flatnonzero(~self.fallback_mask)
        centroids = skeleton.centroid_matrix()
        if centroids.size:
            self.packed_centroids = pack_pivot_sets(centroids, self.n_pivots)
        else:
            self.packed_centroids = np.zeros(
                (0, words_for(self.n_pivots)), dtype=np.uint64
            )
        # Group index -> row in the packed centroid matrix.
        self._centroid_row = np.full(self.n_groups, -1, dtype=np.int64)
        self._centroid_row[self.real_indices] = np.arange(
            self.real_indices.size
        )
        # Python-int mirrors of the bitsets and weights for the
        # single-query path, where fixed NumPy call overhead would exceed
        # the actual work (a handful of 64-bit words per centroid).
        self._n_words = words_for(self.n_pivots)
        self._centroid_ints = [
            int(sum(int(word) << (64 * w) for w, word in enumerate(row)))
            for row in self.packed_centroids
        ]
        self._weights_list = [float(w) for w in self.weights]

    # -- distance matrices -------------------------------------------------------

    def _check(self, ranked: np.ndarray) -> np.ndarray:
        arr = np.asarray(ranked, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.prefix_length:
            raise ConfigurationError(
                f"expected (q, {self.prefix_length}) ranked signatures"
            )
        return arr

    def _pack_one(self, sig_row) -> np.ndarray:
        """Pack one signature into a ``(words,)`` uint64 bitset row."""
        acc = 0
        for p in sig_row:
            acc |= 1 << int(p)
        mask = (1 << 64) - 1
        return np.array(
            [(acc >> (64 * w)) & mask for w in range(self._n_words)],
            dtype=np.uint64,
        )

    def od_matrix(self, ranked: np.ndarray) -> np.ndarray:
        """``(q, n_groups)`` Overlap Distances for a batch of signatures.

        Fall-back groups get OD ``m`` (no overlap by definition), exactly
        as the scalar path scored them.
        """
        arr = self._check(ranked)
        od = np.full(
            (arr.shape[0], self.n_groups), self.prefix_length, dtype=np.int64
        )
        if self.real_indices.size:
            if arr.shape[0] == 1:
                inter = np.bitwise_count(
                    self.packed_centroids & self._pack_one(arr[0])
                ).sum(axis=1)
                od[0, self.real_indices] = self.prefix_length - inter
            else:
                packed = pack_pivot_sets(np.sort(arr, axis=1), self.n_pivots)
                od[:, self.real_indices] = overlap_distance_matrix(
                    packed, self.packed_centroids, self.prefix_length
                ).astype(np.int64)
        return od

    def wd_matrix(self, ranked: np.ndarray) -> np.ndarray:
        """``(q, n_groups)`` Weight Distances; Total Weight at fall-backs."""
        arr = self._check(ranked)
        wd = np.full(
            (arr.shape[0], self.n_groups), self.total_weight, dtype=np.float64
        )
        if self.real_indices.size:
            wd[:, self.real_indices] = weight_distance_matrix(
                arr, self.packed_centroids, self.n_pivots, self.weights
            )
        return wd

    def distance_matrices(
        self, ranked: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(q, n_groups)`` OD and WD matrices for a batch of signatures."""
        arr = self._check(ranked)
        q = arr.shape[0]
        od = np.full((q, self.n_groups), self.prefix_length, dtype=np.int64)
        wd = np.full((q, self.n_groups), self.total_weight, dtype=np.float64)
        if self.real_indices.size:
            od_real, wd_real = routing_distances(
                arr, self.packed_centroids, self.n_pivots, self.weights
            )
            od[:, self.real_indices] = od_real
            wd[:, self.real_indices] = wd_real
        return od, wd

    # -- candidate selection -----------------------------------------------------

    def candidates(
        self,
        ranked_sig: np.ndarray,
        od_row: np.ndarray,
        wd_row: np.ndarray | None = None,
        od_slack: int = 0,
    ) -> list[GroupCandidate]:
        """Groups at (or near) the smallest OD, ordered by (OD, WD, id).

        ``od_row`` (and optionally ``wd_row``) are one row of the distance
        matrices.  When ``wd_row`` is omitted — the single-query path —
        Weight Distances are computed lazily for just the chosen groups,
        which is where the scalar path spent most of its time; a batch
        passes the precomputed full row instead.  Only the (few) chosen
        groups pay for a Python trie walk.
        """
        sig = tuple(int(p) for p in ranked_sig)
        m = self.prefix_length
        groups = self.skeleton.groups
        best = int(od_row[1:].min()) if self.n_groups > 1 else m
        if best >= m:
            chosen = [0]
            wds = [self.total_weight]
        else:
            limit = min(best + od_slack, m - 1)
            chosen = np.flatnonzero(
                (od_row <= limit) & ~self.fallback_mask
            ).tolist()
            if wd_row is None:
                # Rank-ordered accumulation over the centroid bitset: the
                # same additions, in the same order, as the scalar
                # weight_distance — bit-identical, no array overhead.
                wds = []
                for i in chosen:
                    bits = self._centroid_ints[int(self._centroid_row[i])]
                    matched = 0.0
                    for p, w in zip(sig, self._weights_list):
                        if (bits >> p) & 1:
                            matched += w
                    wds.append(self.total_weight - matched)
            else:
                wds = [float(wd_row[i]) for i in chosen]
        out = []
        flat_tries = self.flat.tries
        for i, wd in zip(chosen, wds):
            g = groups[i]
            path = flat_tries[i].descend_path_nodes(sig)
            out.append(GroupCandidate(g, int(od_row[i]), wd, path))
        out.sort(key=lambda c: (c.od, c.wd, c.entry.group_id))
        return out


def select_primary(
    candidates: list[GroupCandidate],
    rng: np.random.Generator,
    wd_tol: float | None = None,
) -> GroupCandidate:
    """Tie-breaking of Algorithm 3 lines 7-19: WD, path length, node size.

    Only groups at the strictly smallest OD compete for primary; slack
    candidates exist purely for adaptive expansion.  Consumes one RNG draw
    iff the full cascade still leaves a tie — the same stream positions as
    the scalar implementation.

    ``wd_tol`` is the WD tie tolerance; callers that know the Total Weight
    pass :func:`repro.pivots.wd_tie_tolerance` of it, otherwise the
    tolerance is anchored to the candidates' own WD scale (which reduces
    to the historical absolute ``1e-12`` for unit-scale decay weights).
    """
    if not candidates:
        raise ConfigurationError("no candidate groups")
    # Candidate lists are tiny (usually 1-3 entries), so plain list
    # filtering beats array construction here; the heavy lifting already
    # happened in the OD/WD matrices these values came from.
    if wd_tol is None:
        wd_tol = wd_tie_tolerance(max(abs(c.wd) for c in candidates))
    best_od = min(c.od for c in candidates)
    tied = [c for c in candidates if c.od == best_od]
    best_wd = min(c.wd for c in tied)
    tied = [c for c in tied if c.wd <= best_wd + wd_tol]
    if len(tied) > 1:
        longest = max(c.path_len for c in tied)
        tied = [c for c in tied if c.path_len == longest]
    if len(tied) > 1:
        largest = max(c.gn.count for c in tied)
        tied = [c for c in tied if c.gn.count == largest]
    if len(tied) > 1:
        return tied[int(rng.integers(0, len(tied)))]
    return tied[0]


# ---------------------------------------------------------------------------
# Scalar reference path (the seed implementation), kept for parity tests
# and the before/after throughput benchmark.
# ---------------------------------------------------------------------------

def scalar_group_candidates(
    index, ranked_sig: np.ndarray, od_slack: int = 0
) -> list[GroupCandidate]:
    """Per-group Python-set routing — the pre-vectorisation reference."""
    sig = tuple(int(p) for p in ranked_sig)
    unranked = tuple(sorted(sig))
    m = index.config.prefix_length
    skeleton = index.skeleton
    weights = index.routing.weights
    ods = [
        overlap_distance(unranked, g.centroid) if not g.is_fallback else m
        for g in skeleton.groups
    ]
    best = min(ods[1:]) if len(ods) > 1 else m
    if best >= m:
        chosen = [(skeleton.groups[0], m)]
    else:
        limit = min(best + od_slack, m - 1)
        chosen = [
            (g, od) for g, od in zip(skeleton.groups, ods)
            if od <= limit and not g.is_fallback
        ]
    out = []
    for g, od in chosen:
        wd = (
            weight_distance(sig, g.centroid, weights)
            if g.centroid
            else float(np.sum(weights))
        )
        path = tuple(g.trie.descend_path(sig))
        out.append(GroupCandidate(g, od, wd, path))
    out.sort(key=lambda c: (c.od, c.wd, c.entry.group_id))
    return out


# The seed's tie-break cascade survives unchanged as the live
# select_primary: it operates on the handful of candidates the matrices
# produce, where list filtering already beats any array formulation.
scalar_select_primary = select_primary

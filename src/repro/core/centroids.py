"""Data-driven computation of group centroids (Algorithm 2).

Input: the aggregated list ``[(P4-/-> signature, frequency)]`` from
construction Step 2.  The algorithm walks the list in descending frequency
order and keeps a signature as a new centroid when it is (a) far enough
(Overlap Distance >= epsilon) from every centroid chosen so far and (b)
expected to anchor a group bigger than the storage capacity.  Because the
statistics come from an ``alpha`` sample, the capacity threshold is scaled
by ``alpha``.

Centroids are *virtual*: they carry only rank-insensitive signatures
(Section IV-C), which is why the Weight Distance of Def. 11 exists at all.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.pivots import overlap_distance

__all__ = ["compute_centroids", "FALLBACK_CENTROID"]

FALLBACK_CENTROID: tuple[int, ...] = ()
"""The special ``<*,*,...>`` centroid of group G0 (Algorithm 2 line 17):
data series overlapping no real centroid fall back to it.  Represented as
an empty pivot set."""


def compute_centroids(
    signatures: Sequence[tuple[int, ...]],
    frequencies: Sequence[int],
    *,
    sample_fraction: float,
    capacity: int,
    epsilon: int,
    max_centroids: int | None = None,
) -> list[tuple[int, ...]]:
    """Algorithm 2: select group centroids from sampled signature statistics.

    Parameters
    ----------
    signatures:
        Distinct rank-insensitive signatures observed in the sample.
    frequencies:
        Occurrence count of each signature (same order).
    sample_fraction:
        ``alpha`` as a fraction in (0, 1].
    capacity:
        Storage capacity constraint ``c`` in records (full-data scale).
    epsilon:
        Minimum Overlap Distance between any two selected centroids.
    max_centroids:
        Optional stopping criterion.

    Returns
    -------
    list of tuple
        Selected centroid signatures, ordered by selection (most frequent
        first).  The fall-back centroid is *not* included; callers place it
        at group index 0 themselves.
    """
    if len(signatures) != len(frequencies):
        raise ConfigurationError("signatures and frequencies length mismatch")
    if not signatures:
        return []
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigurationError("sample_fraction must be in (0, 1]")
    if capacity < 1:
        raise ConfigurationError("capacity must be >= 1")

    # Line 2: sort descending by frequency; ties broken lexicographically
    # by signature so the selection is deterministic.
    order = sorted(
        range(len(signatures)), key=lambda i: (-int(frequencies[i]), signatures[i])
    )
    sigs = [tuple(signatures[i]) for i in order]
    freqs = [int(frequencies[i]) for i in order]
    total_freq = sum(freqs)

    selected: list[tuple[int, ...]] = [sigs[0]]  # line 3
    selected_freq = freqs[0]
    size_threshold = sample_fraction * capacity  # line 12: alpha * c

    for i in range(1, len(sigs)):
        if max_centroids is not None and len(selected) >= max_centroids:
            break  # lines 15-16
        # Lines 5-9: skip candidates too close to an existing centroid.
        if any(overlap_distance(sigs[i], c) < epsilon for c in selected):
            continue
        # Lines 10-12: estimate the candidate group's size assuming the
        # remaining (non-centroid) mass spreads uniformly over the groups.
        remaining = total_freq - selected_freq - freqs[i]
        size_est = freqs[i] + remaining / (len(selected) + 1)
        if size_est < size_threshold:
            break  # line 13: later candidates are rarer still
        selected.append(sigs[i])  # line 14
        selected_freq += freqs[i]
    return selected

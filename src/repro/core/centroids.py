"""Data-driven computation of group centroids (Algorithm 2).

Input: the aggregated list ``[(P4-/-> signature, frequency)]`` from
construction Step 2.  The algorithm walks the list in descending frequency
order and keeps a signature as a new centroid when it is (a) far enough
(Overlap Distance >= epsilon) from every centroid chosen so far and (b)
expected to anchor a group bigger than the storage capacity.  Because the
statistics come from an ``alpha`` sample, the capacity threshold is scaled
by ``alpha``.

Centroids are *virtual*: they carry only rank-insensitive signatures
(Section IV-C), which is why the Weight Distance of Def. 11 exists at all.

The epsilon-separation scan runs on packed pivot bitsets: every candidate
is packed once (:func:`repro.pivots.pack_pivot_sets`) and tested against
the incrementally-extended selected set with one AND+popcount sweep,
replacing the O(candidates x selected) tuple-wise ``overlap_distance``
loop.  The tuple-wise implementation is retained as
:func:`compute_centroids_reference` — the parity oracle of
``tests/test_conversion_parity.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pivots import overlap_distance, pack_pivot_sets

__all__ = [
    "compute_centroids",
    "compute_centroids_reference",
    "FALLBACK_CENTROID",
]

FALLBACK_CENTROID: tuple[int, ...] = ()
"""The special ``<*,*,...>`` centroid of group G0 (Algorithm 2 line 17):
data series overlapping no real centroid fall back to it.  Represented as
an empty pivot set."""


def _descending_order(
    signatures: Sequence[tuple[int, ...]], frequencies: Sequence[int]
) -> tuple[list[tuple[int, ...]], list[int], int]:
    """Line 2: sort descending by frequency; frequency ties broken
    lexicographically by signature so the selection is deterministic."""
    order = sorted(
        range(len(signatures)), key=lambda i: (-int(frequencies[i]), signatures[i])
    )
    sigs = [tuple(signatures[i]) for i in order]
    freqs = [int(frequencies[i]) for i in order]
    return sigs, freqs, sum(freqs)


def _validate(
    signatures: Sequence[tuple[int, ...]],
    frequencies: Sequence[int],
    sample_fraction: float,
    capacity: int,
) -> None:
    if len(signatures) != len(frequencies):
        raise ConfigurationError("signatures and frequencies length mismatch")
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigurationError("sample_fraction must be in (0, 1]")
    if capacity < 1:
        raise ConfigurationError("capacity must be >= 1")


def compute_centroids(
    signatures: Sequence[tuple[int, ...]],
    frequencies: Sequence[int],
    *,
    sample_fraction: float,
    capacity: int,
    epsilon: int,
    max_centroids: int | None = None,
    n_pivots: int | None = None,
) -> list[tuple[int, ...]]:
    """Algorithm 2: select group centroids from sampled signature statistics.

    Parameters
    ----------
    signatures:
        Distinct rank-insensitive signatures observed in the sample.
    frequencies:
        Occurrence count of each signature (same order).
    sample_fraction:
        ``alpha`` as a fraction in (0, 1].
    capacity:
        Storage capacity constraint ``c`` in records (full-data scale).
    epsilon:
        Minimum Overlap Distance between any two selected centroids.
    max_centroids:
        Optional stopping criterion.
    n_pivots:
        Total pivot count ``r`` (the bitset width of the packed scan).
        Defaults to ``max pivot id + 1``; the builder passes its configured
        ``r`` so the packing matches the assigner's.

    Returns
    -------
    list of tuple
        Selected centroid signatures, ordered by selection (most frequent
        first).  The fall-back centroid is *not* included; callers place it
        at group index 0 themselves.
    """
    _validate(signatures, frequencies, sample_fraction, capacity)
    if not signatures:
        return []
    lengths = {len(s) for s in signatures}
    if len(lengths) != 1:
        # Mixed prefix lengths cannot be packed into one matrix; the
        # tuple-wise scan raises on the first cross-length comparison,
        # exactly as Def. 7 demands.
        return compute_centroids_reference(
            signatures,
            frequencies,
            sample_fraction=sample_fraction,
            capacity=capacity,
            epsilon=epsilon,
            max_centroids=max_centroids,
        )
    m = lengths.pop()

    sigs, freqs, total_freq = _descending_order(signatures, frequencies)
    sig_arr = np.asarray(sigs, dtype=np.int64)
    width = int(n_pivots) if n_pivots is not None else int(sig_arr.max()) + 1
    packed = pack_pivot_sets(sig_arr, width)

    # The selected set as a growing packed matrix: row ``i`` of ``selected_bits``
    # is the i-th chosen centroid's bitset.
    selected: list[tuple[int, ...]] = [sigs[0]]  # line 3
    selected_bits = np.empty((len(sigs), packed.shape[1]), dtype=np.uint64)
    selected_bits[0] = packed[0]
    selected_freq = freqs[0]
    size_threshold = sample_fraction * capacity  # line 12: alpha * c

    for i in range(1, len(sigs)):
        if max_centroids is not None and len(selected) >= max_centroids:
            break  # lines 15-16
        # Lines 5-9: skip candidates too close to an existing centroid —
        # one AND + popcount sweep over the selected bitsets; the smallest
        # OD is m minus the largest intersection.
        inter = np.bitwise_count(
            selected_bits[: len(selected)] & packed[i]
        ).sum(axis=1, dtype=np.int64)
        if m - int(inter.max()) < epsilon:
            continue
        # Lines 10-12: estimate the candidate group's size assuming the
        # remaining (non-centroid) mass spreads uniformly over the groups.
        remaining = total_freq - selected_freq - freqs[i]
        size_est = freqs[i] + remaining / (len(selected) + 1)
        if size_est < size_threshold:
            break  # line 13: later candidates are rarer still
        selected_bits[len(selected)] = packed[i]
        selected.append(sigs[i])  # line 14
        selected_freq += freqs[i]
    return selected


def compute_centroids_reference(
    signatures: Sequence[tuple[int, ...]],
    frequencies: Sequence[int],
    *,
    sample_fraction: float,
    capacity: int,
    epsilon: int,
    max_centroids: int | None = None,
) -> list[tuple[int, ...]]:
    """The retained tuple-wise Algorithm 2 (parity oracle / baseline).

    Semantics-identical to :func:`compute_centroids`; the epsilon scan is
    the original O(candidates x selected) ``overlap_distance`` loop.
    """
    _validate(signatures, frequencies, sample_fraction, capacity)
    if not signatures:
        return []
    sigs, freqs, total_freq = _descending_order(signatures, frequencies)

    selected: list[tuple[int, ...]] = [sigs[0]]  # line 3
    selected_freq = freqs[0]
    size_threshold = sample_fraction * capacity  # line 12: alpha * c

    for i in range(1, len(sigs)):
        if max_centroids is not None and len(selected) >= max_centroids:
            break  # lines 15-16
        # Lines 5-9: skip candidates too close to an existing centroid.
        if any(overlap_distance(sigs[i], c) < epsilon for c in selected):
            continue
        # Lines 10-12: estimate the candidate group's size assuming the
        # remaining (non-centroid) mass spreads uniformly over the groups.
        remaining = total_freq - selected_freq - freqs[i]
        size_est = freqs[i] + remaining / (len(selected) + 1)
        if size_est < size_threshold:
            break  # line 13: later candidates are rarer still
        selected.append(sigs[i])  # line 14
        selected_freq += freqs[i]
    return selected

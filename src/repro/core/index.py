"""The CLIMBER index and its query algorithms (Section VI).

:class:`ClimberIndex` is the public entry point of this library: build it
over a :class:`~repro.series.SeriesDataset` and issue approximate kNN
queries with any of the paper's three variants:

* ``variant="knn"`` — CLIMBER-kNN (Algorithm 3): route to the single best
  trie node, search its partition(s), expand within the same partition if
  the node holds fewer than k records.
* ``variant="adaptive"`` — CLIMBER-kNN-Adaptive: when the best node is
  smaller than k, expand over the memorised runner-up trie nodes across
  the best-matching groups, capped at ``adaptive_factor`` times the
  partitions CLIMBER-kNN would touch (2X and 4X in the paper).
* ``variant="od-smallest"`` — the OD-Smallest comparator of §VII-C: scan
  every partition of every group tied at the smallest Overlap Distance.

Query pipeline
--------------
A query flows through four stages:

1. **Signature** — PAA transform + pivot permutation prefix
   (:meth:`ClimberIndex.query_signature`); batched over all rows of a
   :meth:`ClimberIndex.knn_batch` call.
2. **Routing** — OD/WD against every group centroid via the vectorised
   :class:`~repro.core.routing.RoutingTable` (built once per index,
   rebuilt by :meth:`ClimberIndex.reopen`); one ``(q, groups)`` matrix
   serves a whole batch.
3. **Node selection** — the per-variant trie-node expansion.
4. **Record scan** — partition loads (served from the DFS read cache
   when enabled) and a brute-force refinement over the candidate records.

Simulated cost accounting charges *logical* partition touches, so the
paper's access-volume metrics are independent of any caching.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cluster import (
    ClusterSimulator,
    CostModel,
    SimReport,
    TaskCost,
    ops_euclidean,
    ops_paa,
    ops_signature,
)
from repro.core.assignment import GroupAssigner
from repro.core.builder import BuildArtifacts, build_index_artifacts
from repro.core.config import ClimberConfig
from repro.core.parallel import SerialExecutor, make_executor, split_ranges
from repro.core.progressive import (
    ProgressiveCalibration,
    ProgressiveUpdate,
    StopRule,
    resolve_stop_rule,
)
from repro.core.routing import GroupCandidate, RoutingTable
from repro.core.routing import select_primary as _select_primary
from repro.core.skeleton import (
    GroupEntry,
    SkeletonWithPivots,
    partition_name,
)
from repro.core.trie import TrieNode
from repro.exceptions import (
    ConfigurationError,
    PartitionNotFoundError,
    StorageError,
)
from repro.obs import (
    NULL_TELEMETRY,
    OBS_SCHEMA,
    QueryProbe,
    Telemetry,
    global_registry,
)
from repro.pivots import decay_weights, permutation_prefixes, wd_tie_tolerance
from repro.series import (
    SeriesDataset,
    knn_bruteforce,
    knn_merge,
    paa_transform,
    series_nbytes,
)

__all__ = [
    "ClimberIndex",
    "ProgressiveUpdate",
    "QueryResult",
    "QueryStats",
    "GroupCandidate",
]

_QUERY_SHARD_ROWS = 8
"""Rows per ``knn_batch`` shard.  Fixed by row count — never by worker
count — so the task list (and with it every deterministic per-shard
result) is identical for any ``n_workers``; 8 rows amortise task overhead
while a typical benchmark batch still yields enough shards to fill a
pool."""


@dataclass(frozen=True)
class QueryStats:
    """Diagnostics of one kNN query (metrics of Figs. 7, 9, 11, 12)."""

    variant: str
    k: int
    best_od: int
    group_ids: tuple[int, ...]
    path_len: int
    gn_size: float
    n_selected_nodes: int
    partitions_loaded: tuple[str, ...]
    data_bytes: int
    records_examined: int
    expanded_within_partition: bool
    sim_seconds: float
    wall_seconds: float
    partitions_failed: tuple[str, ...] = ()
    """Partitions the query *wanted* but could not read — non-empty only
    under ``on_partition_failure="skip"`` with live storage faults."""
    partitions_forgone: tuple[str, ...] = ()
    """Planned partitions a *progressive* query deliberately never visited
    because its early-stopping rule fired (always empty for ``knn``/
    ``knn_batch`` and for progressive runs that reached full coverage)."""

    @property
    def n_partitions(self) -> int:
        return len(self.partitions_loaded)

    @property
    def degraded(self) -> bool:
        """True when the answer was computed without some partitions."""
        return bool(self.partitions_failed)

    @property
    def coverage(self) -> float:
        """Fraction of wanted partitions actually read (1.0 = complete).

        A query that wanted nothing (its routed plan resolved to zero
        physical partitions — possible for an empty index or when every
        planned partition was never materialised) is complete by
        definition: coverage is 1.0, never a zero-denominator error.
        Forgone partitions (early stopping) do not count against
        coverage — they were skipped by choice, not lost; see
        :attr:`visit_coverage` for the dial that includes them.
        """
        total = len(self.partitions_loaded) + len(self.partitions_failed)
        if total == 0:
            return 1.0
        return len(self.partitions_loaded) / total

    @property
    def visit_coverage(self) -> float:
        """Fraction of the *planned* partitions actually visited.

        Counts early-stop forgone partitions against the denominator, so
        a progressive answer served at 40% of its plan reports 0.4 here
        while :attr:`coverage` (failures only) may still be 1.0.  Defined
        as 1.0 when the plan was empty.
        """
        total = (
            len(self.partitions_loaded)
            + len(self.partitions_failed)
            + len(self.partitions_forgone)
        )
        if total == 0:
            return 1.0
        return (
            len(self.partitions_loaded) + len(self.partitions_failed)
        ) / total


@dataclass(frozen=True)
class QueryResult:
    """Approximate kNN answer set plus query diagnostics."""

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats


class ClimberIndex:
    """A built CLIMBER index over one data series dataset."""

    def __init__(self, artifacts: BuildArtifacts, config: ClimberConfig,
                 model: CostModel, telemetry: Telemetry | None = None) -> None:
        self._art = artifacts
        self.config = config
        self.model = model
        self._rng = np.random.default_rng(config.seed + 1)
        self._weights = decay_weights(
            config.prefix_length, config.decay, config.decay_rate
        )
        self._routing = RoutingTable(artifacts.skeleton, self._weights)
        #: Offline-calibrated early-stopping curve (progressive queries).
        #: ``None`` until :meth:`attach_calibration` loads one; confidence
        #: mode then falls back to the conservative built-in prior.
        self.calibration: ProgressiveCalibration | None = None
        # Telemetry resolution: an explicit argument wins; else adopt the
        # build's telemetry (so build.* and query.* metrics share one
        # registry); else create one per index from config.telemetry —
        # never the shared NULL_TELEMETRY singleton, so stats()/
        # reset_stats() always scope to this index.
        if telemetry is not None:
            self._tel = telemetry
        elif artifacts.telemetry is not NULL_TELEMETRY:
            self._tel = artifacts.telemetry
        else:
            self._tel = Telemetry(
                enabled=config.telemetry,
                sample_every=config.telemetry_sample_every,
            )

    @property
    def telemetry(self) -> Telemetry:
        """This index's telemetry (latency recording honours ``.enabled``)."""
        return self._tel

    @telemetry.setter
    def telemetry(self, telemetry: Telemetry) -> None:
        self._tel = telemetry

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: SeriesDataset,
        config: ClimberConfig | None = None,
        dfs=None,
        model: CostModel | None = None,
        conversion: str = "fused",
        telemetry: Telemetry | None = None,
    ) -> "ClimberIndex":
        """Build the index (paper Fig. 6); see :class:`ClimberConfig`.

        ``conversion`` selects the Step-4 signature-conversion pipeline
        (``"fused"`` streamed blocks / ``"legacy"`` per-chunk reference);
        both yield bit-identical indexes — see
        :func:`~repro.core.builder.build_index_artifacts`.  ``telemetry``
        overrides the :class:`~repro.obs.Telemetry` the build and the
        returned index record into (default: created from
        ``config.telemetry``).
        """
        config = config or ClimberConfig()
        model = model or CostModel()
        artifacts = build_index_artifacts(
            dataset, config, dfs=dfs, model=model, conversion=conversion,
            telemetry=telemetry,
        )
        return cls(artifacts, config, model)

    # -- incremental maintenance ------------------------------------------------

    def _delta_names(self, base_name: str) -> list[str]:
        """Delta partitions of ``base_name``, discovered by naming convention.

        Appends write ``<base>.d0``, ``<base>.d1``, ... so no registry has
        to be persisted: a reopened index finds deltas by listing the DFS.
        A DFS exposing ``delta_partitions`` (the :class:`SimulatedDFS`
        registry cache) answers from its index instead of rescanning the
        full partition list on every query.
        """
        delta_partitions = getattr(self.dfs, "delta_partitions", None)
        if delta_partitions is not None:
            return delta_partitions(base_name)
        prefix = f"{base_name}.d"
        return [p for p in self.dfs.list_partitions() if p.startswith(prefix)]

    def append(self, dataset: SeriesDataset) -> dict[str, object]:
        """Route new records into the existing index (incremental append).

        The paper motivates CLIMBER with sources that generate series
        continuously (ECG devices, weblogs); this routes a new batch
        through the *frozen* skeleton — same pivots, same groups, same
        tries — into fresh *delta* partition files next to the originals.
        Queries transparently read base + delta partitions, and the
        convention-based delta naming survives :meth:`reopen`.

        The skeleton is not rebalanced: like the paper's unseen-signature
        handling, records that cannot complete a root-to-leaf walk land in
        their group's default partition.  Periodic full rebuilds remain the
        answer to heavy drift.

        Returns a summary dict (records appended, partitions written,
        simulated seconds).
        """
        existing = self.dfs.list_partitions()
        if existing:
            # Header metadata when the DFS maintains it (no payload read,
            # no logical read charge for a mere length check).
            series_length = getattr(self.dfs, "series_length", None)
            if series_length is not None:
                base_length = series_length(existing[0])
            else:
                base_length = self.dfs.read_partition(existing[0]).series_length
            if dataset.length != base_length:
                raise ConfigurationError(
                    f"appended series length {dataset.length} != indexed "
                    f"length {base_length}"
                )
        cfg = self.config
        sim = ClusterSimulator(self.model)
        scale = cfg.cost_scale
        paa = paa_transform(dataset.values, cfg.word_length)
        ranked = permutation_prefixes(paa, self._art.pivots, cfg.prefix_length)
        gids = self._art.assigner.assign(ranked).group_indices

        # Batch route through the frozen skeleton's CSR-compiled tries —
        # the same bulk pipeline construction Step 4 uses: one descend
        # sweep per group present in the batch, one stable lexsort into
        # final cluster layout, partitions written straight from array
        # slices.  Records whose walk stalls (or reaches an unpacked leaf)
        # land in their group's default partition, as before.
        router = self._art.skeleton.flat_router()
        kid_of = router.route(ranked, gids)
        order, parts = router.partition_layout(kid_of)

        written = []
        written_bytes = 0
        for pid, start, end, header in parts:
            base = partition_name(pid)
            seq = len(self._delta_names(base))
            delta_id = f"{base}.d{seq}"
            written_bytes += self.dfs.write_partition_arrays(
                delta_id, dataset.ids, dataset.values, header,
                rows=order[start:end],
            )
            written.append(delta_id)

        sig_ops = ops_paa(dataset.length) + ops_signature(
            cfg.n_pivots, cfg.word_length, cfg.prefix_length
        )
        sim.run_scaled_stage(
            "append/convert",
            TaskCost(
                read_bytes=int(dataset.nbytes * scale),
                cpu_ops=int(dataset.count * sig_ops * scale),
            ),
        )
        sim.run_scaled_stage(
            "append/write",
            TaskCost(
                shuffle_bytes=int(dataset.nbytes * scale),
                write_bytes=int(written_bytes * scale),
            ),
        )
        self._art.n_records += dataset.count
        report = sim.fresh_report()
        return {
            "records_appended": dataset.count,
            "delta_partitions": written,
            "sim_seconds": report.total_seconds,
        }

    # -- persistence ---------------------------------------------------------------

    def save_global_index(self) -> bytes:
        """Serialise the broadcastable structure (skeleton + pivots).

        Together with the DFS partitions this is the index's full
        persistent state — exactly what the paper's driver broadcasts in
        construction Step 4.
        """
        return SkeletonWithPivots(self._art.skeleton, self._art.pivots).to_bytes()

    @classmethod
    def reopen(
        cls,
        global_index: bytes,
        dfs,
        config: ClimberConfig,
        model: CostModel | None = None,
    ) -> "ClimberIndex":
        """Reconstruct a queryable index from persisted state.

        O(partitions), not O(bytes): record counts come from the DFS
        partition-header metadata when available, so no payload is read.
        The routing table is rebuilt by the constructor.

        Parameters
        ----------
        global_index:
            Bytes from :meth:`save_global_index`.
        dfs:
            The storage holding the data partitions written at build time.
        config:
            The configuration the index was built with (routing depends on
            word length, prefix length, and decay settings).
        """
        model = model or CostModel()
        loaded = SkeletonWithPivots.from_bytes(global_index)
        skeleton = loaded.skeleton
        if skeleton.prefix_length != config.prefix_length:
            raise ConfigurationError(
                "persisted skeleton prefix length does not match the config"
            )
        assigner = GroupAssigner(
            skeleton.centroids,
            skeleton.n_pivots,
            skeleton.prefix_length,
            weights=decay_weights(config.prefix_length, config.decay,
                                  config.decay_rate),
            rng=np.random.default_rng(config.seed),
        )
        record_count = getattr(dfs, "record_count", None)
        if record_count is not None:
            n_records = sum(record_count(p) for p in dfs.list_partitions())
        else:
            n_records = sum(
                dfs.read_partition(p).record_count for p in dfs.list_partitions()
            )
        artifacts = BuildArtifacts(
            skeleton=skeleton,
            pivots=loaded.pivots,
            dfs=dfs,
            assigner=assigner,
            sim_report=SimReport(),
            wall_seconds=0.0,
            n_records=n_records,
        )
        return cls(artifacts, config, model)

    # -- introspection ---------------------------------------------------------------

    @property
    def skeleton(self):
        return self._art.skeleton

    @property
    def pivots(self) -> np.ndarray:
        return self._art.pivots

    @property
    def dfs(self):
        return self._art.dfs

    @property
    def routing(self) -> RoutingTable:
        """The vectorised routing engine (centroid bitsets + weights)."""
        return self._routing

    @property
    def n_groups(self) -> int:
        return len(self._art.skeleton.groups)

    @property
    def n_partitions(self) -> int:
        return self._art.skeleton.n_partitions

    @property
    def n_records(self) -> int:
        return self._art.n_records

    @property
    def global_index_nbytes(self) -> int:
        """Size of the broadcast structure (skeleton + pivots), Fig. 8(b)."""
        return self._art.skeleton.nbytes + self._art.pivots.nbytes

    @property
    def build_sim_seconds(self) -> float:
        """Simulated index construction time (Fig. 8(a),(c))."""
        return self._art.sim_report.total_seconds

    @property
    def build_phase_seconds(self) -> dict[str, float]:
        """Construction breakdown: skeleton/conversion/redistribution (Fig. 10(a))."""
        return self._art.phase_seconds

    @property
    def build_wall_seconds(self) -> float:
        return self._art.wall_seconds

    def describe(self) -> dict[str, object]:
        """Structural summary of the index (for logging and examples).

        Returns group count, partition statistics, trie-node totals, and
        the serialised global-index size.  Partition record counts come
        from DFS metadata when available, so no payloads are read.
        """
        skeleton = self._art.skeleton
        record_count = getattr(self.dfs, "record_count", None)
        if record_count is not None:
            partition_records = [
                record_count(p) for p in self.dfs.list_partitions()
            ]
        else:
            partition_records = [
                self.dfs.read_partition(p).record_count
                for p in self.dfs.list_partitions()
            ]
        group_sizes = sorted(
            (g.est_size for g in skeleton.groups), reverse=True
        )
        return {
            "records": self.n_records,
            "groups": self.n_groups,
            "partitions": self.n_partitions,
            "partitions_written": len(partition_records),
            "trie_nodes": skeleton.total_trie_nodes(),
            "global_index_bytes": self.global_index_nbytes,
            "largest_group_est": group_sizes[0] if group_sizes else 0.0,
            "mean_partition_records": (
                float(np.mean(partition_records)) if partition_records else 0.0
            ),
            "max_partition_records": (
                int(max(partition_records)) if partition_records else 0
            ),
        }

    # -- query pipeline ---------------------------------------------------------------

    def query_signature(self, query: np.ndarray) -> np.ndarray:
        """Rank-sensitive signature of a query series (Algorithm 3 L2-4)."""
        q = np.asarray(query, dtype=np.float64).reshape(1, -1)
        paa = paa_transform(q, self.config.word_length)
        return permutation_prefixes(paa, self._art.pivots, self.config.prefix_length)[0]

    def group_candidates(
        self, ranked_sig: np.ndarray, od_slack: int = 0
    ) -> list[GroupCandidate]:
        """Groups at (or near) the smallest OD, ordered by (OD, WD, id).

        Implements Algorithm 3 lines 5-9 plus the bookkeeping the adaptive
        variant memorises: §VI allows memorising "all groups having the
        same smallest OD distance *or having a distance less than a certain
        threshold*" — ``od_slack`` is that threshold above the minimum.
        Falls back to group G0 when nothing overlaps.  OD/WD against all
        centroids come from the vectorised :class:`RoutingTable`.
        """
        od = self._routing.od_matrix(
            np.asarray(ranked_sig, dtype=np.int64).reshape(1, -1)
        )
        return self._routing.candidates(ranked_sig, od[0], od_slack=od_slack)

    def select_primary(self, candidates: list[GroupCandidate]) -> GroupCandidate:
        """Tie-breaking of Algorithm 3 lines 7-19: WD, path length, node size.

        Only groups at the strictly smallest OD compete for primary; any
        slack candidates exist purely for adaptive expansion.
        """
        return _select_primary(
            candidates, self._rng,
            wd_tol=wd_tie_tolerance(self._routing.total_weight),
        )

    # -- node selection per variant ----------------------------------------------------

    def _expand_adaptive(
        self,
        primary: GroupCandidate,
        candidates: list[GroupCandidate],
        k: int,
        factor: int,
    ) -> list[tuple[GroupEntry, TrieNode]]:
        """CLIMBER-kNN-Adaptive node expansion.

        Starting from the primary GN, add memorised runner-up nodes (other
        best-OD groups' GNs first, then ancestors, deepest first) until the
        estimated record count covers k, keeping the partition budget at
        ``factor`` times CLIMBER-kNN's partition count.
        """
        budget = factor * max(1, len(primary.gn.partition_ids))
        selected: list[tuple[GroupEntry, TrieNode]] = [(primary.entry, primary.gn)]
        selected_pids = set(
            (primary.entry.group_id, pid) for pid in primary.gn.partition_ids
        )
        total = primary.gn.count

        pool: list[tuple[int, float, int, GroupCandidate, TrieNode]] = []
        for cand in candidates:
            for node in reversed(cand.path):
                pool.append((cand.od, cand.wd, -node.depth, cand, node))
        pool.sort(key=lambda item: (item[0], item[1], item[2], item[3].entry.group_id))

        for _, _, _, cand, node in pool:
            if total >= k:
                break
            if self._covered(selected, cand.entry, node):
                continue
            new_pids = selected_pids | {
                (cand.entry.group_id, pid) for pid in node.partition_ids
            }
            if len(new_pids) > budget:
                continue
            added = node.count - sum(
                n.count
                for e, n in selected
                if e.group_id == cand.entry.group_id
                and n.path[: node.depth] == node.path
            )
            selected = [
                (e, n)
                for e, n in selected
                if not (
                    e.group_id == cand.entry.group_id
                    and n.path[: node.depth] == node.path
                )
            ]
            selected.append((cand.entry, node))
            selected_pids = new_pids
            total += max(0.0, added)
        return selected

    @staticmethod
    def _covered(
        selected: list[tuple[GroupEntry, TrieNode]],
        entry: GroupEntry,
        node: TrieNode,
    ) -> bool:
        """True if ``node`` lies inside an already-selected subtree."""
        for e, n in selected:
            if e.group_id == entry.group_id and node.path[: n.depth] == n.path:
                return True
        return False

    def _select_nodes(
        self,
        variant: str,
        primary: GroupCandidate,
        candidates: list[GroupCandidate],
        k: int,
        adaptive_factor: int | None,
    ) -> list[tuple[GroupEntry, TrieNode]]:
        """Stage 3: the per-variant trie-node selection.

        Shared by :meth:`knn` and :meth:`knn_progressive` so both paths
        plan from exactly the same node set (the progressive parity
        oracle depends on it).
        """
        if variant == "od-smallest":
            return [(c.entry, c.entry.trie) for c in candidates]
        if variant == "adaptive":
            factor = adaptive_factor or self.config.adaptive_factor
            if primary.gn.count >= k:
                return [(primary.entry, primary.gn)]
            return self._expand_adaptive(primary, candidates, k, factor)
        return [(primary.entry, primary.gn)]

    def _plan_partition_reads(
        self, selected: list[tuple[GroupEntry, TrieNode]]
    ) -> dict[str, list[str]]:
        """Partitions covering the selected nodes, with their target keys.

        One batch ``covering_partitions`` call per involved group resolves
        every selected subtree's partition set from the flat leaf tables.
        Returns ``{base partition name: [cluster keys wanted]}``; readers
        iterate it in sorted order — that iteration order *is* the routed
        plan a progressive query streams through.
        """
        flat_tries = self._routing.flat.tries
        by_group: dict[int, list[TrieNode]] = {}
        for entry, node in selected:
            by_group.setdefault(entry.group_id, []).append(node)
        covering: dict[tuple[int, int], np.ndarray] = {}
        for gid, group_nodes in by_group.items():
            ft = flat_tries[gid]
            nids = [ft.id_of(n) for n in group_nodes]
            for node, pids in zip(group_nodes, ft.covering_partitions(nids)):
                covering[(gid, id(node))] = pids
        to_load: dict[str, list[str]] = {}
        for entry, node in selected:
            pids = set(
                int(p) for p in covering[(entry.group_id, id(node))]
            )
            if not node.is_leaf or node.depth == 0:
                pids.add(entry.default_partition)
            keys = self._target_keys(entry, node)
            for pid in sorted(pids):
                to_load.setdefault(partition_name(pid), []).extend(keys)
        return to_load

    # -- record-level search ------------------------------------------------------------

    def _target_keys(self, entry: GroupEntry, node: TrieNode) -> list[str]:
        """Header keys of the record clusters under a selected trie node.

        An *internal* selection also covers the group's default cluster:
        records whose signatures could not complete a root-to-leaf walk
        stalled at some internal node — exactly like the query that
        selected this node did — so they are candidates too.

        Served from the flat trie's pre-rendered key table: a subtree's
        leaves are one slice of the pre-order leaf array, so no tree walk
        or string formatting happens per query.
        """
        ft = self._routing.flat.tries[entry.group_id]
        keys = list(ft.subtree_keys(ft.id_of(node)))
        if not node.is_leaf or node.depth == 0:
            keys.append(ft.default_key)
        return keys

    def _partition_scan_cost(self, part) -> TaskCost:
        """Declared cost of loading + ED-scanning one partition at paper scale.

        With ``sim_partition_bytes`` set, a touched partition is one storage
        block (the paper's query granularity); otherwise the scaled bytes
        are multiplied by ``cost_scale``.
        """
        cfg = self.config
        if cfg.sim_partition_bytes is not None:
            block_records = max(
                1, cfg.sim_partition_bytes // series_nbytes(part.series_length)
            )
            return TaskCost(
                read_bytes=cfg.sim_partition_bytes,
                cpu_ops=block_records * ops_euclidean(part.series_length),
            )
        return TaskCost(
            read_bytes=int(part.nbytes * cfg.cost_scale),
            cpu_ops=int(
                part.record_count * ops_euclidean(part.series_length) * cfg.cost_scale
            ),
        )

    @staticmethod
    def _validate_query_args(k: int, variant: str) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if variant not in ("knn", "adaptive", "od-smallest"):
            raise ConfigurationError(f"unknown variant {variant!r}")

    def _resolve_on_failure(self, on_partition_failure: str | None) -> str:
        """Degraded-query mode: explicit argument → config → ``"raise"``."""
        if on_partition_failure is None:
            return self.config.effective_on_partition_failure
        if on_partition_failure not in ("raise", "skip"):
            raise ConfigurationError(
                f"on_partition_failure must be 'raise' or 'skip', "
                f"got {on_partition_failure!r}"
            )
        return on_partition_failure

    def knn(
        self,
        query: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        _probe: QueryProbe | None = None,
    ) -> QueryResult:
        """Approximate kNN query (Def. 4).

        Parameters
        ----------
        query:
            A raw series of the indexed length (z-normalised like the data).
        k:
            Number of neighbours.
        variant:
            ``"knn"``, ``"adaptive"`` or ``"od-smallest"`` (see module doc).
        adaptive_factor:
            Partition-budget multiplier override (2 for -2X, 4 for -4X);
            defaults to ``config.adaptive_factor``.
        on_partition_failure:
            ``"raise"`` (default) propagates storage failures; ``"skip"``
            drops unreadable partitions from the candidate set and answers
            from the remainder, recording them in
            ``stats.partitions_failed`` (``stats.degraded`` /
            ``stats.coverage``).  ``None`` defers to
            ``config.effective_on_partition_failure``.  A partition the
            index references but the store has never held
            (:class:`~repro.exceptions.PartitionNotFoundError`) always
            raises — that is index/store inconsistency, not a fault.
        """
        self._validate_query_args(k, variant)
        on_failure = self._resolve_on_failure(on_partition_failure)
        probe = _probe if _probe is not None else self._tel.probe()
        t0 = time.perf_counter()
        od_slack = 1 if variant == "adaptive" else 0
        if probe is None:
            ranked = self.query_signature(query)
            candidates = self.group_candidates(ranked, od_slack=od_slack)
        else:
            with probe.stage("signature"):
                ranked = self.query_signature(query)
            with probe.stage("route"):
                candidates = self.group_candidates(ranked, od_slack=od_slack)
        return self._knn_routed(
            np.asarray(query, dtype=np.float64),
            k, variant, adaptive_factor, candidates, t0,
            probe=probe,
            on_failure=on_failure,
        )

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        _probes: list[QueryProbe] | None = None,
    ) -> list[QueryResult]:
        """Answer a batch of kNN queries (rows of ``queries``).

        The batch pipeline shares work across rows: one PAA transform, one
        signature computation and one OD/WD routing matrix over the
        *distinct* signatures (duplicate queries — common in periodic
        monitoring traffic — are routed once) serve the whole batch, and
        partition loads are shared through the DFS read cache when it is
        enabled.  Results and per-query stats
        (including simulated cost accounting) are identical to calling
        :meth:`knn` once per row; only ``wall_seconds`` reflects the
        shared-work split.

        With ``config.n_workers > 1`` the per-row node selection and
        record scans run as row shards on a thread pool (the index's
        object graph is shared, so a ``"process"`` executor degrades to
        threads here).  The split keeps answers bit-identical to the
        serial sweep for any worker count: the shared routing matrix is
        computed once up front; the only RNG consumer
        (:meth:`select_primary`) runs on this thread in row order before
        the fan-out; and each shard's remaining work is a pure function of
        its rows.  Logical DFS counters are exact either way (commutative
        sums under the DFS lock); only the *physical*
        ``cache_hits``/``cache_misses`` split may shift with worker
        interleaving, as any real cache's would.
        """
        self._validate_query_args(k, variant)
        on_failure = self._resolve_on_failure(on_partition_failure)
        arr = np.asarray(queries, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[0] == 0:
            return []
        tel = self._tel
        # Per-row probes: explicit (explain_query) or implicit when
        # telemetry is enabled.  Under probe sampling individual entries
        # may be None (that row records only query.count); when every row
        # is sampled out the list collapses to None.  The shared
        # signature/routing work is amortised evenly across the rows'
        # live probes, mirroring the shared_share treatment of
        # wall_seconds below.
        probes = _probes
        if probes is None and tel.enabled:
            probes = [tel.probe() for _ in range(arr.shape[0])]
            if not any(probe is not None for probe in probes):
                probes = None
        if probes is not None and len(probes) != arr.shape[0]:
            raise ConfigurationError(
                f"{len(probes)} probes for {arr.shape[0]} query rows"
            )
        # Shared spans are split across *live* probes, not rows: under
        # probe sampling the sampled-out rows carry no stage breakdown,
        # and dividing by the row count would make the live probes'
        # stage sums under-report the measured span (the invariant
        # pinned in tests/test_obs.py).
        live_probes = (
            sum(1 for probe in probes if probe is not None)
            if probes is not None else 0
        )
        t0 = time.perf_counter()
        paa = paa_transform(arr, self.config.word_length)
        ranked = permutation_prefixes(
            paa, self._art.pivots, self.config.prefix_length
        )
        if probes is not None:
            sig_s = time.perf_counter() - t0
            if tel.enabled:
                tel.registry.histogram("query.batch.signature_s").observe(sig_s)
            for probe in probes:
                if probe is not None:
                    probe.add_stage("signature", sig_s / live_probes)
        od_slack = 1 if variant == "adaptive" else 0
        # Identical signatures route identically, so the OD/WD matrices are
        # computed once per *distinct* signature and fanned back out.  Row
        # results are independent of batch composition, so each query sees
        # bit-identical distances with or without the deduplication.
        uniq, inverse = np.unique(ranked, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        od, wd = self._routing.distance_matrices(uniq)
        # Phase split: candidates + primary selection for every row first —
        # select_primary is the only _rng consumer, so running it serially
        # in row order pins the RNG stream to the serial sweep's — then the
        # RNG-free shard scans.
        candidates_of = []
        primaries = []
        t_route = time.perf_counter()
        for i in range(arr.shape[0]):
            row = int(inverse[i])
            candidates_of.append(
                self._routing.candidates(
                    ranked[i], od[row], wd[row], od_slack=od_slack
                )
            )
            primaries.append(self.select_primary(candidates_of[-1]))
        if probes is not None:
            route_s = time.perf_counter() - t_route
            if tel.enabled:
                tel.registry.histogram("query.batch.route_s").observe(route_s)
            for probe in probes:
                if probe is not None:
                    probe.add_stage("route", route_s / live_probes)
        # The shared signature/routing span is amortised evenly over the
        # rows so per-query wall_seconds stay comparable to knn's.
        shared_share = (time.perf_counter() - t0) / arr.shape[0]

        def run_shard(span):
            start, end = span
            return [
                self._knn_routed(
                    arr[i], k, variant, adaptive_factor, candidates_of[i],
                    time.perf_counter() - shared_share,
                    primary=primaries[i],
                    probe=probes[i] if probes is not None else None,
                    on_failure=on_failure,
                )
                for i in range(start, end)
            ]

        cfg = self.config
        if _probes is not None:
            # Explicitly probed batches (explain_query) run serially so
            # per-row DFS cache-delta attribution is exact — concurrent
            # shards would interleave hits/misses across rows.
            executor = SerialExecutor()
        else:
            executor = make_executor(cfg.executor, cfg.effective_n_workers,
                                     require_shared_memory=True)
        with executor:
            shards = executor.map(
                tel.wrap_tasks("query.shard", run_shard),
                split_ranges(arr.shape[0], _QUERY_SHARD_ROWS),
            )
        return [result for shard in shards for result in shard]

    def _knn_routed(
        self,
        query: np.ndarray,
        k: int,
        variant: str,
        adaptive_factor: int | None,
        candidates: list[GroupCandidate],
        t0: float,
        primary: GroupCandidate | None = None,
        probe: QueryProbe | None = None,
        on_failure: str = "raise",
    ) -> QueryResult:
        """Stages 3-4 of the pipeline: node selection + record scan.

        ``primary`` may be precomputed by the caller (the batch pipeline
        selects primaries for all rows serially, pinning the RNG stream,
        before fanning the RNG-free remainder out to worker shards);
        when omitted it is selected here, consuming ``self._rng``.

        ``probe`` (when given) collects the select/read/refine stage
        timings and the per-query DFS cache hit/miss delta.  Probing is
        observation only — the answer set, stats and counters are
        bit-identical with or without it; the cache delta is exact when
        rows run serially and approximate under concurrent shards (other
        rows' hits/misses interleave, as any shared cache's do).

        ``on_failure="skip"`` degrades gracefully: a partition whose read
        (or whose later payload materialisation — lazy checksum
        verification fires on the first cluster read) raises a
        :class:`~repro.exceptions.StorageError` is dropped from the
        candidate set and recorded in ``stats.partitions_failed`` instead
        of aborting the query.  :class:`PartitionNotFoundError` is never
        skipped — a referenced-but-absent partition is index/store
        inconsistency, not a transient fault.
        """
        sim = ClusterSimulator(self.model)
        cfg = self.config
        if probe is not None:
            t_mark = time.perf_counter()
        if primary is None:
            primary = self.select_primary(candidates)

        # Driver-side routing: signature of one query object plus a linear
        # scan of the group list.  Independent of the data volume, so it is
        # *not* scaled by cost_scale (the group list itself grows only with
        # the signature space, paper §VII-B).
        sim.run_driver_step(
            "query/route",
            TaskCost(
                cpu_ops=int(
                    ops_signature(cfg.n_pivots, cfg.word_length, cfg.prefix_length)
                    + self.n_groups * cfg.prefix_length * 8
                )
            ),
        )

        selected = self._select_nodes(
            variant, primary, candidates, k, adaptive_factor
        )
        to_load = self._plan_partition_reads(selected)

        if probe is not None:
            now = time.perf_counter()
            probe.add_stage("select", now - t_mark)
            t_mark = now
            counters_before = getattr(self.dfs, "counters", None)

        ids_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        loaded = []
        failed: list[str] = []
        data_bytes = 0
        scan_costs = []
        fallback_pool: list[tuple] = []
        for pname in sorted(to_load):
            wanted = set(to_load[pname])
            # Base partition plus any delta partitions appended later.
            physical = ([pname] if self.dfs.has_partition(pname) else [])
            physical += self._delta_names(pname)
            for actual in physical:
                # All per-partition reads (open + targeted cluster ranges)
                # succeed or fail atomically from this query's view: a
                # failure after retry exhaustion either aborts the query
                # (mode "raise") or drops the whole partition (mode
                # "skip") — never a half-read partition.
                try:
                    part = self.dfs.read_partition(actual)
                    present = [
                        key for key in part.cluster_keys() if key in wanted
                    ]
                    cid = cval = None
                    if present:
                        # One cluster-range read per partition: with format
                        # v2 the handle maps only the byte ranges these keys
                        # cover (adjacent clusters coalesce into single
                        # slices).  Lazy checksum verification fires here.
                        cid, cval = part.read_clusters(present)
                except PartitionNotFoundError:
                    raise
                except StorageError:
                    if on_failure != "skip":
                        raise
                    failed.append(actual)
                    continue
                loaded.append(actual)
                data_bytes += part.nbytes
                if cid is not None:
                    ids_parts.append(cid)
                    val_parts.append(cval)
                # Remember the rest of the partition for the within-partition
                # expansion CLIMBER-kNN applies when the node is too small;
                # the records are only materialised if that happens.
                other_keys = [
                    key for key in part.cluster_keys() if key not in wanted
                ]
                cost = self._partition_scan_cost(part)
                if other_keys:
                    fallback_pool.append(
                        (actual, part, other_keys, cost, cid is not None)
                    )
                scan_costs.append(cost)

        n_targeted = int(sum(p.shape[0] for p in ids_parts))
        expanded = False
        if n_targeted < k and fallback_pool:
            expanded = True
            for actual, part, other_keys, cost, contributed in fallback_pool:
                try:
                    cid, cval = part.read_clusters(other_keys)
                except PartitionNotFoundError:
                    raise
                except StorageError:
                    if on_failure != "skip":
                        raise
                    if not contributed:
                        # The partition contributed nothing usable after
                        # all: retract its load accounting and reclassify
                        # it as failed.  (A partition whose *targeted*
                        # clusters were already folded in stays loaded —
                        # only its expansion read degraded.)
                        loaded.remove(actual)
                        failed.append(actual)
                        data_bytes -= part.nbytes
                        scan_costs.remove(cost)
                    continue
                ids_parts.append(cid)
                val_parts.append(cval)

        if probe is not None:
            now = time.perf_counter()
            probe.add_stage("read", now - t_mark)
            t_mark = now
            if counters_before is not None:
                counters_after = self.dfs.counters
                probe.add_count(
                    "cache_hits",
                    counters_after.cache_hits - counters_before.cache_hits,
                )
                probe.add_count(
                    "cache_misses",
                    counters_after.cache_misses - counters_before.cache_misses,
                )

        if ids_parts:
            all_ids = np.concatenate(ids_parts)
            all_vals = np.vstack(val_parts)
            ids, dists = knn_bruteforce(query, all_vals, all_ids, k)
            examined = int(all_ids.shape[0])
        else:
            ids = np.empty(0, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
            examined = 0

        if probe is not None:
            probe.add_stage("refine", time.perf_counter() - t_mark)
            probe.add_count("candidates_scored", examined)

        sim.run_stage("query/scan", scan_costs)
        report = sim.fresh_report()
        stats = QueryStats(
            variant=variant,
            k=k,
            best_od=primary.od,
            group_ids=tuple(c.entry.group_id for c in candidates),
            path_len=primary.path_len,
            gn_size=primary.gn.count,
            n_selected_nodes=len(selected),
            partitions_loaded=tuple(loaded),
            data_bytes=data_bytes,
            records_examined=examined,
            expanded_within_partition=expanded,
            sim_seconds=report.total_seconds,
            wall_seconds=time.perf_counter() - t0,
            partitions_failed=tuple(failed),
        )
        tel = self._tel
        if tel.enabled:
            tel.record_query(stats, probe)
        return QueryResult(ids, dists, stats)

    # -- progressive queries -----------------------------------------------------------

    def attach_calibration(
        self, calibration: "ProgressiveCalibration | str | Path | None"
    ) -> ProgressiveCalibration | None:
        """Attach (or detach) the early-stopping calibration artifact.

        Accepts a :class:`~repro.core.progressive.ProgressiveCalibration`,
        a path to one saved by
        :func:`repro.evaluation.calibrate_early_stop` (the JSON sidecar
        persisted next to the index partitions), or ``None`` to detach.
        ``early_stop="confidence"`` queries consult the attached curve;
        without one they fall back to the conservative built-in prior.
        """
        if calibration is None or isinstance(calibration, ProgressiveCalibration):
            self.calibration = calibration
        else:
            self.calibration = ProgressiveCalibration.load(calibration)
        return self.calibration

    def _resolve_stop_rule(
        self, early_stop: object, confidence: float | None
    ) -> StopRule | None:
        """Knob resolution: explicit arg → config → env → ``"off"``."""
        if early_stop is None:
            spec: object = self.config.effective_early_stop
        else:
            spec = early_stop
        if confidence is not None and not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {confidence!r}"
            )
        conf = (
            confidence if confidence is not None
            else self.config.early_stop_confidence
        )
        return resolve_stop_rule(spec, conf, self.calibration)

    def knn_progressive(
        self,
        query: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        early_stop: str | int | None = None,
        confidence: float | None = None,
        _probe: QueryProbe | None = None,
    ) -> Iterator[ProgressiveUpdate]:
        """Progressive kNN: stream improving answers partition by partition.

        The routed plan of the equivalent :meth:`knn` call is walked in
        its promise order, yielding one
        :class:`~repro.core.progressive.ProgressiveUpdate` per physical
        partition visited (running top-k, improvement, stability) and a
        final update carrying the full :class:`QueryStats`.  With
        ``early_stop`` disabled the final update is **bit-identical** to
        :meth:`knn` — same ids, distances, stats fields (bar
        ``wall_seconds``) and logical DFS counters — because both paths
        share the planner and the final answer is recomputed over the
        candidate set concatenated in :meth:`knn`'s canonical order.

        Parameters beyond :meth:`knn`'s
        ------------------------------
        early_stop:
            ``"off"`` | ``"confidence"`` | ``"confidence:0.95"`` |
            ``"streak:3"`` | bare int.  ``None`` defers to
            ``config.early_stop`` and then the ``CLIMBER_EARLY_STOP``
            environment variable.  Confidence mode maps the confidence to
            a stable-streak threshold via the attached calibration (see
            :meth:`attach_calibration`) or the built-in prior.  The rule
            never fires before ``k`` answers are in hand, so an index
            holding fewer than ``k`` records always runs to full coverage.
        confidence:
            Confidence level for ``early_stop="confidence"``; defaults to
            ``config.early_stop_confidence``.

        Note: validation, signature and routing run eagerly at call time
        (consuming the index RNG stream exactly like :meth:`knn`); only
        the partition visits are lazy.
        """
        self._validate_query_args(k, variant)
        on_failure = self._resolve_on_failure(on_partition_failure)
        rule = self._resolve_stop_rule(early_stop, confidence)
        probe = _probe if _probe is not None else self._tel.probe()
        t0 = time.perf_counter()
        od_slack = 1 if variant == "adaptive" else 0
        if probe is None:
            ranked = self.query_signature(query)
            candidates = self.group_candidates(ranked, od_slack=od_slack)
        else:
            with probe.stage("signature"):
                ranked = self.query_signature(query)
            with probe.stage("route"):
                candidates = self.group_candidates(ranked, od_slack=od_slack)
        primary = self.select_primary(candidates)
        return self._knn_progressive_routed(
            np.asarray(query, dtype=np.float64),
            k, variant, adaptive_factor, candidates, t0, rule,
            primary=primary,
            probe=probe,
            on_failure=on_failure,
        )

    def knn_batch_progressive(
        self,
        queries: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        early_stop: str | int | None = None,
        confidence: float | None = None,
        _probes: list[QueryProbe] | None = None,
    ) -> list[ProgressiveUpdate]:
        """Progressive kNN over a batch: one *final* update per row.

        The batch preamble is :meth:`knn_batch`'s — shared PAA/signature
        work, one routing matrix over distinct signatures, serial
        ``select_primary`` in row order pinning the RNG stream — and each
        row then runs its own progressive walk (with the shared early-stop
        rule) inside the same sharded fan-out.  Intermediate updates are
        consumed internally; the returned
        :class:`~repro.core.progressive.ProgressiveUpdate` per row carries
        the answer, its stats and the forgone coverage.  With stopping
        disabled every row is bit-identical to :meth:`knn_batch`.
        """
        self._validate_query_args(k, variant)
        on_failure = self._resolve_on_failure(on_partition_failure)
        rule = self._resolve_stop_rule(early_stop, confidence)
        arr = np.asarray(queries, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[0] == 0:
            return []
        tel = self._tel
        probes = _probes
        if probes is None and tel.enabled:
            probes = [tel.probe() for _ in range(arr.shape[0])]
            if not any(probe is not None for probe in probes):
                probes = None
        if probes is not None and len(probes) != arr.shape[0]:
            raise ConfigurationError(
                f"{len(probes)} probes for {arr.shape[0]} query rows"
            )
        live_probes = (
            sum(1 for probe in probes if probe is not None)
            if probes is not None else 0
        )
        t0 = time.perf_counter()
        paa = paa_transform(arr, self.config.word_length)
        ranked = permutation_prefixes(
            paa, self._art.pivots, self.config.prefix_length
        )
        if probes is not None:
            sig_s = time.perf_counter() - t0
            if tel.enabled:
                tel.registry.histogram("query.batch.signature_s").observe(sig_s)
            for probe in probes:
                if probe is not None:
                    probe.add_stage("signature", sig_s / live_probes)
        od_slack = 1 if variant == "adaptive" else 0
        uniq, inverse = np.unique(ranked, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        od, wd = self._routing.distance_matrices(uniq)
        candidates_of = []
        primaries = []
        t_route = time.perf_counter()
        for i in range(arr.shape[0]):
            row = int(inverse[i])
            candidates_of.append(
                self._routing.candidates(
                    ranked[i], od[row], wd[row], od_slack=od_slack
                )
            )
            primaries.append(self.select_primary(candidates_of[-1]))
        if probes is not None:
            route_s = time.perf_counter() - t_route
            if tel.enabled:
                tel.registry.histogram("query.batch.route_s").observe(route_s)
            for probe in probes:
                if probe is not None:
                    probe.add_stage("route", route_s / live_probes)
        shared_share = (time.perf_counter() - t0) / arr.shape[0]

        def run_shard(span):
            start, end = span
            out = []
            for i in range(start, end):
                walk = self._knn_progressive_routed(
                    arr[i], k, variant, adaptive_factor, candidates_of[i],
                    time.perf_counter() - shared_share, rule,
                    primary=primaries[i],
                    probe=probes[i] if probes is not None else None,
                    on_failure=on_failure,
                )
                final = None
                for final in walk:
                    pass
                out.append(final)
            return out

        cfg = self.config
        if _probes is not None:
            executor = SerialExecutor()
        else:
            executor = make_executor(cfg.executor, cfg.effective_n_workers,
                                     require_shared_memory=True)
        with executor:
            shards = executor.map(
                tel.wrap_tasks("query.shard", run_shard),
                split_ranges(arr.shape[0], _QUERY_SHARD_ROWS),
            )
        return [update for shard in shards for update in shard]

    def _knn_progressive_routed(
        self,
        query: np.ndarray,
        k: int,
        variant: str,
        adaptive_factor: int | None,
        candidates: list[GroupCandidate],
        t0: float,
        rule: StopRule | None,
        primary: GroupCandidate | None = None,
        probe: QueryProbe | None = None,
        on_failure: str = "raise",
    ) -> Iterator[ProgressiveUpdate]:
        """The progressive walk over :meth:`_knn_routed`'s exact plan.

        Parity discipline: planning (``_select_nodes`` +
        ``_plan_partition_reads``), the per-partition read/skip semantics,
        the within-partition expansion trigger and the cost accounting all
        replicate ``_knn_routed`` statement for statement, in the same
        order.  Intermediate top-k states come from per-partition
        ``knn_bruteforce`` merged via ``knn_merge`` (exact over the
        candidates seen so far); the *final* answer is recomputed from the
        candidate arrays concatenated in the canonical visit order — the
        identical computation ``_knn_routed`` performs — so full-coverage
        runs are bit-identical to :meth:`knn` down to the distance ulps.
        """
        sim = ClusterSimulator(self.model)
        cfg = self.config
        if probe is not None:
            t_mark = time.perf_counter()
        if primary is None:
            primary = self.select_primary(candidates)

        sim.run_driver_step(
            "query/route",
            TaskCost(
                cpu_ops=int(
                    ops_signature(cfg.n_pivots, cfg.word_length, cfg.prefix_length)
                    + self.n_groups * cfg.prefix_length * 8
                )
            ),
        )

        selected = self._select_nodes(
            variant, primary, candidates, k, adaptive_factor
        )
        to_load = self._plan_partition_reads(selected)

        # The routed plan as physical partitions, in exactly the order
        # _knn_routed's read loop visits them: sorted base names, each
        # base (when present) before its delta partitions.
        plan: list[tuple[str, str]] = []
        for pname in sorted(to_load):
            physical = ([pname] if self.dfs.has_partition(pname) else [])
            physical += self._delta_names(pname)
            for actual in physical:
                plan.append((pname, actual))
        n_planned = len(plan)

        if probe is not None:
            now = time.perf_counter()
            probe.add_stage("select", now - t_mark)
            counters_before = getattr(self.dfs, "counters", None)

        ids_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        loaded = []
        failed: list[str] = []
        data_bytes = 0
        scan_costs = []
        fallback_pool: list[tuple] = []
        run_ids = np.empty(0, dtype=np.int64)
        run_dists = np.empty(0, dtype=np.float64)
        stable = 0
        visited = 0
        stopped = False

        for pname, actual in plan:
            wanted = set(to_load[pname])
            if probe is not None:
                t_read = time.perf_counter()
            step_failed = False
            cid = cval = None
            try:
                part = self.dfs.read_partition(actual)
                present = [
                    key for key in part.cluster_keys() if key in wanted
                ]
                if present:
                    cid, cval = part.read_clusters(present)
            except PartitionNotFoundError:
                raise
            except StorageError:
                if on_failure != "skip":
                    raise
                failed.append(actual)
                step_failed = True
            if not step_failed:
                loaded.append(actual)
                data_bytes += part.nbytes
                if cid is not None:
                    ids_parts.append(cid)
                    val_parts.append(cval)
                other_keys = [
                    key for key in part.cluster_keys() if key not in wanted
                ]
                cost = self._partition_scan_cost(part)
                if other_keys:
                    fallback_pool.append(
                        (actual, part, other_keys, cost, cid is not None)
                    )
                scan_costs.append(cost)
            if probe is not None:
                probe.add_stage("read", time.perf_counter() - t_read)
            visited += 1

            prev_kth = (
                float(run_dists[k - 1])
                if run_dists.shape[0] >= k else float("inf")
            )
            new_neighbors = 0
            changed = False
            if not step_failed and cid is not None and cid.shape[0]:
                part_ids, part_d = knn_bruteforce(query, cval, cid, k)
                new_ids, new_d = knn_merge(
                    [(run_ids, run_dists), (part_ids, part_d)], k
                )
                entered = np.isin(new_ids, run_ids, invert=True)
                new_neighbors = int(np.count_nonzero(entered))
                changed = not (
                    new_ids.shape[0] == run_ids.shape[0]
                    and np.array_equal(new_ids, run_ids)
                )
                run_ids, run_dists = new_ids, new_d
            kth = (
                float(run_dists[k - 1])
                if run_dists.shape[0] >= k else float("inf")
            )
            # A failed (skipped) partition cannot improve the answer, so
            # it counts toward the stable streak like an unchanged read.
            stable = 0 if changed else stable + 1
            if np.isfinite(prev_kth) and prev_kth > 0 and kth < prev_kth:
                improvement = (prev_kth - kth) / prev_kth
            else:
                improvement = 0.0

            yield ProgressiveUpdate(
                ids=run_ids,
                distances=run_dists,
                k=k,
                partitions_visited=visited,
                partitions_planned=n_planned,
                new_neighbors=new_neighbors,
                kth_distance=kth,
                improvement=improvement,
                stable_steps=stable,
                stability=stable / visited,
                done=False,
            )
            if rule is not None and rule.should_stop(
                run_ids.shape[0] >= k, visited, stable
            ):
                # A rule firing on the last planned partition forgoes
                # nothing — that is a full-coverage answer, not an early
                # stop, so the flag (and the early_stops counter) stays
                # down.
                stopped = visited < n_planned
                break

        forgone = tuple(actual for _, actual in plan[visited:])

        # Within-partition expansion, exactly as _knn_routed applies it.
        # The stop rule requires k answers in hand, and fewer than k
        # targeted records means fewer than k in hand, so an early-stopped
        # walk can never reach this with a truthy trigger — the expansion
        # only ever runs at full coverage, where it must mirror knn.
        n_targeted = int(sum(p.shape[0] for p in ids_parts))
        expanded = False
        if n_targeted < k and fallback_pool:
            expanded = True
            if probe is not None:
                t_read = time.perf_counter()
            for actual, part, other_keys, cost, contributed in fallback_pool:
                try:
                    cid, cval = part.read_clusters(other_keys)
                except PartitionNotFoundError:
                    raise
                except StorageError:
                    if on_failure != "skip":
                        raise
                    if not contributed:
                        loaded.remove(actual)
                        failed.append(actual)
                        data_bytes -= part.nbytes
                        scan_costs.remove(cost)
                    continue
                ids_parts.append(cid)
                val_parts.append(cval)
            if probe is not None:
                probe.add_stage("read", time.perf_counter() - t_read)

        if probe is not None:
            if counters_before is not None:
                counters_after = self.dfs.counters
                probe.add_count(
                    "cache_hits",
                    counters_after.cache_hits - counters_before.cache_hits,
                )
                probe.add_count(
                    "cache_misses",
                    counters_after.cache_misses - counters_before.cache_misses,
                )
            t_mark = time.perf_counter()

        # Final answer: the canonical concatenated refinement — the same
        # arrays in the same order _knn_routed concatenates, so the
        # distances match knn's to the bit (BLAS reduction order and all).
        if ids_parts:
            all_ids = np.concatenate(ids_parts)
            all_vals = np.vstack(val_parts)
            ids, dists = knn_bruteforce(query, all_vals, all_ids, k)
            examined = int(all_ids.shape[0])
        else:
            ids = np.empty(0, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
            examined = 0

        if probe is not None:
            probe.add_stage("refine", time.perf_counter() - t_mark)
            probe.add_count("candidates_scored", examined)

        sim.run_stage("query/scan", scan_costs)
        report = sim.fresh_report()
        stats = QueryStats(
            variant=variant,
            k=k,
            best_od=primary.od,
            group_ids=tuple(c.entry.group_id for c in candidates),
            path_len=primary.path_len,
            gn_size=primary.gn.count,
            n_selected_nodes=len(selected),
            partitions_loaded=tuple(loaded),
            data_bytes=data_bytes,
            records_examined=examined,
            expanded_within_partition=expanded,
            sim_seconds=report.total_seconds,
            wall_seconds=time.perf_counter() - t0,
            partitions_failed=tuple(failed),
            partitions_forgone=forgone,
        )
        tel = self._tel
        if tel.enabled:
            tel.record_query(stats, probe)
            tel.record_progressive(stats, visited, n_planned, stopped)
        yield ProgressiveUpdate(
            ids=ids,
            distances=dists,
            k=k,
            partitions_visited=visited,
            partitions_planned=n_planned,
            new_neighbors=0,
            kth_distance=(
                float(dists[k - 1]) if dists.shape[0] >= k else float("inf")
            ),
            improvement=0.0,
            stable_steps=stable,
            stability=stable / visited if visited else 1.0,
            done=True,
            stopped_early=stopped,
            partitions_forgone=forgone,
            stats=stats,
        )

    # -- observability surface ---------------------------------------------------------

    @staticmethod
    def _explain_entry(result: QueryResult, probe: QueryProbe) -> dict:
        """One query's structured breakdown (explain_query response body)."""
        stats = result.stats
        return {
            "variant": stats.variant,
            "k": stats.k,
            "stages": {name: seconds for name, seconds in probe.stages.items()},
            "partitions_probed": stats.n_partitions,
            "partitions": list(stats.partitions_loaded),
            "bytes_read": stats.data_bytes,
            "records_examined": stats.records_examined,
            "cache": {
                "hits": probe.counts.get("cache_hits", 0),
                "misses": probe.counts.get("cache_misses", 0),
            },
            "best_od": stats.best_od,
            "groups_considered": list(stats.group_ids),
            "n_selected_nodes": stats.n_selected_nodes,
            "expanded_within_partition": stats.expanded_within_partition,
            "degraded": stats.degraded,
            "coverage": stats.coverage,
            "partitions_failed": list(stats.partitions_failed),
            "sim_seconds": stats.sim_seconds,
            "wall_seconds": stats.wall_seconds,
            "ids": [int(i) for i in result.ids],
            "distances": [float(d) for d in result.distances],
        }

    @staticmethod
    def _explain_progressive(updates: list[ProgressiveUpdate]) -> dict:
        """The progressive-plan section of an explain entry."""
        final = updates[-1]
        return {
            "partitions_planned": final.partitions_planned,
            "partitions_visited": final.partitions_visited,
            "visited_fraction": final.visited_fraction,
            "stopped_early": final.stopped_early,
            "partitions_forgone": list(final.partitions_forgone),
            "steps": [
                {
                    "partitions_visited": u.partitions_visited,
                    "new_neighbors": u.new_neighbors,
                    "kth_distance": u.kth_distance,
                    "improvement": u.improvement,
                    "stable_steps": u.stable_steps,
                    "stability": u.stability,
                }
                for u in updates
                if not u.done
            ],
        }

    @staticmethod
    def _explain_totals(entries: list[dict]) -> dict:
        """Aggregate section of a batch explain response.

        The aggregate ``coverage`` guards its denominator: a batch whose
        queries wanted no partitions at all (every candidate set empty or
        deduplicated away) is fully covered by definition — 1.0, never a
        division by zero.
        """
        total_loaded = sum(len(e["partitions"]) for e in entries)
        total_failed = sum(len(e["partitions_failed"]) for e in entries)
        wanted = total_loaded + total_failed
        return {
            "partitions_probed": sum(
                e["partitions_probed"] for e in entries
            ),
            "bytes_read": sum(e["bytes_read"] for e in entries),
            "records_examined": sum(
                e["records_examined"] for e in entries
            ),
            "cache_hits": sum(e["cache"]["hits"] for e in entries),
            "cache_misses": sum(e["cache"]["misses"] for e in entries),
            "wall_seconds": sum(e["wall_seconds"] for e in entries),
            "degraded_queries": sum(e["degraded"] for e in entries),
            "partitions_failed": total_failed,
            "coverage": (total_loaded / wanted) if wanted else 1.0,
        }

    def explain_query(
        self,
        query: np.ndarray,
        k: int,
        variant: str = "adaptive",
        adaptive_factor: int | None = None,
        on_partition_failure: str | None = None,
        progressive: bool = False,
        early_stop: str | int | None = None,
        confidence: float | None = None,
    ) -> dict:
        """Run a query and return its structured per-stage breakdown.

        The query-plan view of one ``knn`` call (1-D ``query``) or one
        ``knn_batch`` call (2-D ``query``): per-stage wall timings
        (signature/route/select/read/refine), partitions probed, logical
        bytes read, records examined, DFS cache hits/misses, and the
        answer set itself — everything JSON-able, stamped with
        :data:`~repro.obs.OBS_SCHEMA`.

        With ``progressive=True`` (implied by passing ``early_stop``) the
        query runs through :meth:`knn_progressive` and each entry gains a
        ``"progressive"`` section: the routed plan size, how much of it
        was visited vs forgone, and the per-step improvement/stability
        trajectory.  Batch rows then run as serial per-row progressive
        walks (RNG-equivalent to the batch pipeline).

        Works regardless of ``config.telemetry`` (probes are attached
        explicitly for this call).  The query *runs for real*: it consumes
        the index RNG stream exactly like the equivalent ``knn`` /
        ``knn_batch`` call and charges the DFS logical counters — explain
        is a probed query, not a dry run.  Batch rows execute serially so
        each row's cache delta is attributed exactly.
        """
        arr = np.asarray(query, dtype=np.float64)
        run_progressive = progressive or early_stop is not None
        if arr.ndim == 1:
            probe = QueryProbe()
            if run_progressive:
                updates = list(self.knn_progressive(
                    arr, k, variant, adaptive_factor,
                    on_partition_failure=on_partition_failure,
                    early_stop=early_stop, confidence=confidence,
                    _probe=probe,
                ))
                final = updates[-1]
                result = QueryResult(final.ids, final.distances, final.stats)
                entry = self._explain_entry(result, probe)
                entry["schema"] = OBS_SCHEMA
                entry["mode"] = "knn_progressive"
                entry["progressive"] = self._explain_progressive(updates)
                return entry
            result = self.knn(arr, k, variant, adaptive_factor,
                              on_partition_failure=on_partition_failure,
                              _probe=probe)
            entry = self._explain_entry(result, probe)
            entry["schema"] = OBS_SCHEMA
            entry["mode"] = "knn"
            return entry
        if run_progressive:
            entries = []
            for i in range(arr.shape[0]):
                probe = QueryProbe()
                updates = list(self.knn_progressive(
                    arr[i], k, variant, adaptive_factor,
                    on_partition_failure=on_partition_failure,
                    early_stop=early_stop, confidence=confidence,
                    _probe=probe,
                ))
                final = updates[-1]
                result = QueryResult(final.ids, final.distances, final.stats)
                entry = self._explain_entry(result, probe)
                entry["progressive"] = self._explain_progressive(updates)
                entries.append(entry)
            return {
                "schema": OBS_SCHEMA,
                "mode": "knn_batch_progressive",
                "batch_size": len(entries),
                # Per-row walks compute their own signatures/routes, so
                # nothing is amortised across rows here.
                "shared_stages": [],
                "queries": entries,
                "totals": self._explain_totals(entries),
            }
        probes = [QueryProbe() for _ in range(arr.shape[0])]
        results = self.knn_batch(arr, k, variant, adaptive_factor,
                                 on_partition_failure=on_partition_failure,
                                 _probes=probes)
        entries = [
            self._explain_entry(result, probe)
            for result, probe in zip(results, probes)
        ]
        return {
            "schema": OBS_SCHEMA,
            "mode": "knn_batch",
            "batch_size": len(entries),
            "shared_stages": ["signature", "route"],
            "queries": entries,
            "totals": self._explain_totals(entries),
        }

    def stats(self) -> dict:
        """Process-lifetime aggregates of this index, as one JSON-able dict.

        Four sections: a structural ``index`` summary, the index-scoped
        ``metrics`` registry (build spans, query histograms and counters —
        populated when telemetry is enabled), the always-on ``dfs``
        logical counters (+ cache occupancy), and the ``process`` global
        registry (cross-cutting counters like ``parallel.fallbacks``).
        """
        dfs_counters = getattr(self.dfs, "counters", None)
        dfs_section: dict[str, object] = {}
        if dataclasses.is_dataclass(dfs_counters):
            dfs_section = dataclasses.asdict(dfs_counters)
        cache_used = getattr(self.dfs, "cache_used_bytes", None)
        if cache_used is not None:
            dfs_section["cache_used_bytes"] = cache_used
        return {
            "schema": OBS_SCHEMA,
            "telemetry_enabled": self._tel.enabled,
            "index": {
                "records": self.n_records,
                "groups": self.n_groups,
                "partitions": self.n_partitions,
            },
            "metrics": self._tel.registry.snapshot(),
            "dfs": dfs_section,
            "process": global_registry().snapshot(),
        }

    def reset_stats(self) -> None:
        """Zero this index's metric registry (histograms, query counters).

        Scoped on purpose: the DFS *logical* counters (paper access-volume
        accounting) and the process-global registry are not touched —
        reset them via ``dfs.registry.reset()`` /
        ``repro.obs.global_registry().reset()`` explicitly if a test needs
        a clean slate.
        """
        self._tel.registry.reset()

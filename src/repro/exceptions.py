"""Exception hierarchy for the CLIMBER reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class DimensionalityError(ReproError):
    """An array does not have the shape an operation requires."""


class IndexNotBuiltError(ReproError):
    """A query was issued against an index that has not been built yet."""


class StorageError(ReproError):
    """The simulated distributed file system rejected an operation."""


class PartitionNotFoundError(StorageError):
    """A partition id does not exist in the simulated DFS.

    An index-consistency error, not a storage fault: retry and the
    degraded query mode (``on_partition_failure="skip"``) deliberately do
    *not* treat it as recoverable."""


class PartitionCorruptError(StorageError):
    """Stored partition bytes fail an integrity check.

    Raised when a checksum recorded in the v2 partition header does not
    match the stored section bytes, or when a payload is structurally
    undecodable (short section read, unparsable meta blob)."""


class TransientReadError(StorageError):
    """A read failed in a way that may succeed on retry.

    The simulated-DFS analogue of a dropped connection or a timed-out
    datanode: the :class:`~repro.resilience.FaultInjector` raises it on
    scheduled transient faults and the DFS retry loop treats it as
    recoverable."""


class PartitionLostError(StorageError):
    """A partition's bytes are permanently gone (simulated node loss).

    Never retried — a lost partition stays lost; queries running with
    ``on_partition_failure="skip"`` degrade around it."""


class ReadTimeoutError(StorageError):
    """A read exceeded the :class:`~repro.resilience.RetryPolicy` deadline.

    Recoverable: the straggler that blew the deadline may not recur, so
    the retry loop treats timeouts like transient faults."""


class ServiceError(ReproError):
    """Base class for errors raised by the serving layer (:mod:`repro.serve`)."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: the service queue is full.

    Raised by :meth:`~repro.serve.QueryService.submit` in ``"reject"``
    admission mode.  Back off and retry — the index itself is healthy;
    the service is shedding load instead of letting latency grow without
    bound."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""


class MemoryBudgetExceeded(ReproError):
    """An in-memory system was asked to hold more data than its budget.

    Used by the Odyssey and HNSW baselines to reproduce the ``X`` (did not
    run) cells of Table I: those systems require the data set and index to
    fit in main memory, and fail otherwise.
    """

    def __init__(self, required_bytes: int, budget_bytes: int) -> None:
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"dataset requires {required_bytes} bytes but the memory budget "
            f"is {budget_bytes} bytes"
        )

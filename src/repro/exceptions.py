"""Exception hierarchy for the CLIMBER reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class DimensionalityError(ReproError):
    """An array does not have the shape an operation requires."""


class IndexNotBuiltError(ReproError):
    """A query was issued against an index that has not been built yet."""


class StorageError(ReproError):
    """The simulated distributed file system rejected an operation."""


class PartitionNotFoundError(StorageError):
    """A partition id does not exist in the simulated DFS."""


class MemoryBudgetExceeded(ReproError):
    """An in-memory system was asked to hold more data than its budget.

    Used by the Odyssey and HNSW baselines to reproduce the ``X`` (did not
    run) cells of Table I: those systems require the data set and index to
    fit in main memory, and fail otherwise.
    """

    def __init__(self, required_bytes: int, budget_bytes: int) -> None:
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"dataset requires {required_bytes} bytes but the memory budget "
            f"is {budget_bytes} bytes"
        )

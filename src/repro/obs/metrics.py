"""Metric primitives: counters, gauges, fixed-bucket latency histograms.

The observability substrate every layer of the repository records into:
the :class:`~repro.storage.SimulatedDFS` logical I/O counters, the build
pipeline's per-stage spans, the query path's per-stage latencies, and the
benchmark suite's wall-clock timings all live in a
:class:`MetricsRegistry`.

Design constraints (and what the tests pin down):

* **Thread safety with exact totals.**  Every metric owns one
  ``threading.Lock``; updates are read-modify-write under it, so counter
  values and histogram ``count``/``sum`` are *exact* under any worker
  interleaving — the same contract the DFS logical counters already
  carry, and what lets parity suites compare metric values across worker
  counts.  (Histogram *quantiles* are bucket interpolations and therefore
  approximate; totals are not.)
* **Fixed buckets.**  Histograms use a fixed log-spaced bucket layout
  (sub-microsecond to minutes by default), so snapshots are constant-size
  no matter how many observations arrive — safe to embed in every BENCH
  artifact and to keep for a process lifetime.
* **One schema.**  :meth:`MetricsRegistry.snapshot` returns a plain
  JSON-able dict stamped ``schema: repro.obs/v1``; BENCH artifacts,
  ``ClimberIndex.stats()`` and ``explain_query`` all speak it.

Metrics are get-or-create by name (:meth:`MetricsRegistry.counter` etc.),
so call sites never race on registration and handles can be cached.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

from repro.exceptions import ConfigurationError

__all__ = [
    "OBS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
]

OBS_SCHEMA = "repro.obs/v1"
"""Version stamp carried by every snapshot/export of this subsystem."""

#: Default histogram bucket upper bounds: 1 µs · 2^i, i = 0..27 — covering
#: sub-microsecond probes up to ~134 s walls.  28 buckets plus overflow.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * (2.0 ** i) for i in range(28)
)


class Counter:
    """A monotonically increasing sum (int or float increments)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with exact count/sum and p50/p90/p99 estimates.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]`` (the first bucket
    starts at 0, one overflow bucket catches everything past the last
    bound).  ``count``/``sum``/``min``/``max`` are exact; quantiles
    interpolate linearly inside the covering bucket and are clamped to the
    observed ``[min, max]``.
    """

    __slots__ = ("name", "_lock", "_bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                "histogram bounds must be a non-empty ascending sequence"
            )
        self.name = name
        self._lock = threading.Lock()
        self._bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def observe(self, value: int | float) -> None:
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the bucket counts."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cum = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = self._bounds[i - 1] if i > 0 else 0.0
                hi = (self._bounds[i] if i < len(self._bounds)
                      else self._max)
                est = lo + (hi - lo) * ((rank - cum) / c)
                return float(min(max(est, self._min), self._max))
            cum += c
        return float(self._max)

    def snapshot(self) -> dict:
        """Exact totals plus p50/p90/p99 estimates, JSON-able."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "p50": None, "p90": None, "p99": None}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None


class MetricsRegistry:
    """Thread-safe, get-or-create registry of named metrics.

    One registry per scope: each :class:`~repro.storage.SimulatedDFS` owns
    one (its logical counters), each ``ClimberIndex`` owns one (build +
    query metrics), the benchmark suite owns one, and a process-lifetime
    global registry (:func:`repro.obs.global_registry`) hosts cross-cutting
    counters like ``parallel.fallbacks``.
    """

    __slots__ = ("_lock", "_metrics")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS
                  ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """One JSON-able dict of every metric, stamped with the schema."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        counters, gauges, histograms = {}, {}, {}
        for name, metric in metrics:
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "schema": OBS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every metric, keeping registrations (and cached handles)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

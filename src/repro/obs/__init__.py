"""Observability layer: metrics registry, span tracing, query probes.

The cross-cutting telemetry subsystem (PR 7).  Three pieces:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` (fixed log-spaced
  buckets, p50/p90/p99 snapshots), exported as one JSON-able dict
  stamped :data:`OBS_SCHEMA`.
* :mod:`repro.obs.trace` — ``with trace("route"):`` span timing with a
  shared no-op singleton when disabled, :class:`QueryProbe` per-query
  stage collection, and the process-lifetime :func:`global_registry`
  that hosts counters like ``parallel.fallbacks``.
* The gating rule: latency recording is opt-in
  (``ClimberConfig(telemetry=True)`` / ``Telemetry(enabled=True)``) and
  costs one attribute lookup when off; *logical* counters (DFS access
  volume, parallel fallbacks) are always on — parity suites and BENCH
  artifacts depend on them.

Entry points on the index: ``ClimberIndex.stats()``, ``reset_stats()``
and ``explain_query()``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    OBS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TELEMETRY,
    QueryProbe,
    Span,
    Telemetry,
    global_registry,
    global_telemetry,
    trace,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "OBS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "QueryProbe",
    "Span",
    "Telemetry",
    "global_registry",
    "global_telemetry",
    "trace",
]

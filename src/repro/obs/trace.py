"""Span tracing and per-query probes on top of the metrics registry.

The gating contract — what "zero overhead when disabled" means here:

* Every :class:`Telemetry` carries a plain ``enabled`` bool attribute.
  Hot paths hold the telemetry object in a local and branch on
  ``tel.enabled`` — disabled mode costs one attribute lookup plus the
  branch, nothing else (no lock, no clock read, no allocation).
  ``trace()`` on a disabled telemetry returns the shared
  :data:`NULL_SPAN` singleton, so even un-gated ``with tel.trace(...)``
  blocks allocate nothing.
* Logical counters are *not* gated.  The DFS access-volume counters and
  the ``parallel.fallbacks`` counter are correctness/diagnostic surfaces
  that parity tests and BENCH artifacts depend on; they always record.
  Only latency spans, histograms and per-query probes honour
  ``enabled``.
* Telemetry objects hold locks and must not cross process boundaries.
  :meth:`Telemetry.wrap_tasks` is therefore only applied by callers when
  the executor shares memory (see ``core/builder.py``).
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import OBS_SCHEMA, MetricsRegistry

__all__ = [
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "QueryProbe",
    "Span",
    "Telemetry",
    "global_registry",
    "global_telemetry",
    "trace",
]


class _NullSpan:
    """Shared no-op context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class Span:
    """Times a ``with`` block into ``<name>_s`` on a registry histogram."""

    __slots__ = ("_histogram", "_t0", "seconds")

    def __init__(self, histogram) -> None:
        self._histogram = histogram
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._t0
        self._histogram.observe(self.seconds)
        return False


class QueryProbe:
    """Per-query stage breakdown collected along one knn/knn_batch row.

    Not thread-safe and not meant to be: one probe belongs to exactly one
    query row.  ``stages`` maps stage name -> seconds; ``counts`` holds
    auxiliary integers (cache hits/misses deltas, candidate counts).
    ``explain_query`` turns probes into its structured response.
    """

    __slots__ = ("stages", "counts")

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def stage(self, name: str):
        return _ProbeSpan(self, name)

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def add_count(self, name: str, n: int) -> None:
        self.counts[name] = self.counts.get(name, 0) + n


class _ProbeSpan:
    """Times a ``with`` block into one probe stage (accumulating)."""

    __slots__ = ("_probe", "_name", "_t0")

    def __init__(self, probe: QueryProbe, name: str) -> None:
        self._probe = probe
        self._name = name
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._probe.add_stage(self._name, time.perf_counter() - self._t0)
        return False


class Telemetry:
    """A registry plus the enabled flag that gates all latency recording.

    ``Telemetry(enabled=False)`` (the default everywhere) still exposes a
    live registry — always-on counters record through it — but
    :meth:`trace` returns :data:`NULL_SPAN` and :meth:`record_query` /
    :meth:`wrap_tasks` become no-ops, so the query and build hot paths
    pay only the ``tel.enabled`` attribute check.

    ``sample_every=N`` (N > 1) turns enabled mode into 1-in-N sampling for
    the *per-query* surfaces: :meth:`probe` hands out a live probe on every
    Nth call (``None`` otherwise), and :meth:`record_query` for a
    sampled-out query pays only the ``query.count`` increment.  Build
    spans, ``trace`` and ``wrap_tasks`` are unaffected — they are not
    per-query costs.
    """

    __slots__ = ("enabled", "registry", "sample_every", "_probe_tick")

    def __init__(self, enabled: bool = False,
                 registry: MetricsRegistry | None = None,
                 sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self._probe_tick = 0

    def trace(self, name: str):
        """Span over ``<name>_s`` when enabled, the shared no-op otherwise."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self.registry.histogram(name + "_s"))

    def probe(self) -> QueryProbe | None:
        """A fresh :class:`QueryProbe` when enabled and sampled in.

        With ``sample_every=N`` only every Nth call (first call included)
        returns a probe; the rest return ``None`` — identical to disabled
        mode from the caller's perspective.  Call this once per query row,
        from the query's submitting thread (the tick is not locked; probes
        are handed out before any parallel fan-out).
        """
        if not self.enabled:
            return None
        if self.sample_every > 1:
            tick = self._probe_tick
            self._probe_tick = tick + 1
            if tick % self.sample_every:
                return None
        return QueryProbe()

    def wrap_tasks(self, name: str, fn):
        """Wrap an executor task fn with per-task and per-worker timing.

        Records one observation into ``<name>_s`` per task plus
        ``parallel.worker.<thread>.tasks`` / ``...busy_s`` counters keyed
        by the executing thread, surfacing per-worker load from the
        ``core/parallel.py`` executors.  Returns ``fn`` unchanged when
        disabled.  Only safe for shared-memory executors (the wrapper
        closes over locks and is not picklable for process pools).
        """
        if not self.enabled:
            return fn
        histogram = self.registry.histogram(name + "_s")
        registry = self.registry

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                dt = time.perf_counter() - t0
                histogram.observe(dt)
                worker = threading.current_thread().name
                registry.counter(f"parallel.worker.{worker}.tasks").inc()
                registry.counter(f"parallel.worker.{worker}.busy_s").inc(dt)

        return timed

    def record_query(self, stats, probe: QueryProbe | None = None) -> None:
        """Fold one query's stats (and optional probe) into the registry.

        A sampled-out query (``sample_every > 1`` and no probe) pays only
        the ``query.count`` increment — the sampling fast path.
        """
        if not self.enabled:
            return
        reg = self.registry
        reg.counter("query.count").inc()
        if probe is None and self.sample_every > 1:
            return
        reg.counter("query.partitions_probed").inc(len(stats.partitions_loaded))
        reg.counter("query.bytes_read").inc(stats.data_bytes)
        reg.counter("query.records_examined").inc(stats.records_examined)
        failed = getattr(stats, "partitions_failed", ())
        if failed:
            reg.counter("query.degraded").inc()
            reg.counter("query.partitions_failed").inc(len(failed))
        reg.histogram("query.wall_s").observe(stats.wall_seconds)
        if probe is not None:
            for name, seconds in probe.stages.items():
                reg.histogram(f"query.stage.{name}_s").observe(seconds)
            for name, n in probe.counts.items():
                reg.counter(f"query.{name}").inc(n)

    def record_progressive(self, stats, visited: int, planned: int,
                           stopped_early: bool) -> None:
        """Fold one progressive query's coverage outcome into the registry.

        Complements :meth:`record_query` (which the progressive path also
        calls for the shared ``query.*`` surface) with the
        ``query.progressive.*`` counters: how much of the routed plan was
        visited, how much was deliberately forgone to an early stop, and
        how often the stopping rule fired at all.
        """
        if not self.enabled:
            return
        reg = self.registry
        reg.counter("query.progressive.count").inc()
        reg.counter("query.progressive.partitions_visited").inc(visited)
        forgone = len(getattr(stats, "partitions_forgone", ()))
        if forgone:
            reg.counter("query.progressive.partitions_forgone").inc(forgone)
        if stopped_early:
            reg.counter("query.progressive.early_stops").inc()
        if planned:
            reg.histogram("query.progressive.visited_fraction").observe(
                visited / planned
            )

    def snapshot(self) -> dict:
        return {
            "schema": OBS_SCHEMA,
            "enabled": self.enabled,
            "metrics": self.registry.snapshot(),
        }


#: Shared disabled telemetry for call sites that need *some* telemetry
#: object but were handed none.  Its registry is live (always-on counters
#: still record) but no spans/histograms ever fire through it.
NULL_TELEMETRY = Telemetry(enabled=False)

#: Process-lifetime telemetry hosting cross-cutting counters
#: (``parallel.fallbacks``) and anything recorded via the module-level
#: :func:`trace`.  Disabled by default; flip ``global_telemetry().enabled``
#: to capture module-level spans.
_GLOBAL_TELEMETRY = Telemetry(enabled=False)


def global_telemetry() -> Telemetry:
    return _GLOBAL_TELEMETRY


def global_registry() -> MetricsRegistry:
    """The process-lifetime registry (``parallel.fallbacks`` lives here)."""
    return _GLOBAL_TELEMETRY.registry


def trace(name: str):
    """``with trace("route"):`` against the process-lifetime telemetry."""
    return _GLOBAL_TELEMETRY.trace(name)

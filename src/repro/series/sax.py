"""Symbolic Aggregate approXimation (SAX).

SAX (Lin et al., [39] in the paper) quantises each PAA segment mean into
one of ``c`` symbols ("stripes" in the paper's Fig. 1) whose boundaries are
the quantiles of the standard normal distribution — equiprobable for
z-normalised series.  SAX and its multi-resolution extension iSAX are the
representations underlying the DPiSAX and TARDIS baselines.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import norm

from repro.exceptions import ConfigurationError
from repro.series.series import as_matrix

__all__ = [
    "sax_breakpoints",
    "sax_transform",
    "sax_mindist",
    "symbol_bounds",
]

MAX_CARDINALITY_BITS = 16
"""Upper bound on ``log2(cardinality)`` accepted by this module."""


@lru_cache(maxsize=None)
def sax_breakpoints(cardinality: int) -> np.ndarray:
    """The ``cardinality - 1`` breakpoints dividing N(0, 1) into equal-mass stripes.

    ``sax_breakpoints(4)`` is ``[-0.6745, 0.0, 0.6745]``: symbol ``s`` covers
    the value interval ``(bp[s-1], bp[s]]`` with ``bp[-1] = -inf`` and
    ``bp[c-1] = +inf``.
    """
    c = int(cardinality)
    if c < 2 or c > 2**MAX_CARDINALITY_BITS:
        raise ConfigurationError(
            f"cardinality must be in [2, {2**MAX_CARDINALITY_BITS}], got {cardinality}"
        )
    if c & (c - 1):
        raise ConfigurationError(f"cardinality must be a power of two, got {c}")
    qs = np.arange(1, c) / c
    pts = norm.ppf(qs)
    pts.setflags(write=False)
    return pts


def sax_transform(paa: np.ndarray, cardinality: int) -> np.ndarray:
    """Quantise PAA rows into SAX symbol rows.

    Symbols are integers in ``[0, cardinality)``, ordered from the lowest
    stripe upward (the paper's binary labels ``000 .. 111`` read as integers).

    Returns
    -------
    numpy.ndarray
        ``(d, w)`` matrix of ``uint32`` symbols.
    """
    arr = as_matrix(paa)
    bps = sax_breakpoints(cardinality)
    return np.searchsorted(bps, arr, side="left").astype(np.uint32)


def symbol_bounds(symbols: np.ndarray, cardinality: int) -> tuple[np.ndarray, np.ndarray]:
    """Value interval ``[lo, hi]`` covered by each SAX symbol.

    The outermost stripes extend to +-infinity.
    """
    bps = sax_breakpoints(cardinality)
    syms = np.asarray(symbols, dtype=np.int64)
    if syms.min(initial=0) < 0 or syms.max(initial=0) >= cardinality:
        raise ConfigurationError("symbol out of range for cardinality")
    ext = np.concatenate(([-np.inf], bps, [np.inf]))
    return ext[syms], ext[syms + 1]


def sax_mindist(
    sax_x: np.ndarray,
    sax_y: np.ndarray,
    cardinality: int,
    length: int,
) -> float:
    """MINDIST between two SAX words (Lin et al. 2007).

    A lower bound on the Euclidean distance between the original series:
    adjacent or equal symbols contribute zero; otherwise the gap between the
    nearer breakpoints.
    """
    sx = np.asarray(sax_x, dtype=np.int64).ravel()
    sy = np.asarray(sax_y, dtype=np.int64).ravel()
    if sx.shape != sy.shape:
        raise ValueError("SAX words must have the same word length")
    bps = sax_breakpoints(cardinality)
    lo = np.minimum(sx, sy)
    hi = np.maximum(sx, sy)
    adjacent = (hi - lo) <= 1
    # For non-adjacent symbols the cell gap is bp[hi - 1] - bp[lo].
    gap = np.where(adjacent, 0.0, bps[np.maximum(hi - 1, 0)] - bps[np.minimum(lo, bps.shape[0] - 1)])
    w = sx.shape[0]
    return float(np.sqrt(length / w) * np.sqrt(np.sum(gap**2)))

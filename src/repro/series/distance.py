"""Distance functions over raw data series.

The Euclidean distance (Def. 3) is the similarity measure the paper uses
end-to-end: for ground truth, for the final record-level refinement inside
partitions, and between PAA signatures and pivots.  Everything here is
vectorised; the chunked scan is the workhorse of exact search over datasets
that do not comfortably fit one ``(d, n)`` temporary.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.series.series import as_matrix

__all__ = [
    "euclidean",
    "squared_euclidean",
    "pairwise_euclidean",
    "knn_bruteforce",
    "knn_merge",
]


def euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean distance between two equal-length series (Def. 3)."""
    xv = np.asarray(x, dtype=np.float64).ravel()
    yv = np.asarray(y, dtype=np.float64).ravel()
    if xv.shape != yv.shape:
        raise ValueError(f"length mismatch: {xv.shape[0]} vs {yv.shape[0]}")
    return float(np.sqrt(np.sum((xv - yv) ** 2)))


def squared_euclidean(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between all query/data row pairs.

    Uses the ``||a-b||^2 = ||a||^2 - 2 a.b + ||b||^2`` expansion so the bulk
    of the work is a single matrix multiplication.

    Returns
    -------
    numpy.ndarray
        ``(n_queries, n_data)`` matrix; tiny negative values from floating
        point cancellation are clipped to zero.
    """
    q = as_matrix(queries)
    d = as_matrix(data)
    if q.shape[1] != d.shape[1]:
        raise ValueError(
            f"length mismatch: queries have n={q.shape[1]}, data n={d.shape[1]}"
        )
    sq_q = np.einsum("ij,ij->i", q, q)[:, None]
    sq_d = np.einsum("ij,ij->i", d, d)[None, :]
    cross = q @ d.T
    out = sq_q + sq_d - 2.0 * cross
    np.maximum(out, 0.0, out=out)
    return out


def pairwise_euclidean(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Euclidean distances between all query/data row pairs."""
    return np.sqrt(squared_euclidean(queries, data))


# Candidate sets at or below this row count skip the einsum/GEMM batch
# machinery of squared_euclidean: profile shows its fixed setup cost
# dominating the actual arithmetic for the small per-partition candidate
# sets the CLIMBER query path produces.
SMALL_SCAN_THRESHOLD = 64


def knn_bruteforce(
    query: np.ndarray,
    data: np.ndarray,
    ids: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbours of ``query`` among the rows of ``data``.

    Returns
    -------
    (ids, distances)
        Both sorted ascending by distance, ties broken by id so results are
        deterministic.  Fewer than ``k`` rows simply yields all of them.
    """
    d = as_matrix(data)
    if d.shape[0] <= SMALL_SCAN_THRESHOLD:
        q = as_matrix(query)
        if q.shape[1] != d.shape[1]:
            raise ValueError(
                f"length mismatch: queries have n={q.shape[1]}, "
                f"data n={d.shape[1]}"
            )
        qv = q[0]
        # Same ||a-b||^2 expansion as squared_euclidean, via direct dot
        # products instead of the (1, n) matrix temporaries.
        d2 = np.dot(qv, qv) + (d * d).sum(axis=1) - 2.0 * np.dot(d, qv)
        np.maximum(d2, 0.0, out=d2)
    else:
        d2 = squared_euclidean(query, d)[0]
    ids = np.asarray(ids, dtype=np.int64)
    k_eff = min(k, d2.shape[0])
    # argpartition first: the candidate set is usually much larger than k.
    # Ties at the k-th distance would make the partition's choice arbitrary,
    # so widen the candidate pool to every element at the boundary distance
    # before the deterministic (distance, id) sort.
    part = np.argpartition(d2, k_eff - 1)[:k_eff]
    boundary = d2[part].max()
    pool = np.flatnonzero(d2 <= boundary)
    order = np.lexsort((ids[pool], d2[pool]))[:k_eff]
    chosen = pool[order]
    return ids[chosen], np.sqrt(d2[chosen])


def knn_merge(
    partials: Iterable[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-partition (ids, distances) kNN results into a global top-k.

    This is the reduce step of the distributed scan: each worker returns its
    local top-k and the driver merges them.  Duplicate ids (a record scanned
    twice) keep their smallest distance; the output is deterministically
    ordered by (distance, id), ascending.
    """
    id_parts = []
    dist_parts = []
    for ids, dists in partials:
        id_parts.append(np.asarray(ids, dtype=np.int64).ravel())
        dist_parts.append(np.asarray(dists, dtype=np.float64).ravel())
    if not id_parts or not sum(p.size for p in id_parts):
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    all_ids = np.concatenate(id_parts)
    all_dists = np.concatenate(dist_parts)
    # Dedup keeping the minimum distance per id: sort by (id, distance) and
    # take the first row of every id run.
    by_id = np.lexsort((all_dists, all_ids))
    ids_sorted = all_ids[by_id]
    dists_sorted = all_dists[by_id]
    first = np.ones(ids_sorted.size, dtype=bool)
    first[1:] = ids_sorted[1:] != ids_sorted[:-1]
    ids_unique = ids_sorted[first]
    dists_unique = dists_sorted[first]
    top = np.lexsort((ids_unique, dists_unique))[:k]
    return ids_unique[top], dists_unique[top]

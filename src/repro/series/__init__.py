"""Data-series substrate: containers, normalisation, distances, PAA, SAX, iSAX."""

from repro.series.distance import (
    euclidean,
    knn_bruteforce,
    knn_merge,
    pairwise_euclidean,
    squared_euclidean,
)
from repro.series.isax import ISaxSpace, ISaxWord
from repro.series.normalize import is_znormalized, znormalize
from repro.series.paa import paa_distance_lower_bound, paa_inverse, paa_transform
from repro.series.sax import sax_breakpoints, sax_mindist, sax_transform, symbol_bounds
from repro.series.series import SeriesDataset, as_matrix, series_nbytes
from repro.series.windows import sliding_windows, window_dataset

__all__ = [
    "SeriesDataset",
    "as_matrix",
    "series_nbytes",
    "znormalize",
    "is_znormalized",
    "euclidean",
    "squared_euclidean",
    "pairwise_euclidean",
    "knn_bruteforce",
    "knn_merge",
    "paa_transform",
    "paa_inverse",
    "paa_distance_lower_bound",
    "sax_breakpoints",
    "sax_transform",
    "sax_mindist",
    "symbol_bounds",
    "ISaxSpace",
    "ISaxWord",
    "sliding_windows",
    "window_dataset",
]

"""Data-series containers.

A *data series* (Def. 1 of the paper) is an ordered sequence of real values;
a *data series dataset* (Def. 2) is a collection of ``d`` series, all of the
same length ``n``.  We store a dataset as a single contiguous
``(d, n) float64`` matrix plus integer identifiers, which keeps every
downstream transformation (PAA, pivot distances, Euclidean scans) a
vectorised NumPy operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import DimensionalityError

__all__ = ["SeriesDataset", "as_matrix", "series_nbytes"]

_RECORD_OVERHEAD_BYTES = 16
"""Per-record metadata overhead (id + header slot) charged by the storage
layer when converting record counts to bytes."""


def as_matrix(data: np.ndarray) -> np.ndarray:
    """Validate and coerce ``data`` into a 2-D ``float64`` C-contiguous matrix.

    A single series (1-D array) is promoted to a one-row matrix.

    Raises
    ------
    DimensionalityError
        If ``data`` has more than two dimensions or is empty.
    """
    arr = np.ascontiguousarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionalityError(
            f"expected a 1-D series or (d, n) matrix, got ndim={arr.ndim}"
        )
    if arr.size == 0:
        raise DimensionalityError("dataset must contain at least one value")
    return arr


def series_nbytes(length: int, *, with_overhead: bool = True) -> int:
    """Bytes occupied by one stored data series of ``length`` points.

    The paper sizes partitions against HDFS blocks (64/128 MB).  We express
    capacity in records, so this helper is the records -> bytes conversion
    used by the cost model and the storage layer.
    """
    raw = 8 * length
    return raw + _RECORD_OVERHEAD_BYTES if with_overhead else raw


@dataclass
class SeriesDataset:
    """A fixed-length data-series collection (Def. 2).

    Parameters
    ----------
    values:
        ``(d, n)`` matrix; row ``i`` is series ``ids[i]``.
    ids:
        Unique integer identifiers, one per row.  Defaults to ``0..d-1``.
    name:
        Human-readable dataset name (used in reports).
    """

    values: np.ndarray
    ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.values = as_matrix(self.values)
        if self.ids is None:
            self.ids = np.arange(self.values.shape[0], dtype=np.int64)
        else:
            self.ids = np.asarray(self.ids, dtype=np.int64)
        if self.ids.shape != (self.values.shape[0],):
            raise DimensionalityError(
                f"ids shape {self.ids.shape} does not match "
                f"{self.values.shape[0]} series"
            )

    # -- basic introspection -------------------------------------------------

    @property
    def count(self) -> int:
        """Number of series ``d``."""
        return self.values.shape[0]

    @property
    def length(self) -> int:
        """Length ``n`` of every series."""
        return self.values.shape[1]

    @property
    def nbytes(self) -> int:
        """Stored size of the dataset, including per-record overhead."""
        return self.count * series_nbytes(self.length)

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.values)

    # -- slicing -------------------------------------------------------------

    def take(self, row_indices: np.ndarray, name: str | None = None) -> "SeriesDataset":
        """Return a new dataset containing the given *row positions*."""
        idx = np.asarray(row_indices, dtype=np.int64)
        return SeriesDataset(
            self.values[idx], self.ids[idx], name or self.name
        )

    def sample(
        self, fraction: float, rng: np.random.Generator
    ) -> "SeriesDataset":
        """Uniform random sample of ``fraction`` of the rows (at least 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        k = max(1, int(round(fraction * self.count)))
        idx = rng.choice(self.count, size=k, replace=False)
        return self.take(np.sort(idx), name=f"{self.name}[sample]")

    def split_into_chunks(self, n_chunks: int) -> list["SeriesDataset"]:
        """Split rows into ``n_chunks`` nearly equal contiguous chunks.

        Models a raw dataset already resident on a cluster as a set of
        arbitrary input partitions (the starting point of the paper's
        index-construction workflow, Fig. 6).
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        bounds = np.linspace(0, self.count, n_chunks + 1).astype(np.int64)
        return [
            self.take(np.arange(bounds[i], bounds[i + 1]))
            for i in range(n_chunks)
            if bounds[i + 1] > bounds[i]
        ]

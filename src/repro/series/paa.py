"""Piecewise Aggregate Approximation (PAA).

PAA (Keogh et al., [35] in the paper) is the first step of CLIMBER-FX
(Section IV-B, step 1): a raw series of length ``n`` is divided into ``w``
equal segments and each segment replaced by its mean, reducing
dimensionality from ``n`` to ``w`` (Fig. 3 of the paper).

Two paths are implemented: a fast reshape-based path when ``w`` divides
``n``, and the classic fractional-weight formulation otherwise (a segment
boundary can fall inside a reading, which then contributes proportionally
to both neighbouring segments).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series.series import as_matrix

__all__ = ["paa_transform", "paa_inverse", "paa_distance_lower_bound"]


def _fractional_weights(n: int, w: int) -> np.ndarray:
    """``(w, n)`` weight matrix implementing fractional PAA as one matmul.

    Row ``s`` holds each reading's share of segment ``s``; rows sum to 1 so
    the transform is a true segment mean.
    """
    weights = np.zeros((w, n), dtype=np.float64)
    seg_len = n / w
    for s in range(w):
        start = s * seg_len
        end = (s + 1) * seg_len
        first = int(np.floor(start))
        last = int(np.ceil(end))
        for j in range(first, min(last, n)):
            overlap = min(end, j + 1) - max(start, j)
            if overlap > 0:
                weights[s, j] = overlap
    weights /= seg_len
    return weights


def paa_transform(data: np.ndarray, n_segments: int) -> np.ndarray:
    """PAA signatures of every row of ``data``.

    Parameters
    ----------
    data:
        Series matrix ``(d, n)`` (or a single series).
    n_segments:
        The word length ``w``; must satisfy ``1 <= w <= n``.

    Returns
    -------
    numpy.ndarray
        ``(d, w)`` matrix of segment means.
    """
    arr = as_matrix(data)
    n = arr.shape[1]
    w = int(n_segments)
    if not 1 <= w <= n:
        raise ConfigurationError(
            f"n_segments must be in [1, {n}], got {n_segments}"
        )
    if n % w == 0:
        seg = n // w
        return arr.reshape(arr.shape[0], w, seg).mean(axis=2)
    return arr @ _fractional_weights(n, w).T


def paa_inverse(paa: np.ndarray, length: int) -> np.ndarray:
    """Reconstruct step-function series of ``length`` points from PAA rows.

    The reconstruction repeats each segment mean across its segment — the
    best constant-per-segment approximation of the original series.  Used
    by tests (reconstruction error bounds) and by examples for plotting.
    """
    arr = as_matrix(paa)
    w = arr.shape[1]
    if length < w:
        raise ConfigurationError(f"length {length} < word length {w}")
    # Mirror the fractional-segment layout of the forward transform: point
    # j belongs to the segment containing its midpoint.
    positions = (np.arange(length) + 0.5) * (w / length)
    seg_idx = np.minimum(positions.astype(np.int64), w - 1)
    return arr[:, seg_idx]


def paa_distance_lower_bound(paa_x: np.ndarray, paa_y: np.ndarray, length: int) -> float:
    """The classic PAA lower bound on the Euclidean distance.

    ``sqrt(n/w) * ||PAA(x) - PAA(y)||`` never exceeds ``ED(x, y)`` (Keogh et
    al. 2001).  Used by the Odyssey baseline for exact-search pruning.
    """
    px = np.asarray(paa_x, dtype=np.float64).ravel()
    py = np.asarray(paa_y, dtype=np.float64).ravel()
    if px.shape != py.shape:
        raise ValueError("PAA signatures must have equal word length")
    w = px.shape[0]
    return float(np.sqrt(length / w) * np.sqrt(np.sum((px - py) ** 2)))

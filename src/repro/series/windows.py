"""Subsequence window extraction.

The paper's motivating applications (ECG monitors, weblog traces, space
telemetry — §I) produce one long series per source; similarity search
operates over fixed-length *subsequences* of it.  This module turns a long
series into a window dataset, the preprocessing step the DNA pipeline of
[12] applies and the ChainLink system [5] builds on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series.normalize import znormalize
from repro.series.series import SeriesDataset

__all__ = ["sliding_windows", "window_dataset"]


def sliding_windows(
    series: np.ndarray, window: int, stride: int = 1
) -> np.ndarray:
    """All windows of ``window`` points taken every ``stride`` steps.

    Returns a read-only **view** when possible (no copy): ``(n_windows,
    window)`` where ``n_windows = 1 + (len(series) - window) // stride``.

    >>> sliding_windows(np.arange(5.0), window=3, stride=2)
    array([[0., 1., 2.],
           [2., 3., 4.]])
    """
    arr = np.asarray(series, dtype=np.float64).ravel()
    if window < 1 or window > arr.shape[0]:
        raise ConfigurationError(
            f"window must be in [1, {arr.shape[0]}], got {window}"
        )
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    n_windows = 1 + (arr.shape[0] - window) // stride
    view = np.lib.stride_tricks.sliding_window_view(arr, window)[::stride]
    view = view[:n_windows]
    view.setflags(write=False)
    return view


def window_dataset(
    series: np.ndarray,
    window: int,
    stride: int = 1,
    *,
    normalize: bool = True,
    name: str = "windows",
) -> SeriesDataset:
    """Build a :class:`SeriesDataset` of (optionally z-normalised) windows.

    Window ``i`` covers ``series[i * stride : i * stride + window]``; its
    id is the start offset ``i * stride``, so query answers point straight
    back into the source series.
    """
    views = sliding_windows(series, window, stride)
    values = znormalize(views) if normalize else views.copy()
    ids = np.arange(views.shape[0], dtype=np.int64) * stride
    return SeriesDataset(values, ids=ids, name=name)

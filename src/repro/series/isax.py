"""indexable SAX (iSAX) with per-segment cardinality.

iSAX (Shieh & Keogh, [54] in the paper) lets each segment carry its own
cardinality: a word like ``[00_2, 0103_4, 10_2, 1_1]`` (paper Fig. 1(b))
stores, per segment, a symbol together with the number of bits used for it.
Lower-cardinality symbols are *prefixes* of higher-cardinality ones, which
is what makes the representation indexable: a tree node's word covers every
series whose full-resolution symbols share those prefixes.

We store each series' symbols once at a fixed maximum cardinality
(``2**max_bits``); any coarser word is obtained by right-shifting.  This is
the standard trick used by iSAX 2.0-style implementations and is what the
DPiSAX and TARDIS baselines and the Odyssey exact searcher build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series.sax import sax_breakpoints, sax_transform
from repro.series.series import as_matrix

__all__ = ["ISaxWord", "ISaxSpace"]


@dataclass(frozen=True)
class ISaxWord:
    """An iSAX word: per-segment ``(symbol, bits)`` pairs.

    ``bits[i] == 0`` means segment ``i`` is a wildcard (matches anything),
    which appears at the root of iSAX trees.
    """

    symbols: tuple[int, ...]
    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.symbols) != len(self.bits):
            raise ConfigurationError("symbols and bits must have equal length")
        for s, b in zip(self.symbols, self.bits):
            if b < 0:
                raise ConfigurationError(f"negative bit width {b}")
            if s < 0 or (b < 63 and s >= (1 << b)):
                raise ConfigurationError(f"symbol {s} out of range for {b} bits")

    @property
    def word_length(self) -> int:
        return len(self.symbols)

    def covers(self, other: "ISaxWord") -> bool:
        """True if every series matching ``other`` also matches ``self``.

        Requires ``other`` to be at least as refined on every segment.
        """
        for s, b, os, ob in zip(self.symbols, self.bits, other.symbols, other.bits):
            if ob < b:
                return False
            if (os >> (ob - b)) != s:
                return False
        return True

    def split(self, segment: int) -> tuple["ISaxWord", "ISaxWord"]:
        """Promote ``segment`` by one bit, yielding the two child words."""
        if not 0 <= segment < self.word_length:
            raise ConfigurationError(f"segment {segment} out of range")
        symbols0 = list(self.symbols)
        bits = list(self.bits)
        symbols0[segment] <<= 1
        bits[segment] += 1
        symbols1 = list(symbols0)
        symbols1[segment] |= 1
        return (
            ISaxWord(tuple(symbols0), tuple(bits)),
            ISaxWord(tuple(symbols1), tuple(bits)),
        )

    def __str__(self) -> str:
        parts = []
        for s, b in zip(self.symbols, self.bits):
            parts.append("*" if b == 0 else f"{s:0{b}b}")
        return "[" + ",".join(parts) + "]"


class ISaxSpace:
    """Fixed-resolution iSAX universe for one dataset configuration.

    Parameters
    ----------
    word_length:
        Number of PAA segments ``w``.
    series_length:
        Raw series length ``n`` (needed by the MINDIST scaling factor).
    max_bits:
        Full-resolution cardinality is ``2**max_bits`` (paper defaults use
        small words with cardinality up to 256, i.e. 8 bits).
    """

    def __init__(self, word_length: int, series_length: int, max_bits: int = 8):
        if word_length < 1:
            raise ConfigurationError("word_length must be >= 1")
        if max_bits < 1 or max_bits > 16:
            raise ConfigurationError("max_bits must be in [1, 16]")
        if series_length < word_length:
            raise ConfigurationError("series_length must be >= word_length")
        self.word_length = word_length
        self.series_length = series_length
        self.max_bits = max_bits
        self.max_cardinality = 1 << max_bits

    # -- encoding -------------------------------------------------------------

    def encode_paa(self, paa: np.ndarray) -> np.ndarray:
        """Full-resolution symbols ``(d, w) uint32`` for PAA rows."""
        arr = as_matrix(paa)
        if arr.shape[1] != self.word_length:
            raise ConfigurationError(
                f"PAA word length {arr.shape[1]} != space word length {self.word_length}"
            )
        return sax_transform(arr, self.max_cardinality)

    def root_word(self) -> ISaxWord:
        """The all-wildcard word covering the entire space."""
        return ISaxWord((0,) * self.word_length, (0,) * self.word_length)

    def word_at(self, full_symbols: np.ndarray, bits: tuple[int, ...]) -> ISaxWord:
        """Coarsen one full-resolution symbol row to the given bit widths."""
        syms = np.asarray(full_symbols, dtype=np.int64).ravel()
        if syms.shape[0] != self.word_length:
            raise ConfigurationError("symbol row has wrong word length")
        out = tuple(
            int(s) >> (self.max_bits - b) if b else 0
            for s, b in zip(syms, bits)
        )
        return ISaxWord(out, tuple(bits))

    def matches(self, word: ISaxWord, full_symbols: np.ndarray) -> np.ndarray:
        """Boolean mask of full-resolution rows covered by ``word``."""
        syms = np.atleast_2d(np.asarray(full_symbols, dtype=np.int64))
        mask = np.ones(syms.shape[0], dtype=bool)
        for i, (s, b) in enumerate(zip(word.symbols, word.bits)):
            if b == 0:
                continue
            mask &= (syms[:, i] >> (self.max_bits - b)) == s
        return mask

    # -- lower bound ------------------------------------------------------------

    def mindist_paa(self, paa_query: np.ndarray, word: ISaxWord) -> float:
        """MINDIST lower bound between a query's PAA and an iSAX word region.

        Each segment of ``word`` denotes a value interval; the segment
        contribution is the distance from the query's PAA value to that
        interval (zero if inside).  Scaled by ``sqrt(n/w)`` this lower-bounds
        the true Euclidean distance to *any* series covered by the word —
        the pruning rule of iSAX-family exact search (used by Odyssey).
        """
        q = np.asarray(paa_query, dtype=np.float64).ravel()
        if q.shape[0] != self.word_length:
            raise ConfigurationError("query PAA has wrong word length")
        total = 0.0
        for i, (s, b) in enumerate(zip(word.symbols, word.bits)):
            if b == 0:
                continue
            bps = sax_breakpoints(1 << b)
            ext_lo = -np.inf if s == 0 else bps[s - 1]
            ext_hi = np.inf if s == (1 << b) - 1 else bps[s]
            v = q[i]
            if v < ext_lo:
                total += (ext_lo - v) ** 2
            elif v > ext_hi:
                total += (v - ext_hi) ** 2
        return float(
            np.sqrt(self.series_length / self.word_length) * np.sqrt(total)
        )

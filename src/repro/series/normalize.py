"""Z-normalisation of data series.

Data-series similarity search conventionally z-normalises each series
(mean 0, standard deviation 1) so that shape, not offset or amplitude,
drives similarity.  All paper datasets are z-normalised before indexing.
"""

from __future__ import annotations

import numpy as np

from repro.series.series import as_matrix

__all__ = ["znormalize", "is_znormalized"]

_FLAT_STD_EPSILON = 1e-9
"""Relative flatness threshold: a series whose standard deviation is below
``_FLAT_STD_EPSILON * max(1, max|x|)`` is considered constant and mapped to
all zeros.  The threshold is relative because for large-magnitude values the
centred residuals ``x - mean`` are dominated by floating-point cancellation
noise, and dividing that noise by a tiny std would fabricate a signal."""


def znormalize(data: np.ndarray) -> np.ndarray:
    """Z-normalise each row of ``data`` to zero mean and unit variance.

    Constant rows (zero variance) become all-zero rows rather than NaNs,
    which matches how data-series systems treat flat-line segments.

    Parameters
    ----------
    data:
        A single series or a ``(d, n)`` matrix.

    Returns
    -------
    numpy.ndarray
        A new matrix of the same shape as the validated input.
    """
    arr = as_matrix(data)
    mean = arr.mean(axis=1, keepdims=True)
    std = arr.std(axis=1, keepdims=True)
    scale = np.maximum(1.0, np.abs(arr).max(axis=1, keepdims=True))
    flat = std < _FLAT_STD_EPSILON * scale
    safe_std = np.where(flat, 1.0, std)
    out = (arr - mean) / safe_std
    if flat.any():
        out[flat[:, 0]] = 0.0
    return out


def is_znormalized(data: np.ndarray, *, atol: float = 1e-6) -> bool:
    """Check whether every row has ~zero mean and ~unit (or zero) std."""
    arr = as_matrix(data)
    means = arr.mean(axis=1)
    stds = arr.std(axis=1)
    unit = np.abs(stds - 1.0) <= atol
    flat = stds <= atol
    return bool(np.all(np.abs(means) <= atol) and np.all(unit | flat))

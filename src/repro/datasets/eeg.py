"""Synthetic stand-in for the Seizure EEG dataset.

The paper's EEG dataset "contains records from dogs and humans with
naturally occurring epilepsy ... sampled from 16 electrodes at 400 Hz",
split into 256-point windows.  We synthesise electrophysiologically
plausible windows instead.

Clinical EEG is dominated by *stereotyped graphoelements*: sleep spindles,
K-complexes, vertex waves, and — ictally — 3 Hz spike-and-wave discharges
all recur with nearly identical morphology.  The generator therefore draws
each window from a per-channel dictionary of such templates:

* every channel gets ``templates_per_channel`` background templates (band
  mixtures over the classic delta/theta/alpha/beta rhythms with fixed
  phases) plus a handful of ictal spike-and-wave templates,
* a window is a template with small amplitude jitter plus 1/f ("pink")
  broadband noise.

The recurrence of templates produces the dense similarity neighbourhoods
that the paper's billion-window corpora have (a query's k-NN set lives in
a tiny ball), which is the property its recall experiments exercise; the
ictal/background dichotomy gives the labels used by the EEG example.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, znormalize

__all__ = ["eeg_dataset", "PAPER_EEG_LENGTH", "EEG_SAMPLE_RATE_HZ"]

PAPER_EEG_LENGTH = 256
"""Window length used by the paper's EEG experiments."""

EEG_SAMPLE_RATE_HZ = 400.0
"""Sampling rate of the paper's recordings."""

_BANDS_HZ = ((1.0, 4.0), (4.0, 8.0), (8.0, 13.0), (13.0, 30.0))


def _pink_noise(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Approximate 1/f noise via spectrally shaped white noise."""
    count, length = shape
    white = rng.standard_normal(shape)
    spectrum = np.fft.rfft(white, axis=1)
    freqs = np.fft.rfftfreq(length, d=1.0 / EEG_SAMPLE_RATE_HZ)
    freqs[0] = freqs[1]
    spectrum /= np.sqrt(freqs)
    return np.fft.irfft(spectrum, n=length, axis=1)


def _spike_wave(
    rng: np.random.Generator, t: np.ndarray
) -> np.ndarray:
    """One ictal 3 Hz spike-and-wave template (sharpened sinusoid)."""
    phase = rng.uniform(0.0, 2.0 * np.pi)
    wave = np.sin(2.0 * np.pi * 3.0 * t + phase)
    return rng.uniform(4.0, 7.0) * np.sign(wave) * np.abs(wave) ** 0.3


def eeg_dataset(
    count: int,
    length: int = PAPER_EEG_LENGTH,
    *,
    n_channels: int = 16,
    templates_per_channel: int = 12,
    seizure_rate: float = 0.15,
    amplitude_jitter: float = 0.15,
    noise_scale: float = 0.5,
    seed: int = 0,
    normalize: bool = True,
    return_labels: bool = False,
) -> SeriesDataset | tuple[SeriesDataset, np.ndarray]:
    """Generate ``count`` EEG windows of ``length`` samples.

    Parameters
    ----------
    n_channels:
        Simulated electrodes (the paper's montage has 16); each carries its
        own band-weight profile and template dictionary.
    templates_per_channel:
        Background graphoelement templates per channel; smaller values give
        denser similarity neighbourhoods.
    seizure_rate:
        Fraction of windows drawn from ictal spike-and-wave templates.
    amplitude_jitter:
        Relative amplitude variation of each template instance.
    noise_scale:
        Amplitude of the additive 1/f broadband noise.
    return_labels:
        Also return a boolean array marking the seizure windows.
    """
    if count < 1 or length < 8:
        raise ConfigurationError("count must be >= 1 and length >= 8")
    if not 0.0 <= seizure_rate <= 1.0:
        raise ConfigurationError("seizure_rate must lie in [0, 1]")
    if templates_per_channel < 1:
        raise ConfigurationError("templates_per_channel must be >= 1")
    if not 0.0 <= amplitude_jitter < 1.0:
        raise ConfigurationError("amplitude_jitter must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    t = np.arange(length) / EEG_SAMPLE_RATE_HZ

    background: list[np.ndarray] = []
    ictal: list[np.ndarray] = []
    for _ in range(max(1, n_channels)):
        weights = rng.uniform(0.3, 1.2, size=len(_BANDS_HZ))
        for _ in range(templates_per_channel):
            signal = np.zeros(length)
            for w, (lo, hi) in zip(weights, _BANDS_HZ):
                freq = rng.uniform(lo, hi)
                phase = rng.uniform(0.0, 2.0 * np.pi)
                signal += w * np.sin(2.0 * np.pi * freq * t + phase)
            background.append(signal)
        for _ in range(max(2, templates_per_channel // 4)):
            ictal.append(_spike_wave(rng, t))
    bg_pool = np.array(background)
    sz_pool = np.array(ictal)

    is_seizure = rng.random(count) < seizure_rate
    rows = np.empty((count, length), dtype=np.float64)
    for i in range(count):
        pool = sz_pool if is_seizure[i] else bg_pool
        template = pool[rng.integers(0, pool.shape[0])]
        rows[i] = template * rng.uniform(
            1.0 - amplitude_jitter, 1.0 + amplitude_jitter
        )
    rows += noise_scale * _pink_noise(rng, (count, length))
    values = znormalize(rows) if normalize else rows
    dataset = SeriesDataset(values, name="EEG")
    if return_labels:
        return dataset, is_seizure
    return dataset

"""Dataset registry, query sampling, and paper-scale conversions.

The benchmark harness addresses datasets by the names the paper uses
(``RandomWalk``, ``TexMex``, ``DNA``, ``EEG``) and sizes by "GB
equivalents": the paper's x-axes are dataset sizes in GB, so we provide
the conversion between our scaled-down record counts and those axes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, series_nbytes

from repro.datasets.dna import PAPER_DNA_LENGTH, dna_dataset
from repro.datasets.eeg import PAPER_EEG_LENGTH, eeg_dataset
from repro.datasets.randomwalk import PAPER_RANDOMWALK_LENGTH, random_walk_dataset
from repro.datasets.texmex import PAPER_TEXMEX_LENGTH, texmex_like_dataset

__all__ = [
    "DATASET_NAMES",
    "PAPER_LENGTHS",
    "make_dataset",
    "sample_queries",
    "gb_to_count",
    "count_to_gb",
]

DATASET_NAMES = ("RandomWalk", "TexMex", "DNA", "EEG")

PAPER_LENGTHS = {
    "RandomWalk": PAPER_RANDOMWALK_LENGTH,
    "TexMex": PAPER_TEXMEX_LENGTH,
    "DNA": PAPER_DNA_LENGTH,
    "EEG": PAPER_EEG_LENGTH,
}

_FACTORIES: dict[str, Callable[..., SeriesDataset]] = {
    "RandomWalk": random_walk_dataset,
    "TexMex": texmex_like_dataset,
    "DNA": dna_dataset,
    "EEG": eeg_dataset,
}


def make_dataset(
    name: str, count: int, length: int | None = None, *, seed: int = 0
) -> SeriesDataset:
    """Build one of the paper's four datasets by name.

    ``length`` defaults to the length the paper uses for that dataset.
    """
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        )
    return _FACTORIES[name](count, length or PAPER_LENGTHS[name], seed=seed)


def sample_queries(
    dataset: SeriesDataset, n_queries: int, *, seed: int = 1
) -> SeriesDataset:
    """Sample query objects from a dataset.

    The paper's protocol: "the query objects are randomly selected from the
    entire dataset" and results averaged over 50 queries.
    """
    if n_queries < 1:
        raise ConfigurationError("n_queries must be >= 1")
    if n_queries > dataset.count:
        raise ConfigurationError(
            f"cannot draw {n_queries} queries from {dataset.count} series"
        )
    rng = np.random.default_rng(seed)
    idx = rng.choice(dataset.count, size=n_queries, replace=False)
    return dataset.take(np.sort(idx), name=f"{dataset.name}[queries]")


def gb_to_count(size_gb: float, length: int) -> int:
    """Number of series of ``length`` points occupying ``size_gb`` gigabytes.

    Used to translate the paper's x-axes (200 GB .. 1.5 TB) into record
    counts for the cluster cost model.
    """
    if size_gb <= 0:
        raise ConfigurationError("size_gb must be positive")
    return max(1, int(size_gb * 1e9 / series_nbytes(length)))


def count_to_gb(count: int, length: int) -> float:
    """Gigabytes occupied by ``count`` series of ``length`` points."""
    return count * series_nbytes(length) / 1e9

"""Synthetic stand-in for the UCSC human-genome DNA dataset.

The paper converts human genome assemblies to data series "as in [12]"
(iSAX 2.0): each DNA string is chopped into subsequences and each base is
mapped to a numeric step whose cumulative sum forms the series.  Records
are 192 points long.

We synthesise genomes instead of downloading UCSC assemblies: random base
sequences with *planted repeated motifs* (genomes are highly repetitive —
ALU repeats and segmental duplications — and that repetitiveness is exactly
what gives DNA series their cluster structure).  The conversion pipeline
(base -> step -> cumulative sum -> z-normalise) is the real one.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, znormalize

__all__ = ["dna_dataset", "dna_series_from_bases", "PAPER_DNA_LENGTH", "BASE_STEPS"]

PAPER_DNA_LENGTH = 192
"""Record length used by the paper's DNA experiments."""

BASE_STEPS = {"A": 2.0, "C": 1.0, "G": -1.0, "T": -2.0}
"""Numeric step per nucleotide (the iSAX 2.0 convention: complementary
bases get opposite signs, purines larger magnitude than pyrimidines)."""

_BASES = np.array(["A", "C", "G", "T"])
_STEP_LOOKUP = np.array([BASE_STEPS[b] for b in _BASES])


def dna_series_from_bases(bases: str) -> np.ndarray:
    """Convert one DNA string to its cumulative-walk data series.

    >>> dna_series_from_bases("AACG")
    array([2., 4., 5., 4.])
    """
    idx = np.frombuffer(bases.encode("ascii"), dtype=np.uint8)
    table = np.zeros(256, dtype=np.float64)
    for b, step in BASE_STEPS.items():
        table[ord(b)] = step
    unknown = ~np.isin(idx, [ord(b) for b in BASE_STEPS])
    if unknown.any():
        raise ConfigurationError(
            f"unknown nucleotide {bases[int(np.argmax(unknown))]!r}"
        )
    return np.cumsum(table[idx])


def dna_dataset(
    count: int,
    length: int = PAPER_DNA_LENGTH,
    *,
    motif_count: int = 32,
    motif_rate: float = 0.6,
    mutation_rate: float = 0.05,
    seed: int = 0,
    normalize: bool = True,
    return_labels: bool = False,
) -> SeriesDataset | tuple[SeriesDataset, np.ndarray]:
    """Generate ``count`` DNA subsequence series of ``length`` points.

    A pool of ``motif_count`` random motifs is generated; each record is,
    with probability ``motif_rate``, a motif copy with point mutations
    (rate ``mutation_rate``), otherwise a fresh random sequence.  The base
    string is then converted via the cumulative-walk pipeline.

    With ``return_labels=True`` an int array is also returned: the motif id
    of each record, or -1 for background sequences (used by the DNA example
    to verify repeat-family retrieval).
    """
    if count < 1 or length < 2:
        raise ConfigurationError("count must be >= 1 and length >= 2")
    if not 0.0 <= motif_rate <= 1.0 or not 0.0 <= mutation_rate <= 1.0:
        raise ConfigurationError("rates must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    motifs = rng.integers(0, 4, size=(max(1, motif_count), length))
    rows = np.empty((count, length), dtype=np.float64)
    labels = np.full(count, -1, dtype=np.int64)
    for i in range(count):
        if rng.random() < motif_rate:
            motif_id = int(rng.integers(0, motifs.shape[0]))
            seq = motifs[motif_id].copy()
            mutate = rng.random(length) < mutation_rate
            seq[mutate] = rng.integers(0, 4, size=int(mutate.sum()))
            labels[i] = motif_id
        else:
            seq = rng.integers(0, 4, size=length)
        rows[i] = np.cumsum(_STEP_LOOKUP[seq])
    values = znormalize(rows) if normalize else rows
    dataset = SeriesDataset(values, name="DNA")
    if return_labels:
        return dataset, labels
    return dataset

"""Workload generators standing in for the paper's four datasets.

See DESIGN.md §1 for the substitution rationale: each generator produces
series of the paper's length with the geometric structure (clusters,
repeats, bursts) that drives the index behaviour under evaluation.
"""

from repro.datasets.dna import (
    BASE_STEPS,
    PAPER_DNA_LENGTH,
    dna_dataset,
    dna_series_from_bases,
)
from repro.datasets.eeg import EEG_SAMPLE_RATE_HZ, PAPER_EEG_LENGTH, eeg_dataset
from repro.datasets.randomwalk import PAPER_RANDOMWALK_LENGTH, random_walk_dataset
from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_LENGTHS,
    count_to_gb,
    gb_to_count,
    make_dataset,
    sample_queries,
)
from repro.datasets.texmex import PAPER_TEXMEX_LENGTH, texmex_like_dataset

__all__ = [
    "random_walk_dataset",
    "texmex_like_dataset",
    "dna_dataset",
    "dna_series_from_bases",
    "eeg_dataset",
    "make_dataset",
    "sample_queries",
    "gb_to_count",
    "count_to_gb",
    "DATASET_NAMES",
    "PAPER_LENGTHS",
    "PAPER_RANDOMWALK_LENGTH",
    "PAPER_TEXMEX_LENGTH",
    "PAPER_DNA_LENGTH",
    "PAPER_EEG_LENGTH",
    "EEG_SAMPLE_RATE_HZ",
    "BASE_STEPS",
]

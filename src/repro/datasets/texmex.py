"""Synthetic stand-in for the Texmex SIFT corpus.

The paper evaluates on the Texmex corpus [31]: one billion SIFT image
feature vectors of 128 dimensions.  SIFT descriptors are non-negative
gradient-orientation histograms with strong cluster structure (patches of
similar texture yield similar descriptors).  We cannot ship the corpus, so
this module synthesises vectors with the same geometry:

* 128 dimensions, non-negative, heavy-tailed per-dimension marginals
  (gamma-distributed, like gradient magnitudes),
* drawn around a configurable number of cluster prototypes with per-cluster
  noise, so nearest-neighbour structure is meaningful,
* z-normalised when used as data series, matching how the paper feeds image
  vectors to a data-series index.

The substitution preserves the behaviour under test — recall of an index
over clustered, non-Gaussian 128-d vectors — without the 128 GB download.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, znormalize

__all__ = ["texmex_like_dataset", "PAPER_TEXMEX_LENGTH"]

PAPER_TEXMEX_LENGTH = 128
"""SIFT descriptor dimensionality used by the paper."""


def texmex_like_dataset(
    count: int,
    length: int = PAPER_TEXMEX_LENGTH,
    *,
    n_clusters: int | None = None,
    cluster_spread: float = 0.2,
    seed: int = 0,
    normalize: bool = True,
) -> SeriesDataset:
    """Generate ``count`` SIFT-like feature vectors of ``length`` dimensions.

    Parameters
    ----------
    n_clusters:
        Number of descriptor prototypes; ``None`` keeps a constant density
        of ~200 vectors per prototype.  At billion scale (the paper's
        corpus) each query's k-NN neighbourhood is minuscule relative to
        the data spread; a scaled-down stand-in must keep neighbourhoods
        similarly tight, hence the dense default.
    cluster_spread:
        Relative noise around each prototype (0 = identical copies).
    """
    if count < 1 or length < 2:
        raise ConfigurationError("count must be >= 1 and length >= 2")
    if n_clusters is None:
        n_clusters = max(16, count // 200)
    if n_clusters < 1:
        raise ConfigurationError("n_clusters must be >= 1")
    rng = np.random.default_rng(seed)
    # Prototypes: gamma marginals mimic gradient-magnitude histograms.
    prototypes = rng.gamma(shape=2.0, scale=1.0, size=(n_clusters, length))
    assignment = rng.integers(0, n_clusters, size=count)
    base = prototypes[assignment]
    noise = rng.gamma(shape=2.0, scale=1.0, size=(count, length))
    vecs = (1.0 - cluster_spread) * base + cluster_spread * noise
    # SIFT vectors are conventionally L2-normalised then quantised to uint8;
    # we keep floats but apply the L2 step for the same scale-invariance.
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    vecs = vecs / norms
    values = znormalize(vecs) if normalize else vecs
    return SeriesDataset(values, name="TexMex")

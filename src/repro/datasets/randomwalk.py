"""RandomWalk benchmark generator.

The RandomWalk benchmark (cumulative sums of unit Gaussian steps) is the
standard data-series indexing benchmark used by iSAX, TARDIS, DPiSAX and
the paper itself ("this dataset contains up to 1 billion data series, each
having 256 points").  We generate scaled-down versions of it with the same
statistical structure.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset, znormalize

__all__ = ["random_walk_dataset", "PAPER_RANDOMWALK_LENGTH"]

PAPER_RANDOMWALK_LENGTH = 256
"""Series length used by the paper's RandomWalk experiments."""


def random_walk_dataset(
    count: int,
    length: int = PAPER_RANDOMWALK_LENGTH,
    *,
    seed: int = 0,
    normalize: bool = True,
    chunk_rows: int = 100_000,
) -> SeriesDataset:
    """Generate ``count`` random-walk series of ``length`` points.

    Each series is the cumulative sum of i.i.d. N(0, 1) steps,
    z-normalised by default (the conventional preprocessing for
    data-series indexes).

    Parameters
    ----------
    count, length:
        Dataset dimensions (Def. 2).
    seed:
        Seed for the underlying :class:`numpy.random.Generator`.
    normalize:
        Apply per-series z-normalisation.
    chunk_rows:
        Generation chunk size, bounding peak temporary memory.
    """
    if count < 1 or length < 2:
        raise ConfigurationError("count must be >= 1 and length >= 2")
    rng = np.random.default_rng(seed)
    out = np.empty((count, length), dtype=np.float64)
    for start in range(0, count, chunk_rows):
        stop = min(start + chunk_rows, count)
        steps = rng.standard_normal((stop - start, length))
        walks = np.cumsum(steps, axis=1)
        out[start:stop] = znormalize(walks) if normalize else walks
    return SeriesDataset(out, name="RandomWalk")

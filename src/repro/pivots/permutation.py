"""Pivot permutations and Pivot Permutation Prefixes (Def. 5).

Given ``r`` pivots in PAA space, every object induces a *pivot
permutation*: the pivot ids sorted by ascending distance from the object
(Section IV-A, Fig. 2).  The *Pivot Permutation Prefix* (PPP) keeps only
the ``m`` nearest pivots, avoiding excessive space fragmentation while
preserving locality.

Everything operates on batches: signatures for a ``(d, w)`` PAA matrix are
computed with one distance matrix and one partial sort.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.exceptions import ConfigurationError
from repro.series import as_matrix

__all__ = ["pivot_distance_matrix", "full_permutations", "permutation_prefixes"]


def pivot_distance_matrix(paa: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every object to every pivot.

    Squared distances order identically to true distances, so ranking uses
    them directly and skips ``d * r`` square roots.  Computed by scipy's
    C ``cdist`` kernel (direct per-pair differences — no ``(d, r)``
    norm-expansion temporaries, and at least as accurate as the
    ``||a||^2 - 2ab + ||b||^2`` form it replaced).
    """
    p = as_matrix(pivots)
    q = as_matrix(paa)
    if p.shape[1] != q.shape[1]:
        raise ConfigurationError(
            f"PAA word length {q.shape[1]} != pivot word length {p.shape[1]}"
        )
    return cdist(q, p, "sqeuclidean")


def full_permutations(paa: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """The complete pivot permutation of every object.

    Returns
    -------
    numpy.ndarray
        ``(d, r)`` int32 matrix; row ``i`` lists all pivot ids sorted by
        ascending distance from object ``i`` (ties broken by pivot id, so
        permutations are deterministic).
    """
    d2 = pivot_distance_matrix(paa, pivots)
    r = d2.shape[1]
    ids = np.broadcast_to(np.arange(r, dtype=np.int64), d2.shape)
    order = np.lexsort((ids, d2), axis=1)
    return order.astype(np.int32)


def permutation_prefixes(
    paa: np.ndarray,
    pivots: np.ndarray,
    prefix_length: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pivot Permutation Prefixes (Def. 5) of every object.

    Parameters
    ----------
    prefix_length:
        ``m`` in the paper; must satisfy ``1 <= m <= r``.
    out:
        Optional preallocated ``(d, m)`` integer output the signatures are
        written into (the builder's streamed conversion passes slices of
        one full-dataset array); allocated fresh when omitted.

    Returns
    -------
    numpy.ndarray
        ``(d, m)`` int32 matrix (or ``out``) of the ``m`` nearest pivot
        ids per object, ordered by ascending distance (rank-sensitive
        order).
    """
    d2 = pivot_distance_matrix(paa, pivots)
    r = d2.shape[1]
    m = int(prefix_length)
    if not 1 <= m <= r:
        raise ConfigurationError(f"prefix_length must be in [1, {r}], got {m}")
    if out is not None and out.shape != (d2.shape[0], m):
        raise ConfigurationError(
            f"out must have shape ({d2.shape[0]}, {m}), got {out.shape}"
        )
    if m == r:
        ranked = full_permutations(paa, pivots)
        if out is None:
            return ranked
        out[...] = ranked
        return out
    # Partial selection of the m+1 smallest (cheap), then an exact sort of
    # just that candidate block.  Selecting one extra element makes the
    # tie-ambiguity test local: the boundary (m-th smallest) distance is
    # ambiguous iff the (m+1)-th smallest equals it — no full-width
    # comparison sweep over d2 needed.
    part = np.argpartition(d2, m, axis=1)[:, : m + 1]
    vals = np.take_along_axis(d2, part, axis=1)
    order = np.lexsort((part, vals), axis=1)
    ranked = np.take_along_axis(part, order, axis=1)[:, :m]
    # argpartition may split ties at the m-th distance arbitrarily; repair
    # rows where the boundary is ambiguous so tie-breaking is always by id.
    # Only the boundary pair (positions m-1 and m in sorted order) decides
    # ambiguity, so just those two columns are gathered.
    vboundary = np.take_along_axis(vals, order[:, m - 1:], axis=1)
    ambiguous = vboundary[:, 1] <= vboundary[:, 0]
    if np.any(ambiguous):
        rows = np.flatnonzero(ambiguous)
        sub = full_permutations(paa[rows], pivots)[:, :m]
        ranked[rows] = sub
    if out is None:
        return ranked.astype(np.int32)
    out[...] = ranked
    return out

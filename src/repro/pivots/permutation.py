"""Pivot permutations and Pivot Permutation Prefixes (Def. 5).

Given ``r`` pivots in PAA space, every object induces a *pivot
permutation*: the pivot ids sorted by ascending distance from the object
(Section IV-A, Fig. 2).  The *Pivot Permutation Prefix* (PPP) keeps only
the ``m`` nearest pivots, avoiding excessive space fragmentation while
preserving locality.

Everything operates on batches: signatures for a ``(d, w)`` PAA matrix are
computed with one distance matrix and one partial sort.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy.spatial.distance import cdist

from repro.exceptions import ConfigurationError
from repro.series import as_matrix

__all__ = ["pivot_distance_matrix", "full_permutations", "permutation_prefixes"]

_TOPM_TILE_BYTES = 1 << 18
"""Byte target per top-m row tile: the argpartition pass over the full
``(d, r)`` distance matrix allocated and streamed ``d * r`` int64
temporaries per call (~0.14 s of the 0.65 s conversion profile at 200k
records).  Tiling rows keeps each partition + gather pass cache-resident,
and the gathers reuse preallocated per-thread scratch buffers instead of
allocating fresh ``(d, m+1)`` temporaries every call."""

_tls = threading.local()


def _tile_buffer(name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """Per-thread reusable scratch (parallel conversion workers must not
    share gather buffers)."""
    buffers = getattr(_tls, "buffers", None)
    if buffers is None:
        buffers = _tls.buffers = {}
    buf = buffers.get(name)
    if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
        buf = np.empty(shape, dtype=dtype)
        buffers[name] = buf
    return buf


def _topm_ranked(d2: np.ndarray, m: int) -> tuple[np.ndarray, np.ndarray]:
    """Blocked top-m selection over a ``(d, r)`` distance matrix.

    Returns ``(ranked, ambiguous)``: the ``m`` nearest pivot ids per row
    (distance order, pivot-id tie-break *within* the selected block) and
    the boundary-ambiguity mask — rows where the (m+1)-th smallest
    distance ties the m-th, i.e. where argpartition's arbitrary boundary
    split must be repaired by a full sort.  Row results depend only on the
    row's own distances, so any tile size produces identical output
    (:func:`_topm_ranked_reference` is the one-shot oracle the parity
    suite compares against).
    """
    d, r = d2.shape
    ranked = np.empty((d, m), dtype=np.int64)
    ambiguous = np.empty(d, dtype=bool)
    tile = min(d, max(32, _TOPM_TILE_BYTES // max(1, r * 8))) or 1
    flat = d2.reshape(-1)
    idx_buf = _tile_buffer("topm_idx", (tile, m + 1), np.int64)
    val_buf = _tile_buffer("topm_val", (tile, m + 1), np.float64)
    for start in range(0, d, tile):
        end = min(d, start + tile)
        rows = end - start
        part = np.argpartition(d2[start:end], m, axis=1)[:, : m + 1]
        fi = idx_buf[:rows]
        np.add(part, np.arange(start, end)[:, None] * r, out=fi)
        vals = val_buf[:rows]
        np.take(flat, fi, out=vals)
        order = np.lexsort((part, vals), axis=1)
        ranked[start:end] = np.take_along_axis(part, order[:, :m], axis=1)
        # Only the boundary pair (positions m-1 and m in sorted order)
        # decides ambiguity, so just those two columns are gathered.
        vb = np.take_along_axis(vals, order[:, m - 1:], axis=1)
        ambiguous[start:end] = vb[:, 1] <= vb[:, 0]
    return ranked, ambiguous


def _topm_ranked_reference(d2: np.ndarray, m: int) -> tuple[np.ndarray, np.ndarray]:
    """The seed one-shot top-m pass, retained as the parity oracle.

    One full-width ``argpartition`` + gather + ``lexsort`` over the whole
    matrix — bit-identical to the blocked :func:`_topm_ranked` (the
    randomized kernel-parity suite proves it) and the baseline its tile
    sizing was measured against.
    """
    part = np.argpartition(d2, m, axis=1)[:, : m + 1]
    vals = np.take_along_axis(d2, part, axis=1)
    order = np.lexsort((part, vals), axis=1)
    ranked = np.take_along_axis(part, order, axis=1)[:, :m]
    vboundary = np.take_along_axis(vals, order[:, m - 1:], axis=1)
    return ranked, vboundary[:, 1] <= vboundary[:, 0]


def pivot_distance_matrix(paa: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every object to every pivot.

    Squared distances order identically to true distances, so ranking uses
    them directly and skips ``d * r`` square roots.  Computed by scipy's
    C ``cdist`` kernel (direct per-pair differences — no ``(d, r)``
    norm-expansion temporaries, and at least as accurate as the
    ``||a||^2 - 2ab + ||b||^2`` form it replaced).
    """
    p = as_matrix(pivots)
    q = as_matrix(paa)
    if p.shape[1] != q.shape[1]:
        raise ConfigurationError(
            f"PAA word length {q.shape[1]} != pivot word length {p.shape[1]}"
        )
    return cdist(q, p, "sqeuclidean")


def full_permutations(paa: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """The complete pivot permutation of every object.

    Returns
    -------
    numpy.ndarray
        ``(d, r)`` int32 matrix; row ``i`` lists all pivot ids sorted by
        ascending distance from object ``i`` (ties broken by pivot id, so
        permutations are deterministic).
    """
    d2 = pivot_distance_matrix(paa, pivots)
    r = d2.shape[1]
    ids = np.broadcast_to(np.arange(r, dtype=np.int64), d2.shape)
    order = np.lexsort((ids, d2), axis=1)
    return order.astype(np.int32)


def permutation_prefixes(
    paa: np.ndarray,
    pivots: np.ndarray,
    prefix_length: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pivot Permutation Prefixes (Def. 5) of every object.

    Parameters
    ----------
    prefix_length:
        ``m`` in the paper; must satisfy ``1 <= m <= r``.
    out:
        Optional preallocated ``(d, m)`` integer output the signatures are
        written into (the builder's streamed conversion passes slices of
        one full-dataset array); allocated fresh when omitted.

    Returns
    -------
    numpy.ndarray
        ``(d, m)`` int32 matrix (or ``out``) of the ``m`` nearest pivot
        ids per object, ordered by ascending distance (rank-sensitive
        order).
    """
    d2 = pivot_distance_matrix(paa, pivots)
    r = d2.shape[1]
    m = int(prefix_length)
    if not 1 <= m <= r:
        raise ConfigurationError(f"prefix_length must be in [1, {r}], got {m}")
    if out is not None and out.shape != (d2.shape[0], m):
        raise ConfigurationError(
            f"out must have shape ({d2.shape[0]}, {m}), got {out.shape}"
        )
    if m == r:
        ranked = full_permutations(paa, pivots)
        if out is None:
            return ranked
        out[...] = ranked
        return out
    # Partial selection of the m+1 smallest (cheap), then an exact sort of
    # just that candidate block, in cache-sized row tiles over reusable
    # scratch.  Selecting one extra element makes the tie-ambiguity test
    # local: the boundary (m-th smallest) distance is ambiguous iff the
    # (m+1)-th smallest equals it — no full-width comparison sweep over
    # d2 needed.
    ranked, ambiguous = _topm_ranked(d2, m)
    # argpartition may split ties at the m-th distance arbitrarily; repair
    # rows where the boundary is ambiguous so tie-breaking is always by id.
    if np.any(ambiguous):
        rows = np.flatnonzero(ambiguous)
        sub = full_permutations(paa[rows], pivots)[:, :m]
        ranked[rows] = sub
    if out is None:
        return ranked.astype(np.int32)
    out[...] = ranked
    return out

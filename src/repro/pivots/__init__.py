"""Pivot machinery: selection, permutations, P4 dual signatures, metrics."""

from repro.pivots.distances import (
    DecayKind,
    centroid_membership,
    decay_weights,
    kendall_tau,
    overlap_distance,
    overlap_distance_matrix,
    overlap_distance_matrix_reference,
    routing_distances,
    spearman_footrule,
    total_weight,
    wd_tie_tolerance,
    weight_distance,
    weight_distance_matrix,
    weight_distance_matrix_reference,
)
from repro.pivots.permutation import (
    full_permutations,
    permutation_prefixes,
    pivot_distance_matrix,
)
from repro.pivots.selection import (
    select_farthest_first_pivots,
    select_random_pivots,
)
from repro.pivots.signatures import (
    DualSignature,
    pack_pivot_sets,
    rank_insensitive,
    words_for,
)

__all__ = [
    "select_random_pivots",
    "select_farthest_first_pivots",
    "pivot_distance_matrix",
    "full_permutations",
    "permutation_prefixes",
    "DualSignature",
    "rank_insensitive",
    "pack_pivot_sets",
    "words_for",
    "overlap_distance",
    "overlap_distance_matrix",
    "overlap_distance_matrix_reference",
    "routing_distances",
    "decay_weights",
    "centroid_membership",
    "total_weight",
    "weight_distance",
    "weight_distance_matrix",
    "weight_distance_matrix_reference",
    "wd_tie_tolerance",
    "spearman_footrule",
    "kendall_tau",
    "DecayKind",
]

"""Pivot selection strategies.

CLIMBER selects pivots *randomly* from the sampled PAA signatures (index
construction Step 1): "We opt for random selection because existing work in
literature has shown that random selection works competitively well
compared to any other sophisticated selection methods."

We implement random selection as the default plus a farthest-first
(greedy max-min) alternative so the claim can be checked in the
``bench_ablation_pivot_selection`` ablation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.series import as_matrix, squared_euclidean

__all__ = ["select_random_pivots", "select_farthest_first_pivots"]


def _validate(candidates: np.ndarray, n_pivots: int) -> np.ndarray:
    arr = as_matrix(candidates)
    if n_pivots < 1:
        raise ConfigurationError("n_pivots must be >= 1")
    if n_pivots > arr.shape[0]:
        raise ConfigurationError(
            f"cannot select {n_pivots} pivots from {arr.shape[0]} candidates"
        )
    return arr


def select_random_pivots(
    candidates: np.ndarray, n_pivots: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``n_pivots`` distinct rows of ``candidates``.

    This is the paper's method: pivots are points in PAA space, drawn from
    the sample, and "remain fixed throughout the entire system operations".

    Returns
    -------
    numpy.ndarray
        ``(n_pivots, w)`` pivot matrix (a copy, safe to retain).
    """
    arr = _validate(candidates, n_pivots)
    idx = rng.choice(arr.shape[0], size=n_pivots, replace=False)
    return arr[np.sort(idx)].copy()


def select_farthest_first_pivots(
    candidates: np.ndarray, n_pivots: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy max-min (farthest-first traversal) pivot selection.

    Starts from a random candidate, then repeatedly adds the candidate
    whose minimum distance to the already-selected pivots is largest.
    Classic 2-approximation of the k-center objective; used only in the
    pivot-selection ablation.
    """
    arr = _validate(candidates, n_pivots)
    n = arr.shape[0]
    chosen = [int(rng.integers(0, n))]
    min_d2 = squared_euclidean(arr[chosen[0]], arr)[0]
    for _ in range(1, n_pivots):
        nxt = int(np.argmax(min_d2))
        chosen.append(nxt)
        min_d2 = np.minimum(min_d2, squared_euclidean(arr[nxt], arr)[0])
    return arr[chosen].copy()

"""Similarity metrics over P4 signatures.

CLIMBER's new metrics (Section IV-C):

* **Overlap Distance** (Def. 7) between rank-insensitive signatures —
  prefix length minus intersection cardinality; the primary metric for
  group assignment and group search.
* **Pivot weights / Total Weight / Weight Distance** (Defs. 9-11) — a
  secondary, rank-aware metric used only to break Overlap-Distance ties:
  pivots earlier in a rank-sensitive signature get larger decay weights,
  and the Weight Distance discounts a centroid by the weights of the
  object's pivots it contains.

Also provided: Spearman footrule and Kendall tau over full permutations,
the classic rank-sensitive metrics of the pivot-permutation literature [37]
that the paper argues *cannot* compare signatures of different
granularities — kept for tests and the related-work comparisons.
"""

from __future__ import annotations

from typing import Iterable, Literal

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pivots.signatures import pack_pivot_sets, words_for

__all__ = [
    "overlap_distance",
    "overlap_distance_matrix",
    "overlap_distance_matrix_reference",
    "routing_distances",
    "decay_weights",
    "total_weight",
    "centroid_membership",
    "weight_distance",
    "weight_distance_matrix",
    "weight_distance_matrix_reference",
    "wd_tie_tolerance",
    "spearman_footrule",
    "kendall_tau",
    "DecayKind",
]

DecayKind = Literal["exponential", "linear"]


# ---------------------------------------------------------------------------
# Overlap Distance (Def. 7)
# ---------------------------------------------------------------------------

def overlap_distance(sig_x: Iterable[int], sig_y: Iterable[int]) -> int:
    """Overlap Distance between two rank-insensitive signatures (Def. 7).

    ``OD(X, Y) = m - |P4(X) ∩ P4(Y)|`` where ``m`` is the prefix length.
    Lies in ``[0, m]``; 0 means identical pivot sets.

    >>> overlap_distance((1, 3, 6, 8), (2, 3, 4, 6))
    2
    """
    xs = set(int(p) for p in sig_x)
    ys = set(int(p) for p in sig_y)
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"signatures must share one prefix length, got {len(xs)} and {len(ys)}"
        )
    return len(xs) - len(xs & ys)


def overlap_distance_matrix(
    packed_objects: np.ndarray, packed_centroids: np.ndarray, prefix_length: int
) -> np.ndarray:
    """Batch Overlap Distances between packed pivot sets.

    Parameters
    ----------
    packed_objects, packed_centroids:
        ``(d, words)`` and ``(k, words)`` uint64 bitsets from
        :func:`repro.pivots.signatures.pack_pivot_sets`.
    prefix_length:
        The common signature length ``m``.

    Returns
    -------
    numpy.ndarray
        ``(d, k)`` uint16 matrix of Overlap Distances.
    """
    a = np.asarray(packed_objects, dtype=np.uint64)
    b = np.asarray(packed_centroids, dtype=np.uint64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ConfigurationError("packed signature word counts differ")
    # One 2-D AND + popcount per bitset word, accumulated in uint16 —
    # never materialising the (d, k, words) 3-D broadcast, whose uint64
    # temporaries dominated the batch cost as soon as r exceeded 64 — and
    # swept in row tiles sized so the uint64 AND temporary stays
    # L2-resident instead of re-streaming a full (d, k) buffer from DRAM
    # on every word pass.  Exact integer arithmetic: tiling cannot change
    # a bit (the kernel-parity suite compares against the untiled seed
    # kernel below).
    d, k = a.shape[0], b.shape[0]
    inter = np.empty((d, k), dtype=np.uint16)
    tile = max(32, (1 << 18) // max(1, k * 8))
    for start in range(0, d, tile):
        end = min(d, start + tile)
        rows = inter[start:end]
        np.bitwise_count(
            a[start:end, 0][:, None] & b[:, 0][None, :], out=rows
        )
        for word in range(1, a.shape[1]):
            rows += np.bitwise_count(
                a[start:end, word][:, None] & b[:, word][None, :]
            )
    return (np.uint16(prefix_length) - inter).astype(np.uint16)


def overlap_distance_matrix_reference(
    packed_objects: np.ndarray, packed_centroids: np.ndarray, prefix_length: int
) -> np.ndarray:
    """The seed batch-OD kernel, retained as the parity oracle/baseline.

    One ``(d, k, words)`` 3-D broadcast AND + popcount + word-axis sum —
    bit-identical to the word-sliced :func:`overlap_distance_matrix` (the
    randomized kernel-parity suite proves it).  The conversion benchmark's
    ``legacy`` path runs on this kernel, so before/after numbers measure
    the whole seed pipeline.
    """
    a = np.asarray(packed_objects, dtype=np.uint64)
    b = np.asarray(packed_centroids, dtype=np.uint64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ConfigurationError("packed signature word counts differ")
    inter = np.bitwise_count(a[:, None, :] & b[None, :, :]).sum(
        axis=2, dtype=np.uint16
    )
    return (np.uint16(prefix_length) - inter).astype(np.uint16)


def routing_distances(
    ranked: np.ndarray,
    packed_centroids: np.ndarray,
    n_pivots: int,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused query-time OD + WD between ranked signatures and centroids.

    The query hot path needs both metrics against every centroid: OD to
    find the best-matching groups (Algorithm 3 L5-9) and WD to break OD
    ties.  This computes both from one packing pass.

    Parameters
    ----------
    ranked:
        ``(q, m)`` rank-sensitive signatures.
    packed_centroids:
        ``(k, words)`` uint64 centroid bitsets from :func:`pack_pivot_sets`.
    n_pivots:
        Total pivot count ``r`` (bitset width).
    weights:
        ``(m,)`` decay weights of Def. 9.

    Returns
    -------
    (od, wd)
        ``(q, k)`` int64 Overlap Distances and ``(q, k)`` float64 Weight
        Distances.  Both match the scalar :func:`overlap_distance` /
        :func:`weight_distance` bit-for-bit.
    """
    arr = np.asarray(ranked, dtype=np.int64)
    if arr.ndim != 2:
        raise ConfigurationError("ranked signatures must be a (q, m) matrix")
    m = arr.shape[1]
    packed = pack_pivot_sets(np.sort(arr, axis=1), n_pivots)
    od = overlap_distance_matrix(packed, packed_centroids, m).astype(np.int64)
    wd = weight_distance_matrix(
        arr, packed_centroids, n_pivots, np.asarray(weights, dtype=np.float64)
    )
    return od, wd


# ---------------------------------------------------------------------------
# Pivot weights (Defs. 9-11)
# ---------------------------------------------------------------------------

def decay_weights(
    prefix_length: int,
    kind: DecayKind = "exponential",
    decay_rate: float | None = None,
) -> np.ndarray:
    """Per-rank pivot weights (Def. 9).

    The i-th entry (0-based) is the weight of the (i+1)-th nearest pivot.
    Exponential decay: ``lambda**i`` with default ``lambda = 1/2`` (the
    paper's worked Example 1).  Linear decay: ``lambda * (m - i)`` with
    ``lambda = 1/m``, i.e. ``[1, (m-1)/m, ..., 1/m]``.

    Weights are strictly decreasing, as Def. 9 requires.
    """
    m = int(prefix_length)
    if m < 1:
        raise ConfigurationError("prefix_length must be >= 1")
    ranks = np.arange(m, dtype=np.float64)
    if kind == "exponential":
        lam = 0.5 if decay_rate is None else float(decay_rate)
        if not 0.0 < lam < 1.0:
            raise ConfigurationError("exponential decay_rate must be in (0, 1)")
        return lam**ranks
    if kind == "linear":
        lam = (1.0 / m) if decay_rate is None else float(decay_rate)
        if lam <= 0.0:
            raise ConfigurationError("linear decay_rate must be positive")
        return lam * (m - ranks)
    raise ConfigurationError(f"unknown decay kind {kind!r}")


def total_weight(weights: np.ndarray) -> float:
    """Total Weight of a signature (Def. 10) — constant for fixed m/decay."""
    return float(np.sum(weights))


def weight_distance(
    ranked_sig: Iterable[int], centroid_set: Iterable[int], weights: np.ndarray
) -> float:
    """Weight Distance (Def. 11) between a rank-sensitive signature and a
    rank-insensitive centroid signature.

    ``WD = TW - sum of weights of the object's pivots present in the
    centroid``: the more (and earlier-ranked) pivots the centroid shares
    with the object, the smaller the distance.
    """
    ranked = [int(p) for p in ranked_sig]
    if len(ranked) != len(weights):
        raise ConfigurationError("weights length must equal signature length")
    members = set(int(p) for p in centroid_set)
    matched = sum(w for p, w in zip(ranked, weights) if p in members)
    return total_weight(weights) - matched


def weight_distance_matrix(
    ranked: np.ndarray,
    centroid_sets: np.ndarray,
    n_pivots: int,
    weights: np.ndarray,
) -> np.ndarray:
    """Batch Weight Distances.

    Parameters
    ----------
    ranked:
        ``(d, m)`` rank-sensitive signatures.
    centroid_sets:
        ``(k, m)`` centroid pivot sets *or* ``(k, words)`` pre-packed
        uint64 bitsets.
    n_pivots:
        Total pivot count (bitset width).
    weights:
        ``(m,)`` decay weights.

    Returns
    -------
    numpy.ndarray
        ``(d, k)`` float64 Weight Distances.
    """
    arr = np.asarray(ranked, dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != w.shape[0]:
        raise ConfigurationError("ranked shape does not match weights length")
    cs = np.asarray(centroid_sets)
    if cs.dtype != np.uint64:
        cs = pack_pivot_sets(cs, n_pivots)
    if cs.shape[1] != words_for(n_pivots):
        raise ConfigurationError("packed centroid width does not match n_pivots")
    tw = total_weight(w)
    d, m = arr.shape
    k = cs.shape[0]
    # Unpack the centroid bitsets once into a (n_pivots, k) float membership
    # table, then accumulate rank by rank: each step gathers one (d, k)
    # slab by the objects' rank-j pivot ids and adds ``w[j] * membership``.
    # Every added term is exactly ``w[j]`` or ``0.0`` and the per-element
    # addition order (ascending rank, zeros included) matches the scalar
    # :func:`weight_distance`, so results stay bit-identical — without the
    # (k, d, m) uint64 shift/popcount temporaries of the old kernel.
    membership = centroid_membership(cs, n_pivots)
    matched = np.zeros((d, k), dtype=np.float64)
    for rank in range(m):
        matched += w[rank] * membership[arr[:, rank]]
    return tw - matched


def centroid_membership(packed_centroids: np.ndarray, n_pivots: int) -> np.ndarray:
    """``(n_pivots, k)`` float 0/1 table: pivot p in centroid c.

    The gather table behind the batch and pair-wise WD kernels — both must
    read the *same* unpacking for the bit-parity guarantee to hold, hence
    one shared helper.
    """
    cs = np.asarray(packed_centroids, dtype=np.uint64)
    pivot_ids = np.arange(n_pivots, dtype=np.int64)
    words = cs[:, pivot_ids >> 6]  # (k, n_pivots)
    bits = (words >> (pivot_ids & 63).astype(np.uint64)) & np.uint64(1)
    return bits.astype(np.float64).T


def weight_distance_matrix_reference(
    ranked: np.ndarray,
    centroid_sets: np.ndarray,
    n_pivots: int,
    weights: np.ndarray,
) -> np.ndarray:
    """The seed batch-WD kernel, retained as the parity oracle/baseline.

    Chunked uint64 shift/popcount extraction with rank-sequential
    accumulation — bit-identical to :func:`weight_distance_matrix` (the
    randomized kernel-parity suite proves it) and to the scalar
    :func:`weight_distance`.  The conversion benchmark's ``legacy`` path
    runs on this kernel, so before/after numbers measure the whole seed
    pipeline.
    """
    arr = np.asarray(ranked, dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != w.shape[0]:
        raise ConfigurationError("ranked shape does not match weights length")
    cs = np.asarray(centroid_sets)
    if cs.dtype != np.uint64:
        cs = pack_pivot_sets(cs, n_pivots)
    if cs.shape[1] != words_for(n_pivots):
        raise ConfigurationError("packed centroid width does not match n_pivots")
    tw = total_weight(w)
    d, m = arr.shape
    k = cs.shape[0]
    matched = np.zeros((d, k), dtype=np.float64)
    one = np.uint64(1)
    chunk = max(1, (1 << 22) // max(1, k * m))
    for start in range(0, d, chunk):
        rows = arr[start:start + chunk]
        words = cs[:, rows >> 6]  # (k, chunk, m)
        bits = (words >> (rows & 63).astype(np.uint64)) & one
        contrib = bits.astype(np.float64) * w  # (k, chunk, m)
        ranks = contrib.transpose(2, 1, 0)  # (m, chunk, k) view
        out = matched[start:start + chunk]
        for rank in range(m):
            out += ranks[rank]
    return tw - matched


def wd_tie_tolerance(total: float) -> float:
    """Weight-Distance tie tolerance, relative to the Total Weight.

    WD values are differences from the Total Weight, so their rounding
    error scales with ``ulp(TW)``, not with the (possibly tiny) WD value
    itself.  A fixed absolute epsilon mis-classifies mathematically-tied
    centroids as soon as the weights are large; an epsilon relative to the
    WD value collapses when the best WD is near zero.  Anchoring the
    tolerance to ``max(1, |TW|)`` handles both regimes and reduces to the
    historical ``1e-12`` for the paper's unit-scale decay weights.
    """
    return 1e-12 * max(1.0, abs(float(total)))


# ---------------------------------------------------------------------------
# Classic rank metrics (for reference / related-work comparison)
# ---------------------------------------------------------------------------

def _rank_map(perm: np.ndarray) -> dict[int, int]:
    return {int(p): i for i, p in enumerate(perm)}


def spearman_footrule(perm_a: Iterable[int], perm_b: Iterable[int]) -> int:
    """Spearman footrule distance between two permutations of one id set.

    Sum over ids of the absolute rank displacement.
    """
    a = np.asarray(list(perm_a), dtype=np.int64)
    b = np.asarray(list(perm_b), dtype=np.int64)
    if sorted(a.tolist()) != sorted(b.tolist()):
        raise ConfigurationError("footrule requires permutations of one id set")
    rank_b = _rank_map(b)
    return int(sum(abs(i - rank_b[int(p)]) for i, p in enumerate(a)))


def kendall_tau(perm_a: Iterable[int], perm_b: Iterable[int]) -> int:
    """Kendall tau distance: the number of discordant pairs."""
    a = list(int(p) for p in perm_a)
    b = list(int(p) for p in perm_b)
    if sorted(a) != sorted(b):
        raise ConfigurationError("kendall tau requires permutations of one id set")
    rank_b = _rank_map(np.asarray(b))
    seq = [rank_b[p] for p in a]
    discordant = 0
    for i in range(len(seq)):
        for j in range(i + 1, len(seq)):
            if seq[i] > seq[j]:
                discordant += 1
    return discordant

"""P4 dual signatures (Def. 6) and their packed bitset form.

Every data series gets two signatures derived from its Pivot Permutation
Prefix:

* **rank-sensitive** ``P4->``: the ``m`` nearest pivot ids in ascending
  distance order — fine-grained, drives partition (trie) placement;
* **rank-insensitive** ``P4-/->``: the same ids in global (ascending id)
  order — coarse-grained, drives group placement.

The rank-insensitive signature is a *set*; the Overlap Distance only needs
set intersections.  We therefore also provide a packed bitset encoding
(``ceil(r/64)`` uint64 words per object) so batch OD computations are a
bitwise AND plus popcount.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["DualSignature", "rank_insensitive", "pack_pivot_sets", "words_for"]


def rank_insensitive(ranked: np.ndarray) -> np.ndarray:
    """Rank-insensitive signatures: each row sorted ascending by pivot id.

    ``LexicographicalOrder(P4->)`` in Def. 6 — pivot ids are integers here,
    so the lexicographical order over id strings becomes numeric order.
    """
    arr = np.asarray(ranked)
    if arr.ndim != 2:
        raise ConfigurationError("ranked signatures must be a (d, m) matrix")
    return np.sort(arr, axis=1)


def words_for(n_pivots: int) -> int:
    """Number of uint64 words needed to hold a set over ``n_pivots`` bits."""
    if n_pivots < 1:
        raise ConfigurationError("n_pivots must be >= 1")
    return (n_pivots + 63) // 64


def pack_pivot_sets(signatures: np.ndarray, n_pivots: int) -> np.ndarray:
    """Pack pivot-id rows into fixed-width bitsets.

    Parameters
    ----------
    signatures:
        ``(d, m)`` matrix of pivot ids (order irrelevant — this is a set
        encoding).  Ids must lie in ``[0, n_pivots)`` and be unique per row.
    n_pivots:
        Total pivot count ``r`` (determines the bitset width).

    Returns
    -------
    numpy.ndarray
        ``(d, words_for(n_pivots))`` uint64 bitsets.
    """
    arr = np.asarray(signatures, dtype=np.int64)
    if arr.ndim != 2:
        raise ConfigurationError("signatures must be a (d, m) matrix")
    if arr.size and (arr.min() < 0 or arr.max() >= n_pivots):
        raise ConfigurationError(
            f"pivot id out of range [0, {n_pivots}) in signature matrix"
        )
    n_words = words_for(n_pivots)
    if n_words == 1:
        # Every id lands in the same word: one shift + OR-reduce along the
        # signature axis, no fancy indexing at all.
        bits = np.uint64(1) << arr.astype(np.uint64)
        return np.bitwise_or.reduce(bits, axis=1).reshape(-1, 1)
    out = np.zeros((arr.shape[0], n_words), dtype=np.uint64)
    word_idx = arr >> 6
    bit = np.uint64(1) << (arr & 63).astype(np.uint64)
    rows = np.arange(arr.shape[0])
    # One fancy-assign per signature position instead of an elementwise
    # ufunc.at scatter: ids are unique per row, so within one column every
    # (row, word) target is distinct and |= cannot lose updates.
    for j in range(arr.shape[1]):
        out[rows, word_idx[:, j]] |= bit[:, j]
    return out


@dataclass(frozen=True)
class DualSignature:
    """The P4 dual signature of a single data series (Def. 6).

    Attributes
    ----------
    ranked:
        Rank-sensitive ``P4->`` — pivot ids ordered by ascending distance.
    """

    ranked: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.ranked)) != len(self.ranked):
            raise ConfigurationError("signature contains duplicate pivot ids")
        if not self.ranked:
            raise ConfigurationError("signature must contain at least one pivot")

    @property
    def unranked(self) -> tuple[int, ...]:
        """Rank-insensitive ``P4-/->`` — the same ids in ascending order."""
        return tuple(sorted(self.ranked))

    @property
    def prefix_length(self) -> int:
        return len(self.ranked)

    @classmethod
    def from_row(cls, row: np.ndarray) -> "DualSignature":
        """Build from one row of a batch rank-sensitive signature matrix."""
        return cls(tuple(int(p) for p in np.asarray(row).ravel()))

    def __str__(self) -> str:
        arrow = ",".join(str(p) for p in self.ranked)
        return f"<{arrow}>"

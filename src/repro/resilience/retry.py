"""Retry policy for the DFS read path: bounded attempts, seeded jitter.

The policy is pure data plus pure functions — the
:class:`~repro.storage.SimulatedDFS` read loop owns the actual retry
control flow.  Jitter comes from the same stable hash as the fault
schedule (:func:`repro.resilience.faults.stable_uniform`), so backoff
delays — like everything else in the resilience layer — are reproducible
for a given ``(seed, blob name, attempt)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.resilience.faults import stable_uniform

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for one logical partition read.

    Parameters
    ----------
    max_attempts:
        Total read attempts per logical read (1 disables retries).
    backoff_base_s:
        Sleep before the first retry; doubles (``backoff_multiplier``)
        per subsequent retry.
    backoff_multiplier:
        Exponential growth factor of the backoff.
    jitter:
        Fraction of the backoff added as deterministic jitter: the delay
        for retry ``a`` is ``base * mult**(a-1) * (1 + jitter * u)`` with
        ``u`` a stable-hash uniform in ``[0, 1)``.
    deadline_s:
        Per-attempt wall-clock budget.  An attempt that takes longer
        (e.g. an injected straggler) counts as failed with
        :class:`~repro.exceptions.ReadTimeoutError` and is retried.
        ``None`` disables the deadline.
    seed:
        Seed of the jitter's stable hash.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.002
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ConfigurationError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive when given")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (retries disabled)."""
        return cls(max_attempts=1)

    def backoff_delay(self, name: str, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based) of ``name``."""
        if attempt < 1:
            raise ConfigurationError("backoff attempt is 1-based")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        u = stable_uniform(self.seed, name, attempt, "retry_jitter")
        return base * (1.0 + self.jitter * u)

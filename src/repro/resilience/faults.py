"""Seeded fault plans and the backend-wrapping fault injector.

Determinism is the whole point.  A real chaos harness flips coins; this
one *derives* every coin from a stable hash of ``(seed, blob name,
attempt index, salt)`` (BLAKE2b — stable across processes and Python
versions, unlike the randomised builtin ``hash``).  Two consequences the
tests and benchmarks rely on:

* the same :class:`FaultPlan` seed produces the same fault schedule on
  every run, for any worker count — a partition's first read attempt
  faults (or not) identically whether a serial sweep or a thread shard
  issues it, because the attempt counter is per-name, maintained under
  the injector lock;
* fault decisions are scoped to *read attempts begun by the DFS read
  path* (:meth:`FaultInjector.begin_attempt`).  Metadata reads issued
  outside an attempt — ``attach()`` header scans, ``partition_meta`` —
  pass through untouched, so reopening an index over a faulty store
  works and only actual partition reads see faults.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass

from repro.exceptions import (
    ConfigurationError,
    PartitionLostError,
    TransientReadError,
)

__all__ = [
    "FAULT_ENV_SEED",
    "FAULT_ENV_RATE",
    "FAULT_ENV_LOSS_RATE",
    "FAULT_ENV_BITFLIP_RATE",
    "FAULT_ENV_STRAGGLER_RATE",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "stable_uniform",
]

#: Environment knobs for switching chaos on without touching call sites
#: (the CI chaos smoke runs the whole tier-1 suite under these).  The
#: seed knob activates injection; the rate knobs default as documented on
#: :meth:`FaultPlan.from_env`.
FAULT_ENV_SEED = "CLIMBER_FAULT_SEED"
FAULT_ENV_RATE = "CLIMBER_FAULT_RATE"
FAULT_ENV_LOSS_RATE = "CLIMBER_FAULT_LOSS_RATE"
FAULT_ENV_BITFLIP_RATE = "CLIMBER_FAULT_BITFLIP_RATE"
FAULT_ENV_STRAGGLER_RATE = "CLIMBER_FAULT_STRAGGLER_RATE"


def stable_uniform(seed: int, name: str, attempt: int, salt: str) -> float:
    """A uniform draw in ``[0, 1)`` as a pure function of its arguments.

    BLAKE2b over the formatted key, folded to 64 bits.  Stable across
    processes, platforms and Python versions — the backbone of every
    fault decision and jitter value in this package.
    """
    digest = hashlib.blake2b(
        f"{seed}:{name}:{attempt}:{salt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True)
class FaultDecision:
    """The faults one read attempt of one blob is scheduled to suffer."""

    lost: bool = False
    transient: bool = False
    flip_byte: int = -1   # byte offset within the blob, -1 = no flip
    flip_bit: int = 0
    straggle_s: float = 0.0


# Shared clean decision: reads outside a begun attempt take this path.
FaultDecision.CLEAN = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of storage faults.

    Parameters
    ----------
    seed:
        Root of the stable-hash fault schedule.  Same seed, same faults.
    transient_rate:
        Per-attempt probability that every read of the attempt raises
        :class:`~repro.exceptions.TransientReadError` (recoverable).
    loss_rate:
        Per-*blob* probability that the blob is permanently lost —
        every read attempt raises
        :class:`~repro.exceptions.PartitionLostError`, forever.
    bit_flip_rate:
        Per-attempt probability that one uniformly-chosen bit of the
        blob reads back flipped for the duration of the attempt (the
        stored bytes are never modified).
    straggler_rate, straggler_delay_s:
        Per-attempt probability that the attempt's first read sleeps
        ``straggler_delay_s`` before returning (a slow datanode).
    """

    seed: int = 0
    transient_rate: float = 0.0
    loss_rate: float = 0.0
    bit_flip_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay_s: float = 0.01

    def __post_init__(self) -> None:
        for field in ("transient_rate", "loss_rate", "bit_flip_rate",
                      "straggler_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{field} must be in [0, 1]")
        if self.straggler_delay_s < 0:
            raise ConfigurationError("straggler_delay_s must be >= 0")

    @property
    def active(self) -> bool:
        """True when any fault has nonzero probability."""
        return (self.transient_rate > 0 or self.loss_rate > 0
                or self.bit_flip_rate > 0 or self.straggler_rate > 0)

    def lost(self, name: str) -> bool:
        """Whether ``name`` is permanently lost under this plan."""
        if self.loss_rate <= 0:
            return False
        return stable_uniform(self.seed, name, -1, "loss") < self.loss_rate

    def decide(self, name: str, attempt: int, blob_size: int) -> FaultDecision:
        """The fault decision for one ``(name, attempt)`` read attempt."""
        if self.lost(name):
            return FaultDecision(lost=True)
        transient = (
            self.transient_rate > 0
            and stable_uniform(self.seed, name, attempt, "transient")
            < self.transient_rate
        )
        flip_byte, flip_bit = -1, 0
        if (
            self.bit_flip_rate > 0 and blob_size > 0
            and stable_uniform(self.seed, name, attempt, "flip")
            < self.bit_flip_rate
        ):
            flip_byte = min(
                blob_size - 1,
                int(stable_uniform(self.seed, name, attempt, "flip_byte")
                    * blob_size),
            )
            flip_bit = int(
                stable_uniform(self.seed, name, attempt, "flip_bit") * 8
            ) & 7
        straggle_s = 0.0
        if (
            self.straggler_rate > 0
            and stable_uniform(self.seed, name, attempt, "straggle")
            < self.straggler_rate
        ):
            straggle_s = self.straggler_delay_s
        return FaultDecision(
            transient=transient, flip_byte=flip_byte, flip_bit=flip_bit,
            straggle_s=straggle_s,
        )

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The environment-configured plan, or ``None`` when unset.

        ``CLIMBER_FAULT_SEED`` activates injection.  ``CLIMBER_FAULT_RATE``
        sets the transient-error rate (default 0.02 when the seed is set);
        ``CLIMBER_FAULT_LOSS_RATE`` / ``CLIMBER_FAULT_BITFLIP_RATE`` /
        ``CLIMBER_FAULT_STRAGGLER_RATE`` default to 0.
        """
        env = os.environ if environ is None else environ
        raw_seed = str(env.get(FAULT_ENV_SEED, "")).strip()
        if not raw_seed:
            return None
        try:
            seed = int(raw_seed)
        except ValueError:
            raise ConfigurationError(
                f"{FAULT_ENV_SEED}={raw_seed!r} is not an integer"
            ) from None

        def rate(key: str, default: float) -> float:
            raw = str(env.get(key, "")).strip()
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{key}={raw!r} is not a number"
                ) from None

        return cls(
            seed=seed,
            transient_rate=rate(FAULT_ENV_RATE, 0.02),
            loss_rate=rate(FAULT_ENV_LOSS_RATE, 0.0),
            bit_flip_rate=rate(FAULT_ENV_BITFLIP_RATE, 0.0),
            straggler_rate=rate(FAULT_ENV_STRAGGLER_RATE, 0.0),
        )


class FaultInjector:
    """A :class:`StorageBackend` wrapper realising a :class:`FaultPlan`.

    Wraps any backend and satisfies the same byte-range protocol.  Writes,
    deletes and listings always pass through untouched (build pipelines
    are unaffected); reads consult the fault decision of the blob's
    current attempt:

    * ``lost`` — raise :class:`PartitionLostError` (permanent);
    * ``transient`` — raise :class:`TransientReadError`;
    * bit flip — serve a copy of the requested range with the scheduled
      bit flipped when the range covers it (stored bytes untouched);
    * straggler — sleep once (on the attempt's first read) before serving.

    Attempts are explicit: the DFS read loop calls :meth:`begin_attempt`
    before each open, which advances the blob's per-name attempt counter
    and fixes the decision every subsequent read of that blob consults —
    including the lazy cluster reads a returned v2 view issues later.
    Reads of blobs with no begun attempt (metadata scans) are clean.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._decisions: dict[str, FaultDecision] = {}
        self._straggled: set[str] = set()

    # -- attempt lifecycle ------------------------------------------------------

    def begin_attempt(self, name: str) -> int:
        """Advance ``name``'s attempt counter; fix the attempt's decision."""
        with self._lock:
            attempt = self._attempts.get(name, -1) + 1
            self._attempts[name] = attempt
            blob_size = self.inner.size(name) if self.inner.exists(name) else 0
            self._decisions[name] = self.plan.decide(name, attempt, blob_size)
            self._straggled.discard(name)
            return attempt

    def attempts(self, name: str) -> int:
        """Read attempts begun for ``name`` (for tests/diagnostics)."""
        with self._lock:
            return self._attempts.get(name, -1) + 1

    def _decision(self, name: str) -> FaultDecision:
        with self._lock:
            return self._decisions.get(name, FaultDecision.CLEAN)

    # -- StorageBackend protocol ------------------------------------------------

    def write(self, name: str, payload: bytes) -> None:
        self.inner.write(name, payload)

    def read_range(self, name: str, offset: int, length: int):
        decision = self._decision(name)
        if decision.lost:
            raise PartitionLostError(
                f"partition blob {name!r} is permanently lost (injected)"
            )
        if decision.transient:
            raise TransientReadError(
                f"transient read failure on {name!r} (injected)"
            )
        if decision.straggle_s > 0:
            with self._lock:
                straggle = name not in self._straggled
                self._straggled.add(name)
            if straggle:
                time.sleep(decision.straggle_s)
        view = self.inner.read_range(name, offset, length)
        flip = decision.flip_byte
        if flip >= 0 and offset <= flip < offset + length:
            corrupted = bytearray(view)
            corrupted[flip - offset] ^= 1 << decision.flip_bit
            return memoryview(bytes(corrupted))
        return view

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list_names(self) -> list[str]:
        return self.inner.list_names()

    def close(self) -> None:
        self.inner.close()

"""Deterministic fault injection and retry policies (PR 8).

The resilience substrate under the fault-tolerant storage/query path:

* :mod:`repro.resilience.faults` — :class:`FaultPlan` (a seeded,
  immutable schedule of transient read errors, permanent partition
  loss, payload bit-flips and latency stragglers) and
  :class:`FaultInjector` (a :class:`~repro.storage.engine.StorageBackend`
  wrapper that realises the plan on the read path);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (max attempts,
  exponential backoff with seeded jitter, per-read deadline) consumed by
  the :class:`~repro.storage.SimulatedDFS` read loop.

Everything here is deterministic by construction: every fault decision
and every jitter value is a pure function of ``(seed, blob name,
attempt)`` through a stable hash — never of wall-clock time, thread
scheduling or Python's randomised ``hash()`` — so the same seed
reproduces the same fault schedule, the same degraded answer sets and
the same retry counters across runs, worker counts and processes.  With
no faults scheduled the injector is byte-transparent (the zero-fault
parity oracle in ``tests/test_chaos.py`` pins this down).
"""

from repro.resilience.faults import (
    FAULT_ENV_BITFLIP_RATE,
    FAULT_ENV_LOSS_RATE,
    FAULT_ENV_RATE,
    FAULT_ENV_SEED,
    FAULT_ENV_STRAGGLER_RATE,
    FaultDecision,
    FaultInjector,
    FaultPlan,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FAULT_ENV_SEED",
    "FAULT_ENV_RATE",
    "FAULT_ENV_LOSS_RATE",
    "FAULT_ENV_BITFLIP_RATE",
    "FAULT_ENV_STRAGGLER_RATE",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
]

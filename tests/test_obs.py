"""Telemetry layer: registry exactness, gating, EXPLAIN, and fallbacks.

The contracts under test (see :mod:`repro.obs`):

* **Exact totals under concurrency** — counter values and histogram
  ``count``/``sum`` are read-modify-write under a per-metric lock, so a
  4-worker hammer must land on the arithmetically exact totals.
* **Zero behavioural footprint** — telemetry enabled vs disabled changes
  *nothing* observable about a query except wall-clock noise: identical
  ids/distances/sim accounting and identical logical DFS counters.
* **EXPLAIN is a probed query, not a dry run** — ``explain_query``
  returns the per-stage breakdown of a query that really executed
  (consumes RNG, charges the DFS), with totals consistent per entry.
* **No silent degrades** — every parallelism fallback warns and bumps
  the process-lifetime ``parallel.fallbacks`` counter.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.core.parallel import ThreadExecutor, make_executor
from repro.datasets import random_walk_dataset, sample_queries
from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    NULL_SPAN,
    NULL_TELEMETRY,
    OBS_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    QueryProbe,
    Telemetry,
    global_registry,
)
from repro.storage import SimulatedDFS


def _config(telemetry=False, **overrides):
    defaults = dict(
        word_length=8, n_pivots=24, prefix_length=4, capacity=64,
        sample_fraction=0.5, n_input_partitions=8, seed=5,
        telemetry=telemetry,
    )
    defaults.update(overrides)
    return ClimberConfig(**defaults)


@pytest.fixture(scope="module")
def obs_dataset():
    return random_walk_dataset(1_200, 48, seed=11)


@pytest.fixture(scope="module")
def obs_queries(obs_dataset):
    return sample_queries(obs_dataset, 6, seed=99).values


@pytest.fixture(scope="module")
def enabled_index(obs_dataset):
    """A telemetry-enabled index for structure (not RNG-order) assertions."""
    return ClimberIndex.build(obs_dataset, _config(telemetry=True))


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_inc_and_reset(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42
        c.reset()
        assert c.value == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_exact_totals(self):
        h = Histogram("h")
        values = [0.25, 0.5, 1.0, 2.0, 4.0]  # dyadic: float-sum is exact
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == len(values)
        assert snap["sum"] == sum(values)
        assert snap["min"] == 0.25 and snap["max"] == 4.0
        assert snap["mean"] == sum(values) / len(values)

    def test_histogram_quantiles_bracketed_and_ordered(self):
        h = Histogram("h")
        for v in [1e-5] * 50 + [1e-3] * 40 + [0.5] * 10:
            h.observe(v)
        snap = h.snapshot()
        assert snap["min"] <= snap["p50"] <= snap["p90"] <= snap["p99"]
        assert snap["p99"] <= snap["max"]
        # p50 must land in the bulk (the 1e-5 bucket region), p99 near top.
        assert snap["p50"] < 1e-3
        assert snap["p99"] > 1e-3

    def test_histogram_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0
        assert snap["p50"] is None and snap["max"] is None

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_registry_get_or_create_caches_handles(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_registry_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_snapshot_schema_and_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(7)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert snap["schema"] == OBS_SCHEMA
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"b": 7}
        assert snap["histograms"]["c"]["count"] == 1
        assert json.loads(reg.to_json()) == snap

    def test_reset_keeps_registrations_and_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        h = reg.histogram("b")
        c.inc(5)
        h.observe(1.0)
        reg.reset()
        assert reg.names() == ["a", "b"]
        assert c.value == 0 and h.count == 0
        c.inc()  # the cached handle is still the registered metric
        assert reg.snapshot()["counters"]["a"] == 1

    def test_default_bounds_ascending(self):
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)
        assert DEFAULT_LATENCY_BOUNDS[0] == 1e-6


# ---------------------------------------------------------------------------
# Tracing / gating
# ---------------------------------------------------------------------------

class TestTrace:
    def test_disabled_trace_is_the_shared_null_span(self):
        tel = Telemetry(enabled=False)
        assert tel.trace("anything") is NULL_SPAN
        with tel.trace("anything"):
            pass
        assert tel.registry.names() == []

    def test_enabled_trace_records_histogram(self):
        tel = Telemetry(enabled=True)
        with tel.trace("route"):
            pass
        snap = tel.registry.snapshot()
        assert snap["histograms"]["route_s"]["count"] == 1

    def test_probe_gating(self):
        assert Telemetry(enabled=False).probe() is None
        assert isinstance(Telemetry(enabled=True).probe(), QueryProbe)

    def test_probe_stage_accumulates(self):
        probe = QueryProbe()
        probe.add_stage("read", 0.5)
        with probe.stage("read"):
            pass
        assert probe.stages["read"] > 0.5
        probe.add_count("cache_hits", 2)
        probe.add_count("cache_hits", 3)
        assert probe.counts["cache_hits"] == 5

    def test_wrap_tasks_identity_when_disabled(self):
        def fn(x):
            return x + 1

        assert Telemetry(enabled=False).wrap_tasks("t", fn) is fn

    def test_record_query_noop_when_disabled(self):
        tel = Telemetry(enabled=False)
        tel.record_query(object())  # would explode if it touched stats
        assert tel.registry.names() == []

    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False


# ---------------------------------------------------------------------------
# Concurrency: exact totals under a 4-worker hammer
# ---------------------------------------------------------------------------

class TestConcurrentHammer:
    N_TASKS = 800

    def test_exact_totals_under_four_workers(self):
        reg = MetricsRegistry()
        counter = reg.counter("hammer.count")
        hist = reg.histogram("hammer")

        def task(i):
            counter.inc(i % 7)
            hist.observe(1.0)       # float-exact sum under any ordering
            hist.observe(0.25)
            return i

        executor = ThreadExecutor(4)
        try:
            out = executor.map(task, range(self.N_TASKS))
        finally:
            executor.close()
        assert out == list(range(self.N_TASKS))
        assert counter.value == sum(i % 7 for i in range(self.N_TASKS))
        snap = hist.snapshot()
        assert snap["count"] == 2 * self.N_TASKS
        assert snap["sum"] == 1.25 * self.N_TASKS
        assert snap["min"] == 0.25 and snap["max"] == 1.0

    def test_wrap_tasks_accounts_every_task(self):
        tel = Telemetry(enabled=True)

        def fn(i):
            return i * 2

        wrapped = tel.wrap_tasks("hammer.task", fn)
        executor = ThreadExecutor(4)
        try:
            out = executor.map(wrapped, range(self.N_TASKS))
        finally:
            executor.close()
        assert out == [i * 2 for i in range(self.N_TASKS)]
        snap = tel.registry.snapshot()
        assert snap["histograms"]["hammer.task_s"]["count"] == self.N_TASKS
        worker_tasks = [
            v for name, v in snap["counters"].items()
            if name.startswith("parallel.worker.") and name.endswith(".tasks")
        ]
        assert sum(worker_tasks) == self.N_TASKS


# ---------------------------------------------------------------------------
# Enabled vs disabled: zero behavioural footprint
# ---------------------------------------------------------------------------

class TestEnabledDisabledParity:
    def test_mirrored_query_sequences_identical(self, obs_dataset, obs_queries):
        """Same build + same query sequence, telemetry on vs off: identical
        answers, identical per-query accounting, identical logical DFS
        counters.  The sequence mixes knn, knn_batch and explain_query
        (explain consumes RNG like a real query, so it must be mirrored
        on both sides to keep the streams aligned)."""
        outcomes = {}
        for enabled in (False, True):
            dfs = SimulatedDFS()
            index = ClimberIndex.build(
                obs_dataset, _config(telemetry=enabled), dfs=dfs
            )
            trail = []
            for q in obs_queries[:3]:
                trail.append(index.knn(q, 5))
            trail.extend(index.knn_batch(obs_queries, 5))
            explain = index.explain_query(obs_queries[0], 5)
            outcomes[enabled] = (trail, explain, dfs.counters)

        trail_off, explain_off, dfs_off = outcomes[False]
        trail_on, explain_on, dfs_on = outcomes[True]
        for a, b in zip(trail_off, trail_on):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.stats.sim_seconds == b.stats.sim_seconds
            assert a.stats.partitions_loaded == b.stats.partitions_loaded
            assert a.stats.data_bytes == b.stats.data_bytes
            assert a.stats.records_examined == b.stats.records_examined
        assert explain_off["ids"] == explain_on["ids"]
        assert explain_off["distances"] == explain_on["distances"]
        assert explain_off["partitions"] == explain_on["partitions"]
        assert dfs_off == dfs_on

    def test_build_artifacts_identical(self, obs_dataset):
        """Telemetry must not perturb construction: identical partition
        bytes and skeleton with the flag on and off."""
        blobs = {}
        for enabled in (False, True):
            dfs = SimulatedDFS(partition_format="v2")
            index = ClimberIndex.build(
                obs_dataset, _config(telemetry=enabled), dfs=dfs
            )
            engine = dfs.engine
            parts = {}
            for pid in dfs.list_partitions():
                name = engine._name(pid)
                parts[pid] = bytes(
                    engine.backend.read_range(name, 0, engine.backend.size(name))
                )
            blobs[enabled] = (index.skeleton.to_bytes(), parts)
        assert blobs[False] == blobs[True]

    def test_enabled_index_accumulates_query_metrics(self, obs_dataset,
                                                     obs_queries):
        index = ClimberIndex.build(obs_dataset, _config(telemetry=True))
        for q in obs_queries[:4]:
            index.knn(q, 5)
        snap = index.stats()["metrics"]
        assert snap["counters"]["query.count"] == 4
        assert snap["counters"]["query.partitions_probed"] >= 4
        assert snap["counters"]["query.bytes_read"] > 0
        assert snap["histograms"]["query.wall_s"]["count"] == 4
        for stage in ("signature", "route", "select", "read", "refine"):
            assert snap["histograms"][f"query.stage.{stage}_s"]["count"] == 4


class TestBatchAmortisation:
    @pytest.mark.parametrize("sample_every", [1, 3])
    def test_shared_spans_amortised_over_live_probes(
        self, obs_dataset, obs_queries, sample_every
    ):
        """The batch-shared signature/route spans are split across the
        probes that actually exist.  Under ``telemetry_sample_every=N``
        only every Nth query carries a probe, so the per-probe share must
        be ``span / live_probes`` — dividing by the full batch size
        instead (the old bug) under-reports the stage histograms by
        ``live/rows``.  Invariant pinned here: the summed per-query stage
        time equals the measured shared span."""
        index = ClimberIndex.build(
            obs_dataset,
            _config(telemetry=True, telemetry_sample_every=sample_every),
        )
        index.knn_batch(obs_queries, 5)
        hist = index.stats()["metrics"]["histograms"]
        n_live = hist["query.wall_s"]["count"]
        assert n_live == (len(obs_queries) + sample_every - 1) // sample_every
        for stage in ("signature", "route"):
            stage_sum = hist[f"query.stage.{stage}_s"]["sum"]
            span_sum = hist[f"query.batch.{stage}_s"]["sum"]
            assert stage_sum == pytest.approx(span_sum, rel=1e-9)

    def test_fully_sampled_out_batch_records_no_stage_times(
        self, obs_dataset, obs_queries
    ):
        """A sampling cadence longer than the batch leaves zero live
        probes; the shared spans must not be charged to anyone (and must
        not divide by zero)."""
        cadence = len(obs_queries) + 5
        index = ClimberIndex.build(
            obs_dataset,
            _config(telemetry=True, telemetry_sample_every=cadence),
        )
        index.knn(obs_queries[0], 5)  # takes the tick-0 probe
        index.knn_batch(obs_queries, 5)  # ticks 1..6: all sampled out
        snap = index.stats()["metrics"]
        # The probe list collapses to None: no shared-span histogram, no
        # stage attribution — only the lone knn's probe left a breakdown.
        assert "query.batch.signature_s" not in snap["histograms"]
        assert snap["histograms"]["query.stage.signature_s"]["count"] == 1
        assert snap["counters"]["query.count"] == 1 + len(obs_queries)


# ---------------------------------------------------------------------------
# explain_query
# ---------------------------------------------------------------------------

EXPLAIN_STAGES = {"signature", "route", "select", "read", "refine"}


class TestExplainQuery:
    def test_knn_entry_structure(self, enabled_index, obs_queries):
        entry = enabled_index.explain_query(obs_queries[0], 5)
        assert entry["schema"] == OBS_SCHEMA
        assert entry["mode"] == "knn"
        assert entry["k"] == 5
        assert EXPLAIN_STAGES <= set(entry["stages"])
        assert all(s >= 0.0 for s in entry["stages"].values())
        assert entry["partitions_probed"] == len(entry["partitions"]) > 0
        assert entry["bytes_read"] > 0
        assert entry["records_examined"] >= len(entry["ids"])
        assert entry["cache"]["hits"] >= 0
        assert entry["cache"]["misses"] >= 0
        assert len(entry["ids"]) == len(entry["distances"]) == 5
        assert entry["distances"] == sorted(entry["distances"])
        json.dumps(entry)  # fully JSON-able

    def test_batch_totals_consistent(self, enabled_index, obs_queries):
        out = enabled_index.explain_query(obs_queries[:4], 5)
        assert out["schema"] == OBS_SCHEMA
        assert out["mode"] == "knn_batch"
        assert out["batch_size"] == len(out["queries"]) == 4
        assert out["shared_stages"] == ["signature", "route"]
        for entry in out["queries"]:
            assert EXPLAIN_STAGES <= set(entry["stages"])
        totals = out["totals"]
        assert totals["partitions_probed"] == sum(
            e["partitions_probed"] for e in out["queries"]
        )
        assert totals["bytes_read"] == sum(
            e["bytes_read"] for e in out["queries"]
        )
        assert totals["cache_hits"] == sum(
            e["cache"]["hits"] for e in out["queries"]
        )
        assert totals["cache_misses"] == sum(
            e["cache"]["misses"] for e in out["queries"]
        )
        json.dumps(out)

    def test_explain_works_with_telemetry_disabled(self, obs_dataset,
                                                   obs_queries):
        index = ClimberIndex.build(obs_dataset, _config(telemetry=False))
        entry = index.explain_query(obs_queries[0], 3)
        assert EXPLAIN_STAGES <= set(entry["stages"])
        assert len(entry["ids"]) == 3

    def test_explain_charges_logical_counters(self, obs_dataset, obs_queries):
        dfs = SimulatedDFS()
        index = ClimberIndex.build(obs_dataset, _config(), dfs=dfs)
        before = dfs.counters.bytes_read
        entry = index.explain_query(obs_queries[0], 5)
        assert dfs.counters.bytes_read == before + entry["bytes_read"]


# ---------------------------------------------------------------------------
# stats / reset_stats
# ---------------------------------------------------------------------------

class TestStats:
    def test_stats_sections(self, enabled_index):
        stats = enabled_index.stats()
        assert stats["schema"] == OBS_SCHEMA
        assert stats["telemetry_enabled"] is True
        assert stats["index"]["records"] == enabled_index.n_records
        assert stats["index"]["groups"] == enabled_index.n_groups
        assert stats["index"]["partitions"] == enabled_index.n_partitions
        assert stats["metrics"]["schema"] == OBS_SCHEMA
        assert stats["dfs"]["bytes_written"] > 0
        assert "cache_used_bytes" in stats["dfs"]
        assert stats["process"]["schema"] == OBS_SCHEMA
        json.dumps(stats)

    def test_reset_scope(self, obs_dataset, obs_queries):
        """reset_stats zeroes the index registry only — logical DFS
        counters (paper accounting) survive."""
        dfs = SimulatedDFS()
        index = ClimberIndex.build(
            obs_dataset, _config(telemetry=True), dfs=dfs
        )
        index.knn(obs_queries[0], 5)
        assert index.stats()["metrics"]["counters"]["query.count"] == 1
        bytes_read = dfs.counters.bytes_read
        assert bytes_read > 0
        index.reset_stats()
        stats = index.stats()
        assert stats["metrics"]["counters"]["query.count"] == 0
        assert dfs.counters.bytes_read == bytes_read
        assert stats["dfs"]["bytes_read"] == bytes_read


# ---------------------------------------------------------------------------
# Fallback visibility (satellite: no silent serial degrades)
# ---------------------------------------------------------------------------

def _fallback_count() -> int:
    return global_registry().counter("parallel.fallbacks").value


class TestFallbackVisibility:
    def test_make_executor_degrade_warns_and_counts(self):
        before = _fallback_count()
        with pytest.warns(RuntimeWarning, match="degraded"):
            executor = make_executor("process", 2, require_shared_memory=True)
        try:
            assert isinstance(executor, ThreadExecutor)
        finally:
            executor.close()
        assert _fallback_count() == before + 1

    def test_process_build_redistribution_does_not_fall_back(self,
                                                             tiny_dataset):
        # Historically process pools fell back to serial encodes (engine
        # handles aren't picklable) with a "encoding serially" warning;
        # encode specs are now plain picklable data, so a process build
        # must complete without any fallback warning or counter bump.
        config = _config(
            capacity=32, n_input_partitions=4, executor="process", n_workers=2
        )
        before = _fallback_count()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            ClimberIndex.build(tiny_dataset, config)
        assert _fallback_count() == before

    def test_v1_object_store_parallel_write_warns(self, tiny_dataset):
        config = _config(
            capacity=32, n_input_partitions=4, partition_format="v1",
            executor="thread", n_workers=2,
        )
        before = _fallback_count()
        with pytest.warns(RuntimeWarning, match="writing serially"):
            ClimberIndex.build(tiny_dataset, config, dfs=SimulatedDFS(
                partition_format="v1"
            ))
        assert _fallback_count() == before + 1


# ---------------------------------------------------------------------------
# Build instrumentation
# ---------------------------------------------------------------------------

class TestBuildTelemetry:
    def test_build_spans_recorded(self, enabled_index):
        snap = enabled_index.stats()["metrics"]
        hists = snap["histograms"]
        for span in ("build.skeleton_s", "build.convert_s",
                     "build.redistribute_s", "build.wall_s",
                     "build.redistribute.compile_s",
                     "build.redistribute.route_s",
                     "build.redistribute.write_s",
                     "build.convert.block_s"):
            assert hists[span]["count"] >= 1, span
        # Per-worker attribution from wrap_tasks (serial build: main thread).
        assert any(
            name.startswith("parallel.worker.") and name.endswith(".tasks")
            for name in snap["counters"]
        )

    def test_disabled_build_records_nothing(self, obs_dataset):
        index = ClimberIndex.build(obs_dataset, _config(telemetry=False))
        assert index.stats()["metrics"]["histograms"] == {}

    def test_dfs_registry_carries_logical_counters(self):
        dfs = SimulatedDFS()
        snap = dfs.registry.snapshot()
        assert set(snap["counters"]) == {
            metric for _, metric in type(dfs.counters).METRIC_NAMES
        }

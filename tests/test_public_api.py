"""Tests for the top-level package surface."""

from __future__ import annotations

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_climber_exports(self):
        assert repro.ClimberIndex is not None
        assert repro.ClimberConfig is not None
        assert repro.QueryResult is not None

    def test_dataset_exports(self):
        ds = repro.random_walk_dataset(10, 16, seed=1)
        assert isinstance(ds, repro.SeriesDataset)
        assert repro.make_dataset("DNA", 5).count == 5

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_end_to_end_via_top_level(self):
        ds = repro.random_walk_dataset(500, 32, seed=2)
        cfg = repro.ClimberConfig(word_length=8, n_pivots=16, prefix_length=4,
                                  capacity=100, sample_fraction=0.3,
                                  n_input_partitions=8)
        index = repro.ClimberIndex.build(ds, cfg)
        res = index.knn(ds.values[0], 5)
        assert len(res.ids) == 5

    def test_exceptions_importable(self):
        assert issubclass(repro.MemoryBudgetExceeded, repro.ReproError)
        assert issubclass(repro.ConfigurationError, repro.ReproError)

    def test_storage_fault_exceptions_importable(self):
        # PR 8: the resilience error taxonomy is part of the public API.
        assert issubclass(repro.PartitionCorruptError, repro.StorageError)
        assert issubclass(repro.PartitionLostError, repro.StorageError)
        assert issubclass(repro.TransientReadError, repro.StorageError)
        assert issubclass(repro.ReadTimeoutError, repro.StorageError)

    def test_resilience_exports(self):
        plan = repro.FaultPlan(seed=7, transient_rate=0.1)
        assert plan.active
        assert repro.FaultInjector is not None
        assert repro.RetryPolicy().max_attempts >= 1
        for name in ("FaultPlan", "FaultInjector", "RetryPolicy"):
            assert name in repro.__all__

    def test_chaos_config_knobs(self):
        cfg = repro.ClimberConfig(
            fault_plan=repro.FaultPlan(seed=3),
            retry_policy=repro.RetryPolicy(max_attempts=2),
            on_partition_failure="skip",
            verify_checksums="eager",
            partition_checksums=True,
            telemetry_sample_every=8,
        )
        assert cfg.effective_on_partition_failure == "skip"
        assert cfg.effective_fault_plan.seed == 3

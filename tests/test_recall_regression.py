"""End-to-end recall regression gate (Def. 4 / Lernaean-Hydra protocol).

The evaluation harness has always *measured* recall against exact ground
truth (``repro.evaluation.groundtruth``) but never *enforced* it, so a
perf refactor of the conversion/assignment path had no quality safety
net.  This test is that net: a small seeded random-walk index must reach
a recorded average recall@10 floor — for both the legacy and the fused
conversion pipelines, which must also agree on every answer (identical
group assignments make the two indexes byte-identical on disk).

The floor (0.40) is the value measured at the recorded seeds when the
gate was introduced; CLIMBER-kNN on this workload is deterministic given
the seeds, so any drop signals a real behaviour change, not noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset, sample_queries
from repro.evaluation import exact_ground_truth

K = 10
N_QUERIES = 25
RECALL_FLOOR = 0.40

CFG = ClimberConfig(word_length=8, n_pivots=32, prefix_length=6, capacity=150,
                    sample_fraction=0.25, n_input_partitions=16, seed=3)


@pytest.fixture(scope="module")
def workload():
    dataset = random_walk_dataset(2500, 64, seed=17)
    queries = sample_queries(dataset, N_QUERIES, seed=99)
    truth = exact_ground_truth(dataset, queries, K)
    return dataset, queries, truth


@pytest.fixture(scope="module")
def indexes(workload):
    dataset, _, _ = workload
    return {
        mode: ClimberIndex.build(dataset, CFG, conversion=mode)
        for mode in ("legacy", "fused")
    }


def mean_recall(index, queries, truth, variant):
    recalls = [
        truth.recall_of(i, index.knn(q, K, variant=variant).ids)
        for i, q in enumerate(queries.values)
    ]
    return float(np.mean(recalls))


class TestRecallRegression:
    @pytest.mark.parametrize("mode", ["legacy", "fused"])
    @pytest.mark.parametrize("variant", ["knn", "adaptive"])
    def test_recall_floor(self, indexes, workload, mode, variant):
        _, queries, truth = workload
        recall = mean_recall(indexes[mode], queries, truth, variant)
        assert recall >= RECALL_FLOOR, (
            f"avg recall@{K} {recall:.3f} of conversion={mode!r} "
            f"variant={variant!r} fell below the recorded {RECALL_FLOOR} floor"
        )

    def test_conversion_modes_agree_on_every_answer(self, indexes, workload):
        """Identical group assignments -> identical answers per query."""
        _, queries, _ = workload
        legacy, fused = indexes["legacy"], indexes["fused"]
        for ra, rb in zip(legacy.knn_batch(queries.values, K),
                          fused.knn_batch(queries.values, K)):
            np.testing.assert_array_equal(ra.ids, rb.ids)
            np.testing.assert_array_equal(ra.distances, rb.distances)

    def test_conversion_modes_build_identical_partitions(self, indexes):
        legacy, fused = indexes["legacy"], indexes["fused"]
        assert (legacy.skeleton.to_bytes() == fused.skeleton.to_bytes())
        assert legacy.dfs.list_partitions() == fused.dfs.list_partitions()
        for pid in legacy.dfs.list_partitions():
            ea, eb = legacy.dfs.engine, fused.dfs.engine
            na, nb = ea._name(pid), eb._name(pid)
            assert (bytes(ea.backend.read_range(na, 0, ea.backend.size(na)))
                    == bytes(eb.backend.read_range(nb, 0, eb.backend.size(nb))))

    def test_exact_ground_truth_self_consistency(self, workload):
        """Queries drawn from the dataset contain themselves in the truth."""
        _, queries, truth = workload
        for i, qid in enumerate(truth.query_ids):
            assert qid in set(truth.neighbors_of(i).tolist())

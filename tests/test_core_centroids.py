"""Tests for Algorithm 2 (data-driven centroid computation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compute_centroids
from repro.exceptions import ConfigurationError
from repro.pivots import overlap_distance


class TestComputeCentroids:
    def test_most_frequent_is_first_centroid(self):
        sigs = [(1, 2, 3), (4, 5, 6), (7, 8, 9)]
        freqs = [5, 50, 10]
        out = compute_centroids(
            sigs, freqs, sample_fraction=1.0, capacity=1, epsilon=2
        )
        assert out[0] == (4, 5, 6)

    def test_epsilon_blocks_near_duplicates(self):
        """A candidate within epsilon of a chosen centroid is skipped."""
        sigs = [(1, 2, 3), (1, 2, 4), (7, 8, 9)]
        freqs = [100, 90, 80]
        out = compute_centroids(
            sigs, freqs, sample_fraction=1.0, capacity=1, epsilon=2
        )
        assert (1, 2, 3) in out
        assert (1, 2, 4) not in out  # OD = 1 < epsilon
        assert (7, 8, 9) in out

    def test_epsilon_zero_keeps_everything_large_enough(self):
        sigs = [(1, 2), (1, 3), (1, 4)]
        freqs = [10, 9, 8]
        out = compute_centroids(
            sigs, freqs, sample_fraction=1.0, capacity=1, epsilon=0
        )
        assert len(out) == 3

    def test_all_selected_centroids_respect_epsilon(self):
        rng = np.random.default_rng(3)
        sigs = [tuple(sorted(rng.choice(30, size=5, replace=False))) for _ in range(200)]
        freqs = rng.integers(1, 100, size=200).tolist()
        eps = 3
        out = compute_centroids(
            sigs, freqs, sample_fraction=0.5, capacity=2, epsilon=eps
        )
        for i in range(len(out)):
            for j in range(i + 1, len(out)):
                assert overlap_distance(out[i], out[j]) >= eps

    def test_capacity_threshold_stops_selection(self):
        """Once the size estimate falls below alpha*c, selection stops."""
        sigs = [(1, 2), (3, 4), (5, 6), (7, 8)]
        freqs = [1000, 2, 2, 2]
        out = compute_centroids(
            sigs, freqs, sample_fraction=0.1, capacity=10_000, epsilon=1
        )
        # First is always taken; the rest estimate far below 0.1 * 10000.
        assert out == [(1, 2)]

    def test_max_centroids_cap(self):
        sigs = [(i, i + 100) for i in range(50)]
        freqs = [100] * 50
        out = compute_centroids(
            sigs, freqs, sample_fraction=1.0, capacity=1, epsilon=1,
            max_centroids=5,
        )
        assert len(out) == 5

    def test_empty_input(self):
        assert compute_centroids([], [], sample_fraction=0.5, capacity=10,
                                 epsilon=1) == []

    def test_deterministic_given_tied_frequencies(self):
        sigs = [(5, 6), (1, 2), (3, 4)]
        freqs = [10, 10, 10]
        a = compute_centroids(sigs, freqs, sample_fraction=1.0, capacity=1, epsilon=1)
        b = compute_centroids(list(reversed(sigs)), list(reversed(freqs)),
                              sample_fraction=1.0, capacity=1, epsilon=1)
        assert a == b
        assert a[0] == (1, 2)  # lexicographic tie-break

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            compute_centroids([(1, 2)], [1, 2], sample_fraction=0.5,
                              capacity=10, epsilon=1)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            compute_centroids([(1, 2)], [1], sample_fraction=0.0,
                              capacity=10, epsilon=1)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            compute_centroids([(1, 2)], [1], sample_fraction=0.5,
                              capacity=0, epsilon=1)

    def test_skewed_data_yields_fewer_centroids_than_uniform(self):
        """Heavy skew concentrates mass in one group; uniform data spreads it."""
        rng = np.random.default_rng(9)
        uniform_sigs = [tuple(sorted(rng.choice(60, size=4, replace=False)))
                        for _ in range(300)]
        uniform = compute_centroids(
            uniform_sigs, [10] * 300, sample_fraction=1.0, capacity=30, epsilon=2
        )
        skew_sigs = uniform_sigs
        skew_freqs = [3000] + [1] * 299
        skewed = compute_centroids(
            skew_sigs, skew_freqs, sample_fraction=1.0, capacity=30, epsilon=2
        )
        assert len(skewed) <= len(uniform)

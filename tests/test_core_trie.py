"""Tests for the group partition trie (§IV-D, paper Fig. 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_group_trie
from repro.exceptions import ConfigurationError


def paper_figure5_group():
    """A group shaped like the paper's G3 example: 5 250 records, c=3 000."""
    sigs = [
        (6, 2, 1), (6, 2, 5), (6, 7, 1), (6, 7, 3),
        (4, 1, 2), (5, 3, 2), (1, 2, 6),
    ]
    counts = [1200.0, 900.0, 800.0, 800.0, 900.0, 400.0, 250.0]
    return build_group_trie(sigs, counts, capacity=3000.0)


class TestBuildTrie:
    def test_total_count(self):
        root = paper_figure5_group()
        assert root.count == pytest.approx(5250.0)

    def test_root_splits_on_first_pivot(self):
        root = paper_figure5_group()
        assert set(root.children) == {6, 4, 5, 1}
        assert root.children[6].count == pytest.approx(3700.0)
        assert root.children[4].count == pytest.approx(900.0)

    def test_oversized_child_splits_recursively(self):
        """Pivot-6 child (3 700 > 3 000) must split by second pivot."""
        root = paper_figure5_group()
        six = root.children[6]
        assert not six.is_leaf
        assert set(six.children) == {2, 7}
        assert six.children[2].count == pytest.approx(2100.0)
        assert six.children[7].count == pytest.approx(1600.0)

    def test_within_capacity_children_stay_leaves(self):
        root = paper_figure5_group()
        assert root.children[4].is_leaf
        assert root.children[5].is_leaf

    def test_small_group_is_single_leaf(self):
        root = build_group_trie([(1, 2, 3)], [10.0], capacity=100.0)
        assert root.is_leaf
        assert root.count == 10.0

    def test_empty_group(self):
        root = build_group_trie([], [], capacity=100.0)
        assert root.is_leaf
        assert root.count == 0.0

    def test_leaf_counts_sum_to_total(self):
        rng = np.random.default_rng(4)
        sigs = [tuple(rng.choice(20, size=4, replace=False)) for _ in range(150)]
        counts = rng.integers(1, 500, size=150).astype(float).tolist()
        root = build_group_trie(sigs, counts, capacity=800.0)
        assert sum(l.count for l in root.leaves()) == pytest.approx(sum(counts))

    def test_split_stops_at_prefix_exhaustion(self):
        """Identical signatures cannot split further even above capacity."""
        root = build_group_trie([(1, 2)], [1e6], capacity=10.0)
        node = root.descend((1, 2))
        assert node.is_leaf
        assert node.depth == 2
        assert node.count == 1e6

    def test_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            build_group_trie([(1, 2)], [1.0, 2.0], capacity=10.0)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            build_group_trie([(1, 2)], [1.0], capacity=0.0)


class TestDescend:
    def test_full_path(self):
        root = paper_figure5_group()
        node = root.descend((6, 2, 1))
        assert node.path == (6, 2)  # leaf at depth 2 (2 100 <= 3 000)

    def test_paper_example2_stops_at_internal_node(self):
        """Query <6,2,7>: lands on the pivot-6/2 subtree of G3."""
        root = paper_figure5_group()
        node = root.descend((6, 2, 7))
        assert node.path == (6, 2)

    def test_unknown_first_pivot_returns_root(self):
        root = paper_figure5_group()
        assert root.descend((9, 9, 9)) is root

    def test_descend_path_lists_all_nodes(self):
        root = paper_figure5_group()
        nodes = root.descend_path((6, 2, 1))
        assert [n.path for n in nodes] == [(), (6,), (6, 2)]

    def test_descend_on_leaf_root(self):
        root = build_group_trie([(1, 2)], [5.0], capacity=10.0)
        assert root.descend((1, 2)) is root


class TestPartitionBookkeeping:
    def test_finalize_propagates_unions(self):
        root = paper_figure5_group()
        for i, leaf in enumerate(root.leaves()):
            leaf.partition_ids = {i % 2}
        root.finalize_partitions()
        assert root.partition_ids == {0, 1}
        six = root.children[6]
        assert six.partition_ids == six.subtree_partition_ids()

    def test_node_count(self):
        root = paper_figure5_group()
        leaves = sum(1 for _ in root.leaves())
        assert root.node_count() >= leaves
        single = build_group_trie([(1, 2)], [1.0], capacity=10.0)
        assert single.node_count() == 1

    def test_repr_smoke(self):
        assert "TrieNode" in repr(paper_figure5_group())


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_trie_invariants_property(data):
    """Properties: disjoint leaf coverage, capacity respected where splittable."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    m = data.draw(st.integers(2, 5))
    n_sigs = data.draw(st.integers(1, 60))
    capacity = data.draw(st.floats(1.0, 500.0))
    sigs = [tuple(rng.choice(12, size=m, replace=False)) for _ in range(n_sigs)]
    # Deduplicate (build_group_trie expects distinct signatures with counts).
    uniq = {}
    for s in sigs:
        uniq[s] = uniq.get(s, 0.0) + float(rng.integers(1, 50))
    root = build_group_trie(list(uniq), list(uniq.values()), capacity)

    # (1) Leaves partition the mass.
    assert sum(l.count for l in root.leaves()) == pytest.approx(sum(uniq.values()))
    # (2) Every signature routes to exactly one leaf, consistent with prefix.
    for sig in uniq:
        node = root.descend(sig)
        assert node.path == sig[: node.depth]
    # (3) A leaf above capacity can exist only once its prefix is exhausted
    #     (capacity is a soft constraint, §V).
    for leaf in root.leaves():
        if leaf.count > capacity:
            assert leaf.depth == m


class TestDeepTrieIteration:
    def test_deep_trie_beyond_recursion_limit(self):
        """Splitting is iterative: a trie as deep as the prefix must build
        even when the prefix far exceeds Python's recursion limit."""
        import sys

        depth = sys.getrecursionlimit() + 500
        shared = tuple(range(depth - 1))
        sig_a = shared + (depth,)
        sig_b = shared + (depth + 1,)
        # Both signatures share a depth-1 prefix and jointly exceed the
        # capacity at every level, so the trie splits all the way down.
        root = build_group_trie([sig_a, sig_b], [60.0, 60.0], capacity=100.0)
        leaves = list(root.leaves())
        assert len(leaves) == 2
        assert sorted(leaf.path for leaf in leaves) == sorted([sig_a, sig_b])
        assert all(leaf.depth == depth for leaf in leaves)
        # Walks are iterative too.
        assert root.descend(sig_a).path == sig_a
        assert root.node_count() == depth + 2

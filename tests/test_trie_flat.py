"""Parity suite for the CSR flat-trie router (core/trie_flat.py).

Every claim the flat subsystem makes is checked against the pointer-based
:class:`TrieNode` reference on randomized tries: batch ``descend_many``
against per-record ``descend``, ``descend_path_ids`` against
``descend_path``, ``covering_partitions``/``subtree_keys`` against the
recursive leaf walks, and the router's bulk ``route``/``partition_layout``
against the legacy per-record redistribution grouping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ClimberConfig,
    ClimberIndex,
    FlatTrie,
    FlatTrieRouter,
    build_group_trie,
    first_fit_decreasing,
)
from repro.core.skeleton import (
    GroupEntry,
    IndexSkeleton,
    cluster_key,
)
from repro.datasets import make_dataset
from repro.exceptions import ConfigurationError

N_PIVOTS = 24
PREFIX = 6


def random_group_trie(rng: np.random.Generator, next_pid: int = 0):
    """A packed, finalised group trie like builder Step 3 produces."""
    n_sigs = int(rng.integers(1, 120))
    sigs = set()
    while len(sigs) < n_sigs:
        sigs.add(tuple(int(p) for p in rng.permutation(N_PIVOTS)[:PREFIX]))
    sigs = sorted(sigs)
    counts = rng.uniform(1.0, 120.0, size=len(sigs)).tolist()
    capacity = float(rng.uniform(30.0, 400.0))
    trie = build_group_trie(sigs, counts, capacity)
    leaves = list(trie.leaves())
    bins = first_fit_decreasing(
        [(leaf.path, leaf.count) for leaf in leaves], capacity
    )
    leaf_by_path = {leaf.path: leaf for leaf in leaves}
    pids = []
    for bin_paths in bins:
        pid = next_pid
        next_pid += 1
        for path in bin_paths:
            leaf_by_path[path].partition_ids = {pid}
        pids.append(pid)
    trie.finalize_partitions()
    return trie, sigs, pids, next_pid


def random_queries(rng: np.random.Generator, sigs, n: int) -> np.ndarray:
    """A mix of member signatures and fresh random permutations."""
    rows = []
    for _ in range(n):
        if sigs and rng.random() < 0.5:
            rows.append(sigs[int(rng.integers(0, len(sigs)))])
        else:
            rows.append(tuple(int(p) for p in rng.permutation(N_PIVOTS)[:PREFIX]))
    return np.asarray(rows, dtype=np.int64)


class TestFlatTrieParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_descend_many_matches_descend(self, seed):
        rng = np.random.default_rng(seed)
        trie, sigs, _, _ = random_group_trie(rng)
        ft = FlatTrie(trie, group_id=0, n_pivots=N_PIVOTS)
        queries = random_queries(rng, sigs, 200)
        nids = ft.descend_many(queries)
        for row, nid in zip(queries, nids):
            assert ft.nodes[int(nid)] is trie.descend(row)

    @pytest.mark.parametrize("seed", range(8))
    def test_descend_path_matches(self, seed):
        rng = np.random.default_rng(100 + seed)
        trie, sigs, _, _ = random_group_trie(rng)
        ft = FlatTrie(trie, group_id=3, n_pivots=N_PIVOTS)
        for row in random_queries(rng, sigs, 100):
            sig = tuple(int(p) for p in row)
            ref = trie.descend_path(sig)
            got = [ft.nodes[i] for i in ft.descend_path_ids(sig)]
            assert [id(n) for n in got] == [id(n) for n in ref]
            assert all(a is b for a, b in
                       zip(ft.descend_path_nodes(sig), ref))

    @pytest.mark.parametrize("seed", range(8))
    def test_covering_partitions_and_subtree_keys(self, seed):
        rng = np.random.default_rng(200 + seed)
        trie, _, _, _ = random_group_trie(rng)
        gid = int(rng.integers(0, 9))
        ft = FlatTrie(trie, group_id=gid, n_pivots=N_PIVOTS)
        nids = list(range(ft.n_nodes))
        covers = ft.covering_partitions(nids)
        for nid, pids in zip(nids, covers):
            node = ft.nodes[nid]
            assert sorted(node.partition_ids) == [int(p) for p in pids]
            ref_keys = [
                cluster_key(gid, leaf.path) for leaf in node.leaves()
            ]
            assert list(ft.subtree_keys(nid)) == ref_keys

    def test_single_leaf_group(self):
        trie = build_group_trie([(1, 2, 3)], [10.0], capacity=100.0)
        trie.partition_ids = {7}
        ft = FlatTrie(trie, group_id=2, n_pivots=8)
        assert ft.n_nodes == 1
        assert ft.descend_many(np.array([[1, 2, 3]]))[0] == 0
        assert ft.covering_partitions([0])[0].tolist() == [7]
        assert ft.subtree_keys(0) == ["G2"]

    def test_empty_group(self):
        trie = build_group_trie([], [], capacity=10.0)
        ft = FlatTrie(trie, group_id=0, n_pivots=8)
        assert ft.n_nodes == 1 and ft.n_edges == 0
        assert ft.descend_many(np.zeros((4, 3), dtype=np.int64)).tolist() == [0] * 4

    def test_out_of_range_pivot_misses(self):
        trie = build_group_trie(
            [(0, 1), (1, 0)], [50.0, 50.0], capacity=60.0
        )
        ft = FlatTrie(trie, group_id=0, n_pivots=2)
        # pivot 5 exceeds the stride: the walk must stall at the root, not
        # alias another node's composite key.
        assert ft.descend_many(np.array([[5, 0]]))[0] == 0

    def test_foreign_node_rejected(self):
        t1 = build_group_trie([(0, 1)], [1.0], 10.0)
        t2 = build_group_trie([(0, 1)], [1.0], 10.0)
        ft = FlatTrie(t1, group_id=0, n_pivots=4)
        with pytest.raises(ConfigurationError):
            ft.id_of(t2)


def build_random_skeleton(rng: np.random.Generator):
    """A multi-group skeleton with packed tries and default partitions."""
    n_groups = int(rng.integers(2, 6))
    groups = []
    next_pid = 0
    for gid in range(n_groups):
        trie, sigs, pids, next_pid = random_group_trie(rng, next_pid)
        groups.append(
            GroupEntry(
                group_id=gid,
                centroid=() if gid == 0 else tuple(
                    sorted(int(p) for p in rng.permutation(N_PIVOTS)[:PREFIX])
                ),
                trie=trie,
                default_partition=pids[int(rng.integers(0, len(pids)))],
                est_size=trie.count,
            )
        )
    return IndexSkeleton(
        prefix_length=PREFIX,
        n_pivots=N_PIVOTS,
        word_length=8,
        groups=groups,
        n_partitions=next_pid,
    )


def reference_route(skeleton, ranked, gids):
    """The legacy per-record routing loop (builder Step 4 semantics)."""
    out = []
    for row, gid in zip(ranked, gids):
        entry = skeleton.groups[int(gid)]
        node = entry.trie.descend(row)
        if node.is_leaf and node.partition_ids:
            out.append((min(node.partition_ids),
                        cluster_key(entry.group_id, node.path)))
        else:
            out.append((entry.default_partition,
                        cluster_key(entry.group_id, None)))
    return out


class TestFlatTrieRouter:
    @pytest.mark.parametrize("seed", range(6))
    def test_route_matches_per_record_walks(self, seed):
        rng = np.random.default_rng(300 + seed)
        skeleton = build_random_skeleton(rng)
        router = FlatTrieRouter(skeleton)
        n = 400
        ranked = random_queries(rng, [], n)
        gids = rng.integers(0, len(skeleton.groups), size=n)
        kid_of = router.route(ranked, gids)
        ref = reference_route(skeleton, ranked, gids)
        for kid, (pid, key) in zip(kid_of, ref):
            assert int(router.kid_pid[int(kid)]) == pid
            assert router.cluster_keys[int(kid)] == key

    @pytest.mark.parametrize("seed", range(6))
    def test_partition_layout_matches_from_clusters_grouping(self, seed):
        """The sort-based grouping equals the legacy dict-of-lists layout."""
        rng = np.random.default_rng(400 + seed)
        skeleton = build_random_skeleton(rng)
        router = FlatTrieRouter(skeleton)
        n = 300
        ranked = random_queries(rng, [], n)
        gids = rng.integers(0, len(skeleton.groups), size=n)
        kid_of = router.route(ranked, gids)
        order, parts = router.partition_layout(kid_of)

        # Legacy grouping: pid -> key -> arrival-ordered record rows.
        clusters: dict[int, dict[str, list[int]]] = {}
        for row, (pid, key) in enumerate(
            reference_route(skeleton, ranked, gids)
        ):
            clusters.setdefault(pid, {}).setdefault(key, []).append(row)

        assert [p[0] for p in parts] == sorted(clusters)
        for pid, start, end, header in parts:
            ref_keys = sorted(clusters[pid])
            assert list(header) == ref_keys
            offset = 0
            for key in ref_keys:
                rows = clusters[pid][key]
                assert header[key] == (offset, len(rows))
                got = order[start + offset:start + offset + len(rows)]
                assert got.tolist() == rows  # stable sort: arrival order
                offset += len(rows)
            assert end - start == offset

    def test_searchsorted_fallback_matches_dense(self, monkeypatch):
        import repro.core.trie_flat as tf

        rng = np.random.default_rng(77)
        skeleton = build_random_skeleton(rng)
        dense = FlatTrieRouter(skeleton)
        assert dense.edge_map is not None
        monkeypatch.setattr(tf, "_DENSE_EDGE_MAP_CAP", 0)
        sparse = FlatTrieRouter(skeleton)
        assert sparse.edge_map is None
        ranked = random_queries(rng, [], 500)
        gids = rng.integers(0, len(skeleton.groups), size=500)
        assert np.array_equal(
            dense.route(ranked, gids), sparse.route(ranked, gids)
        )

    def test_route_validates_inputs(self):
        rng = np.random.default_rng(5)
        skeleton = build_random_skeleton(rng)
        router = FlatTrieRouter(skeleton)
        with pytest.raises(ConfigurationError):
            router.route(np.zeros((3, PREFIX), dtype=np.int64),
                         np.zeros(2, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            router.route(np.zeros((1, PREFIX), dtype=np.int64),
                         np.array([len(skeleton.groups)]))


class TestQueryPathUsesFlat:
    def test_index_candidates_walk_flat_arrays(self):
        dataset = make_dataset("RandomWalk", 1200, length=32, seed=4)
        index = ClimberIndex.build(
            dataset,
            ClimberConfig(word_length=8, n_pivots=32, prefix_length=6,
                          capacity=120, sample_fraction=0.2,
                          n_input_partitions=8, seed=1),
        )
        flat = index.routing.flat
        assert flat is index.skeleton.flat_router()  # one shared compile
        sig = index.query_signature(dataset.values[0])
        for cand in index.group_candidates(sig):
            ft = flat.tries[cand.entry.group_id]
            ref = cand.entry.trie.descend_path(
                tuple(int(p) for p in sig)
            )
            assert [id(n) for n in cand.path] == [id(n) for n in ref]
            # candidate nodes are the flat compile's node objects
            assert all(ft.id_of(n) >= 0 for n in cand.path)

"""End-to-end chaos tests: corruption, degradation, and the parity oracle.

Three layers of guarantees pinned down here:

* **Integrity** — per-section CRC32 checksums (partition header v3)
  catch bit flips in every checksummed section, in every verify mode
  that covers the section, raising
  :class:`~repro.exceptions.PartitionCorruptError` and bumping
  ``dfs.corruption_detected``.
* **Degradation** — ``on_partition_failure="skip"`` answers queries from
  whatever partitions survive, surfacing ``degraded``/``coverage``/
  ``partitions_failed`` through stats, ``explain_query`` and telemetry.
* **The zero-fault parity oracle** — a zero-rate
  :class:`~repro.resilience.FaultPlan` (the full injector + retry + CRC
  machinery armed, no fault ever fired) is bit-transparent: answers and
  logical counters identical to a plain build, across storage formats
  and worker counts.  Plus: same chaos seed, same results — twice.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import ON_PARTITION_FAILURE_ENV, ClimberConfig
from repro.core.index import ClimberIndex
from repro.exceptions import (
    ConfigurationError,
    PartitionCorruptError,
    PartitionLostError,
)
from repro.obs import Telemetry
from repro.resilience import (
    FAULT_ENV_BITFLIP_RATE,
    FAULT_ENV_LOSS_RATE,
    FAULT_ENV_RATE,
    FAULT_ENV_SEED,
    FAULT_ENV_STRAGGLER_RATE,
    FaultPlan,
    RetryPolicy,
)
from repro.series import SeriesDataset
from repro.storage import PartitionFile, SimulatedDFS
from repro.storage.engine import decode_v2_header

#: This module pins down explicit, seeded fault plans against fault-free
#: references, so ambient chaos (the CI smoke exports CLIMBER_FAULT_* over
#: the whole tier-1 suite) is scrubbed here — otherwise the "plain"
#: reference builds would themselves run faulted and the parity oracles
#: would compare two different chaos schedules.
CHAOS_ENV = (
    FAULT_ENV_SEED, FAULT_ENV_RATE, FAULT_ENV_LOSS_RATE,
    FAULT_ENV_BITFLIP_RATE, FAULT_ENV_STRAGGLER_RATE,
    ON_PARTITION_FAILURE_ENV,
)


@pytest.fixture(autouse=True)
def _scrub_chaos_env(monkeypatch):
    for var in CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)


@pytest.fixture(scope="class", autouse=True)
def _scrub_chaos_env_for_class_fixtures():
    # Class-scoped builds (lossy_setup) run before the function-scoped
    # scrub above, so the env must already be clean at class setup.
    with pytest.MonkeyPatch.context() as mp:
        for var in CHAOS_ENV:
            mp.delenv(var, raising=False)
        yield


def _dataset(n=2000, length=64, seed=17):
    rng = np.random.default_rng(seed)
    return SeriesDataset(rng.standard_normal((n, length)))


def _config(**overrides):
    base = dict(
        word_length=8,
        n_pivots=24,
        prefix_length=4,
        capacity=64,
        sample_fraction=0.5,
        seed=5,
        n_input_partitions=8,
    )
    base.update(overrides)
    return ClimberConfig(**base)


def _queries(n=10, length=64, seed=23):
    return np.random.default_rng(seed).standard_normal((n, length))


def _answers(index, queries, k=5, **kwargs):
    return [
        (tuple(int(i) for i in r.ids), tuple(float(d) for d in r.distances))
        for r in index.knn_batch(queries, k, **kwargs)
    ]


def make_partition(pid="p0", n_clusters=3, per_cluster=5, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


# -- checksum integrity -----------------------------------------------------------


class TestChecksumIntegrity:
    def _dfs_with_flipped_byte(self, section, verify="lazy"):
        """A DFS whose stored p0 has one bit flipped inside ``section``."""
        dfs = SimulatedDFS(verify=verify)
        dfs.write_partition(make_partition("p0"))
        backend = dfs.engine.backend
        name = "p0.part"
        payload = bytearray(
            backend.read_range(name, 0, backend.size(name))
        )
        h = decode_v2_header(bytes(payload))
        offsets = {
            "meta": h.header_size,
            "directory": h.dir_offset,
            "ids": h.ids_offset,
            "values": h.values_offset,
        }
        payload[offsets[section] + 1] ^= 0x04
        backend.write(name, bytes(payload))
        return dfs

    @pytest.mark.parametrize("section", ["meta", "directory", "ids", "values"])
    def test_eager_verify_catches_every_section(self, section):
        dfs = self._dfs_with_flipped_byte(section, verify="eager")
        with pytest.raises(PartitionCorruptError):
            dfs.read_partition("p0")
        c = dfs.counters
        assert c.corruption_detected >= 1
        assert c.read_failures == 1
        assert c.partitions_read == 0

    @pytest.mark.parametrize("section", ["meta", "directory"])
    def test_lazy_verify_catches_structural_sections_at_open(self, section):
        dfs = self._dfs_with_flipped_byte(section, verify="lazy")
        with pytest.raises(PartitionCorruptError):
            dfs.read_partition("p0")
        assert dfs.counters.corruption_detected >= 1

    @pytest.mark.parametrize("section", ["ids", "values"])
    def test_lazy_verify_catches_payload_on_first_map(self, section):
        dfs = self._dfs_with_flipped_byte(section, verify="lazy")
        part = dfs.read_partition("p0")  # open succeeds: payload untouched
        with pytest.raises(PartitionCorruptError):
            part.read_cluster("g0/0")
        assert dfs.counters.corruption_detected >= 1

    @pytest.mark.parametrize("section", ["ids", "values"])
    def test_verify_off_serves_corrupt_payload(self, section):
        # Documented trade-off: "off" skips CRC checks entirely, so the
        # flip reads back as data — the mode exists for measuring checksum
        # overhead, not for production use.
        dfs = self._dfs_with_flipped_byte(section, verify="off")
        part = dfs.read_partition("p0")
        part.read_cluster("g0/0")
        assert dfs.counters.corruption_detected == 0

    def test_legacy_v2_payload_still_readable(self):
        # checksums=False writes byte-exact legacy version-2 payloads; a
        # default (verifying) DFS must read them without complaint.
        writer = SimulatedDFS(checksums=False)
        ref = make_partition("p0")
        writer.write_partition(ref)
        name = "p0.part"
        payload = bytes(writer.engine.backend.read_range(
            name, 0, writer.engine.backend.size(name)
        ))
        assert decode_v2_header(payload).crcs is None
        reader = SimulatedDFS(verify="eager")
        reader.engine.backend.write(name, payload)
        reader._register("p0", ref.nbytes, ref.record_count,
                         ref.series_length)
        part = reader.read_partition("p0")
        np.testing.assert_array_equal(part.read_all()[1], ref.values)

    def test_checksummed_payload_carries_crc_block(self):
        a, b = SimulatedDFS(checksums=True), SimulatedDFS(checksums=False)
        for dfs in (a, b):
            dfs.write_partition(make_partition("p0"))

        def header(dfs):
            backend = dfs.engine.backend
            return decode_v2_header(bytes(
                backend.read_range("p0.part", 0, backend.size("p0.part"))
            ))

        ha, hb = header(a), header(b)
        assert ha.crcs is not None and len(ha.crcs) == 4
        assert hb.crcs is None
        # The CRC block costs 16 header bytes (possibly padded out to the
        # next 64-byte payload alignment boundary) and nothing logical.
        assert a.engine.physical_nbytes("p0") \
            > b.engine.physical_nbytes("p0")
        assert a.partition_nbytes("p0") == b.partition_nbytes("p0")

    def test_truncated_blob_raises_typed_storage_error(self):
        # A blob truncated mid-payload must surface as a typed
        # StorageError (never a bare struct/IndexError) and charge
        # read_failures.
        from repro.exceptions import StorageError

        dfs = SimulatedDFS()
        dfs.write_partition(make_partition("p0"))
        backend = dfs.engine.backend
        payload = bytes(backend.read_range("p0.part", 0,
                                           backend.size("p0.part")))
        backend.write("p0.part", payload[: len(payload) // 2])
        with pytest.raises(StorageError):
            part = dfs.read_partition("p0")
            part.read_all()
        assert dfs.counters.read_failures + \
            dfs.counters.corruption_detected >= 1


# -- graceful degradation ---------------------------------------------------------


class TestDegradedQueries:
    @pytest.fixture(scope="class")
    def lossy_setup(self):
        """An index over a store where ~30% of partitions are lost."""
        dataset = _dataset()
        plan = FaultPlan(seed=1234, loss_rate=0.3)
        config = _config(fault_plan=plan,
                         retry_policy=RetryPolicy(max_attempts=2,
                                                  backoff_base_s=0.0))
        index = ClimberIndex.build(dataset, config)
        lost = [
            p for p in index.dfs.list_partitions()
            if plan.lost(index.dfs.engine.blob_name(p))
        ]
        assert lost, "seed must lose at least one partition"
        reference = ClimberIndex.build(dataset, _config())
        return index, reference, lost

    def test_raise_mode_propagates_lost_partition(self, lossy_setup):
        index, _, lost = lossy_setup
        queries = _queries(30)
        with pytest.raises(PartitionLostError):
            for q in queries:
                index.knn(q, k=5, on_partition_failure="raise")

    def test_skip_mode_degrades_and_reports_coverage(self, lossy_setup):
        index, reference, lost = lossy_setup
        queries = _queries(30)
        results = index.knn_batch(queries, k=5, on_partition_failure="skip")
        reference_results = reference.knn_batch(queries, k=5)
        degraded = [r for r in results if r.stats.degraded]
        assert degraded, "some query must touch a lost partition"
        read_failures = index.dfs.counters.read_failures
        assert read_failures >= len(degraded)
        for r, ref in zip(results, reference_results):
            stats = r.stats
            if not stats.degraded:
                assert stats.coverage == 1.0
                assert np.array_equal(r.ids, ref.ids)
                continue
            assert 0.0 <= stats.coverage < 1.0
            assert set(stats.partitions_failed) <= set(lost)
            assert not (set(stats.partitions_failed)
                        & set(stats.partitions_loaded))
            # A degraded answer comes from surviving partitions only: it
            # is a subset of what a scan of those partitions can yield,
            # and never *better* than the complete answer.
            assert len(r.ids) <= len(ref.ids)

    def test_skip_mode_never_raises_across_variants(self, lossy_setup):
        index, _, _ = lossy_setup
        queries = _queries(8)
        for variant in ("knn", "adaptive", "od-smallest"):
            results = index.knn_batch(queries, k=5, variant=variant,
                                      on_partition_failure="skip")
            assert len(results) == queries.shape[0]

    def test_explain_query_surfaces_degradation(self, lossy_setup):
        index, _, _ = lossy_setup
        queries = _queries(30)
        report = index.explain_query(queries, k=5,
                                     on_partition_failure="skip")
        assert report["totals"]["degraded_queries"] >= 1
        assert report["totals"]["partitions_failed"] >= 1
        for entry in report["queries"]:
            assert entry["coverage"] <= 1.0
            assert entry["degraded"] == bool(entry["partitions_failed"])

    def test_env_variable_sets_default_mode(self, lossy_setup, monkeypatch):
        index, _, _ = lossy_setup
        queries = _queries(30)
        monkeypatch.setenv(ON_PARTITION_FAILURE_ENV, "skip")
        results = index.knn_batch(queries, k=5)
        assert any(r.stats.degraded for r in results)
        monkeypatch.setenv(ON_PARTITION_FAILURE_ENV, "sideways")
        with pytest.raises(ConfigurationError):
            index.knn(queries[0], k=5)

    def test_invalid_mode_rejected(self, lossy_setup):
        index, _, _ = lossy_setup
        with pytest.raises(ConfigurationError):
            index.knn(_queries(1)[0], k=5, on_partition_failure="maybe")
        with pytest.raises(ConfigurationError):
            _config(on_partition_failure="maybe")

    def test_degraded_queries_recorded_in_telemetry(self, lossy_setup):
        index, _, _ = lossy_setup
        queries = _queries(30)
        tel = Telemetry(enabled=True)
        old = index.telemetry
        index.telemetry = tel
        try:
            index.knn_batch(queries, k=5, on_partition_failure="skip")
        finally:
            index.telemetry = old
        snap = tel.registry.snapshot()
        assert snap["counters"]["query.degraded"] >= 1
        assert snap["counters"]["query.partitions_failed"] >= 1


# -- the parity oracle ------------------------------------------------------------


class TestZeroFaultParity:
    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_armed_resilience_is_bit_transparent(self, fmt, n_workers):
        dataset = _dataset()
        queries = _queries(12)
        reference = ClimberIndex.build(
            dataset, _config(partition_format=fmt)
        )
        armed = ClimberIndex.build(
            dataset,
            _config(
                partition_format=fmt,
                n_workers=n_workers,
                fault_plan=FaultPlan(seed=999),  # all rates 0: armed, silent
                verify_checksums="eager",
                on_partition_failure="skip",
            ),
        )
        assert armed.dfs.fault_injector is not None
        assert _answers(reference, queries) == _answers(armed, queries)
        ref_c = dataclasses.asdict(reference.dfs.counters)
        armed_c = dataclasses.asdict(armed.dfs.counters)
        assert ref_c == armed_c
        assert armed_c["retries"] == 0
        assert armed_c["read_failures"] == 0
        assert armed_c["corruption_detected"] == 0
        assert not any(
            r.stats.degraded for r in armed.knn_batch(queries, k=5)
        )

    def test_checksums_off_matches_checksums_on_logically(self):
        dataset = _dataset()
        queries = _queries(8)
        on = ClimberIndex.build(dataset, _config(partition_checksums=True))
        off = ClimberIndex.build(dataset, _config(partition_checksums=False))
        assert _answers(on, queries) == _answers(off, queries)
        assert dataclasses.asdict(on.dfs.counters) \
            == dataclasses.asdict(off.dfs.counters)

    def test_same_chaos_seed_same_everything(self):
        dataset = _dataset()
        queries = _queries(20)
        plan = FaultPlan(seed=777, transient_rate=0.15, loss_rate=0.1)
        runs = []
        for _ in range(2):
            index = ClimberIndex.build(
                dataset,
                _config(fault_plan=plan,
                        retry_policy=RetryPolicy(max_attempts=3,
                                                 backoff_base_s=0.0)),
            )
            answers = _answers(index, queries,
                               on_partition_failure="skip")
            failed = [
                tuple(r.stats.partitions_failed)
                for r in index.knn_batch(queries, k=5,
                                         on_partition_failure="skip")
            ]
            runs.append((answers, failed,
                         dataclasses.asdict(index.dfs.counters)))
        assert runs[0] == runs[1]

    def test_transient_faults_are_fully_recovered(self):
        # Transient-only chaos at a modest rate: every read eventually
        # succeeds within the retry budget, so answers are bit-identical
        # to the unfaulted reference and nothing is degraded.
        dataset = _dataset()
        queries = _queries(12)
        reference = ClimberIndex.build(dataset, _config())
        chaotic = ClimberIndex.build(
            dataset,
            _config(fault_plan=FaultPlan(seed=4242, transient_rate=0.2),
                    retry_policy=RetryPolicy(max_attempts=6,
                                             backoff_base_s=0.0)),
        )
        assert _answers(reference, queries) == _answers(chaotic, queries)
        c = chaotic.dfs.counters
        assert c.retries >= 1
        assert c.read_failures == 0


# -- telemetry sampling -----------------------------------------------------------


class TestTelemetrySampling:
    def test_probe_sampling_one_in_n(self):
        tel = Telemetry(enabled=True, sample_every=4)
        probes = [tel.probe() for _ in range(8)]
        assert [p is not None for p in probes] == [
            True, False, False, False, True, False, False, False,
        ]
        assert Telemetry(enabled=False, sample_every=4).probe() is None
        with pytest.raises(ValueError):
            Telemetry(enabled=True, sample_every=0)

    def test_sampled_out_queries_pay_only_query_count(self):
        dataset = _dataset(n=600)
        config = _config(telemetry=True, telemetry_sample_every=4)
        index = ClimberIndex.build(dataset, config)
        queries = _queries(8)
        for q in queries:
            index.knn(q, k=3)
        snap = index.telemetry.registry.snapshot()
        assert snap["counters"]["query.count"] == 8
        # Only the 2 sampled queries record full metrics.
        assert snap["histograms"]["query.wall_s"]["count"] == 2
        assert index.telemetry.sample_every == 4

    def test_sampling_does_not_change_answers(self):
        dataset = _dataset(n=600)
        queries = _queries(8)
        plain = ClimberIndex.build(dataset, _config())
        sampled = ClimberIndex.build(
            dataset, _config(telemetry=True, telemetry_sample_every=3)
        )
        assert _answers(plain, queries) == _answers(sampled, queries)

    def test_config_validates_sample_every(self):
        with pytest.raises(ConfigurationError):
            _config(telemetry_sample_every=0)

"""Tests for Algorithm 1 (group assignment rules)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GroupAssigner
from repro.exceptions import ConfigurationError
from repro.pivots import decay_weights


@pytest.fixture
def paper_assigner() -> GroupAssigner:
    """The setup of the paper's Example 1: two centroids, m=3, exp decay."""
    return GroupAssigner(
        centroids=[(1, 2, 3), (2, 4, 5)],
        n_pivots=10,
        prefix_length=3,
        weights=decay_weights(3, "exponential", 0.5),
        rng=np.random.default_rng(0),
    )


class TestPaperExample1:
    def test_object_x_unique_smallest_od(self, paper_assigner):
        """X with P4->=<3,4,1>: OD(G1)=1 < OD(G2)=2 -> group 1."""
        result = paper_assigner.assign(np.array([[3, 4, 1]]))
        assert result.group_indices[0] == 1
        assert result.od_ties_broken == 0

    def test_object_y_wd_tie_break(self, paper_assigner):
        """Y with P4->=<4,2,1>: OD tie (1,1); WD(G2)=0.25 < WD(G1)=1 -> group 2."""
        result = paper_assigner.assign(np.array([[4, 2, 1]]))
        assert result.group_indices[0] == 2
        assert result.od_ties_broken == 1
        assert result.wd_ties_broken == 0

    def test_object_z_random_tie(self, paper_assigner):
        """Z with P4->=<6,2,7>: OD and WD both tie -> random pick among {1,2}."""
        result = paper_assigner.assign(np.array([[6, 2, 7]]))
        assert result.group_indices[0] in (1, 2)
        assert result.wd_ties_broken == 1

    def test_zero_overlap_goes_to_fallback(self, paper_assigner):
        """Lines 3-5: no pivot shared with any centroid -> group 0."""
        result = paper_assigner.assign(np.array([[7, 8, 9]]))
        assert result.group_indices[0] == 0

    def test_batch_matches_singles(self, paper_assigner):
        batch = np.array([[3, 4, 1], [4, 2, 1], [7, 8, 9]])
        out = paper_assigner.assign(batch).group_indices
        np.testing.assert_array_equal(out, [1, 2, 0])


class TestGroupAssignerGeneral:
    def test_assign_one(self, paper_assigner):
        assert paper_assigner.assign_one([3, 4, 1]) == 1

    def test_random_tie_is_seeded(self):
        def build():
            return GroupAssigner(
                [(1, 2, 3), (4, 5, 6)], 10, 3,
                rng=np.random.default_rng(42),
            )

        tie_sig = np.array([[1, 4, 7]])  # one pivot in each centroid, same rank
        a = [build().assign(tie_sig).group_indices[0] for _ in range(5)]
        b = [build().assign(tie_sig).group_indices[0] for _ in range(5)]
        assert a == b

    def test_exact_centroid_match_wins(self):
        assigner = GroupAssigner([(1, 2, 3), (4, 5, 6)], 10, 3,
                                 rng=np.random.default_rng(0))
        out = assigner.assign(np.array([[2, 3, 1], [6, 5, 4]])).group_indices
        np.testing.assert_array_equal(out, [1, 2])

    def test_rejects_empty_centroids(self):
        with pytest.raises(ConfigurationError):
            GroupAssigner([], 10, 3)

    def test_rejects_wrong_centroid_length(self):
        with pytest.raises(ConfigurationError):
            GroupAssigner([(1, 2)], 10, 3)

    def test_rejects_wrong_signature_shape(self, paper_assigner):
        with pytest.raises(ConfigurationError):
            paper_assigner.assign(np.array([[1, 2, 3, 4]]))

    def test_rejects_wrong_weights_length(self):
        with pytest.raises(ConfigurationError):
            GroupAssigner([(1, 2, 3)], 10, 3, weights=np.ones(2))

    def test_every_object_gets_a_group(self, rng):
        assigner = GroupAssigner(
            [tuple(sorted(rng.choice(40, size=5, replace=False))) for _ in range(8)],
            40, 5, rng=np.random.default_rng(1),
        )
        ranked = np.array([rng.choice(40, size=5, replace=False) for _ in range(300)])
        out = assigner.assign(ranked).group_indices
        assert out.shape == (300,)
        assert out.min() >= 0
        assert out.max() <= 8

    def test_wd_tie_tolerance_is_relative(self):
        """Large-magnitude weights: mathematically tied WDs must tie.

        The object's signature is (0, 1, 2, 3, 4); centroid A holds its
        rank-{0,1,2} pivots, centroid B its rank-{0,3,4} pivots, so with
        weights (1e16, 1, 1, 2, 0) both match exactly 1e16 + 2 in real
        arithmetic — a genuine WD tie.  Float accumulation rounds A's sum
        to 1e16 (ulp(1e16) = 2), leaving a spurious 2.0 gap that the old
        absolute ``best_wd + 1e-12`` tolerance read as "not tied",
        deterministically mis-assigning to B.  The relative tolerance
        (anchored to the Total Weight) classifies the tie correctly and
        consumes a seeded random draw.
        """
        weights = np.array([1e16, 1.0, 1.0, 2.0, 0.0])
        centroids = [(0, 1, 2, 8, 9), (0, 3, 4, 8, 9)]
        sig = np.array([[0, 1, 2, 3, 4]])

        def result(seed):
            assigner = GroupAssigner(centroids, 10, 5, weights=weights,
                                     rng=np.random.default_rng(seed))
            return assigner.assign(sig)

        res = result(0)
        assert res.od_ties_broken == 1  # both centroids share 3 pivots
        assert res.wd_ties_broken == 1  # the tie is *detected*
        assert res.group_indices[0] in (1, 2)
        # A genuine random draw: across seeds both centroids are chosen
        # (the old absolute tolerance picked B deterministically).
        assert {result(s).group_indices[0] for s in range(12)} == {1, 2}
        ref = GroupAssigner(centroids, 10, 5, weights=weights,
                            rng=np.random.default_rng(0)).assign_reference(sig)
        assert ref.wd_ties_broken == 1
        assert ref.group_indices[0] == res.group_indices[0]

    def test_reference_matches_vectorized_on_paper_example(self, paper_assigner):
        batch = np.array([[3, 4, 1], [4, 2, 1], [7, 8, 9], [6, 2, 7]])
        ref_assigner = GroupAssigner(
            centroids=[(1, 2, 3), (2, 4, 5)], n_pivots=10, prefix_length=3,
            weights=decay_weights(3, "exponential", 0.5),
            rng=np.random.default_rng(0),
        )
        fast = paper_assigner.assign(batch)
        ref = ref_assigner.assign_reference(batch)
        np.testing.assert_array_equal(fast.group_indices, ref.group_indices)
        assert fast.od_ties_broken == ref.od_ties_broken
        assert fast.wd_ties_broken == ref.wd_ties_broken

    def test_assignment_minimises_od(self, rng):
        """Every object's assigned group must achieve the minimum OD."""
        from repro.pivots import overlap_distance

        centroids = [tuple(sorted(rng.choice(30, size=4, replace=False)))
                     for _ in range(6)]
        assigner = GroupAssigner(centroids, 30, 4, rng=np.random.default_rng(2))
        ranked = np.array([rng.choice(30, size=4, replace=False) for _ in range(200)])
        out = assigner.assign(ranked).group_indices
        for sig, gid in zip(ranked, out):
            ods = [overlap_distance(tuple(sorted(sig)), c) for c in centroids]
            if gid == 0:
                assert min(ods) == 4
            else:
                assert ods[gid - 1] == min(ods)

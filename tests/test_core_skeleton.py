"""Tests for the index skeleton: structure, naming, serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GroupEntry,
    IndexSkeleton,
    SkeletonWithPivots,
    build_group_trie,
    cluster_key,
    partition_name,
)
from repro.exceptions import ConfigurationError


def make_skeleton() -> IndexSkeleton:
    fallback_trie = build_group_trie([], [], capacity=100.0)
    fallback_trie.partition_ids = {0}
    g1_trie = build_group_trie(
        [(6, 2, 1), (6, 7, 3), (4, 1, 2)], [120.0, 90.0, 60.0], capacity=100.0
    )
    for i, leaf in enumerate(g1_trie.leaves()):
        leaf.partition_ids = {i + 1}
    g1_trie.finalize_partitions()
    groups = [
        GroupEntry(0, (), fallback_trie, 0, 0.0),
        GroupEntry(1, (2, 4, 6), g1_trie, 1, 270.0),
    ]
    return IndexSkeleton(
        prefix_length=3, n_pivots=16, word_length=8,
        groups=groups, n_partitions=4,
    )


class TestNaming:
    def test_partition_name(self):
        assert partition_name(7) == "beta7"

    def test_cluster_key_leaf(self):
        assert cluster_key(3, (4, 6)) == "G3/4/6"

    def test_cluster_key_root(self):
        assert cluster_key(3, ()) == "G3"

    def test_cluster_key_default(self):
        assert cluster_key(3, None) == "G3/~"

    def test_keys_unambiguous_across_groups(self):
        assert not cluster_key(1, (0,)).startswith(cluster_key(11, ()))


class TestSkeleton:
    def test_requires_fallback_first(self):
        trie = build_group_trie([], [], capacity=10.0)
        with pytest.raises(ConfigurationError):
            IndexSkeleton(3, 16, 8, [GroupEntry(0, (1, 2, 3), trie, 0, 1.0)], 1)

    def test_centroids_exclude_fallback(self):
        sk = make_skeleton()
        assert sk.centroids == [(2, 4, 6)]

    def test_group_lookup(self):
        sk = make_skeleton()
        assert sk.group(1).centroid == (2, 4, 6)
        with pytest.raises(ConfigurationError):
            sk.group(5)

    def test_is_fallback(self):
        sk = make_skeleton()
        assert sk.group(0).is_fallback
        assert not sk.group(1).is_fallback

    def test_total_trie_nodes(self):
        sk = make_skeleton()
        assert sk.total_trie_nodes() == sum(
            g.trie.node_count() for g in sk.groups
        )


class TestSerialisation:
    def test_roundtrip_structure(self):
        sk = make_skeleton()
        out = IndexSkeleton.from_bytes(sk.to_bytes())
        assert out.prefix_length == 3
        assert out.n_pivots == 16
        assert out.n_partitions == 4
        assert len(out.groups) == 2
        assert out.groups[1].centroid == (2, 4, 6)
        assert out.groups[1].default_partition == 1

    def test_roundtrip_trie_shape(self):
        sk = make_skeleton()
        out = IndexSkeleton.from_bytes(sk.to_bytes())
        a = sk.groups[1].trie
        b = out.groups[1].trie
        assert sorted(l.path for l in a.leaves()) == sorted(
            l.path for l in b.leaves()
        )
        assert b.count == pytest.approx(a.count)

    def test_roundtrip_partition_unions(self):
        sk = make_skeleton()
        out = IndexSkeleton.from_bytes(sk.to_bytes())
        assert (
            out.groups[1].trie.partition_ids
            == sk.groups[1].trie.partition_ids
        )

    def test_nbytes_positive_and_grows(self):
        sk = make_skeleton()
        small = sk.nbytes
        sk.groups.append(
            GroupEntry(2, (1, 3, 5), build_group_trie([(1, 3, 5)], [10.0], 100.0), 3, 10.0)
        )
        assert sk.nbytes > small > 0

    def test_skeleton_with_pivots_roundtrip(self):
        sk = make_skeleton()
        pivots = np.arange(16.0 * 8).reshape(16, 8)
        blob = SkeletonWithPivots(sk, pivots).to_bytes()
        out = SkeletonWithPivots.from_bytes(blob)
        np.testing.assert_array_equal(out.pivots, pivots)
        assert out.skeleton.n_partitions == 4

    def test_descend_after_roundtrip(self):
        """A deserialised trie must route signatures identically."""
        sk = make_skeleton()
        out = IndexSkeleton.from_bytes(sk.to_bytes())
        for sig in [(6, 2, 1), (6, 7, 3), (4, 1, 2), (9, 9, 9)]:
            assert (
                out.groups[1].trie.descend(sig).path
                == sk.groups[1].trie.descend(sig).path
            )


class TestDeepTrieSerialisationObjects:
    def test_trie_obj_conversion_is_iterative(self):
        """_trie_to_obj/_trie_from_obj must handle tries far deeper than
        the recursion limit (the JSON encoder's nesting ceiling is the
        only remaining bound on full to_bytes round-trips)."""
        import sys

        from repro.core import build_group_trie
        from repro.core.skeleton import IndexSkeleton

        depth = sys.getrecursionlimit() + 500
        shared = tuple(range(depth - 1))
        root = build_group_trie(
            [shared + (depth,), shared + (depth + 1,)],
            [60.0, 60.0], capacity=100.0,
        )
        for leaf, pid in zip(root.leaves(), (0, 1)):
            leaf.partition_ids = {pid}
        root.finalize_partitions()
        obj = IndexSkeleton._trie_to_obj(root)
        rebuilt = IndexSkeleton._trie_from_obj(obj, ())
        rebuilt.finalize_partitions()
        assert rebuilt.node_count() == root.node_count()
        assert [l.path for l in rebuilt.leaves()] == [
            l.path for l in root.leaves()
        ]
        assert rebuilt.partition_ids == {0, 1}

"""Old-vs-new construction parity: the flat build pipeline must be invisible.

The tentpole contract of the flat-trie builder: against the legacy
per-record redistribution it produces **byte-identical partitions** (both
physical formats), an identical skeleton, identical logical DFS counters
and an identical simulated-cost stage list.  Appends through the batch
route must likewise match the legacy per-record append clustering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.core.builder import build_index_artifacts
from repro.core.skeleton import cluster_key, partition_name
from repro.datasets import make_dataset, sample_queries
from repro.exceptions import ConfigurationError
from repro.storage import PartitionFile, SimulatedDFS

CONFIG = dict(word_length=8, n_pivots=48, prefix_length=6, capacity=150,
              sample_fraction=0.2, n_input_partitions=32, seed=9)


def build_pair(fmt: str, tmp_path=None):
    dataset = make_dataset("RandomWalk", 3000, length=48, seed=5)
    out = {}
    for mode in ("legacy", "flat"):
        kwargs = {"partition_format": fmt}
        if tmp_path is not None:
            dfs = SimulatedDFS(backing_dir=tmp_path / f"{fmt}-{mode}",
                               partition_format=fmt)
        else:
            dfs = SimulatedDFS(partition_format=fmt)
        cfg = ClimberConfig(**CONFIG, **kwargs)
        out[mode] = build_index_artifacts(dataset, cfg, dfs=dfs,
                                          redistribution=mode)
    return dataset, out["legacy"], out["flat"]


def stored_bytes(dfs: SimulatedDFS, pid: str) -> bytes:
    engine = dfs.engine
    name = engine._name(pid)
    return bytes(engine.backend.read_range(name, 0, engine.backend.size(name)))


class TestBuilderParity:
    @pytest.fixture(scope="class")
    def v2_pair(self):
        return build_pair("v2")

    def test_skeletons_identical(self, v2_pair):
        _, legacy, flat = v2_pair
        assert legacy.skeleton.to_bytes() == flat.skeleton.to_bytes()

    def test_partitions_byte_identical_v2(self, v2_pair):
        _, legacy, flat = v2_pair
        assert legacy.dfs.list_partitions() == flat.dfs.list_partitions()
        assert len(legacy.dfs.list_partitions()) > 5
        for pid in legacy.dfs.list_partitions():
            assert stored_bytes(legacy.dfs, pid) == stored_bytes(flat.dfs, pid)

    def test_partitions_identical_v1_object_store(self):
        _, legacy, flat = build_pair("v1")
        assert legacy.dfs.list_partitions() == flat.dfs.list_partitions()
        for pid in legacy.dfs.list_partitions():
            a = legacy.dfs.read_partition(pid)
            b = flat.dfs.read_partition(pid)
            assert a.to_bytes() == b.to_bytes()

    def test_counters_identical(self, v2_pair):
        _, legacy, flat = v2_pair
        assert legacy.dfs.counters == flat.dfs.counters

    def test_sim_stage_costs_identical(self, v2_pair):
        """Identical stage names, task counts, costs and exact seconds."""
        _, legacy, flat = v2_pair
        sa, sb = legacy.sim_report.stages, flat.sim_report.stages
        assert [s.name for s in sa] == [s.name for s in sb]
        for x, y in zip(sa, sb):
            assert x.n_tasks == y.n_tasks
            assert x.total_cost == y.total_cost
            assert x.sim_seconds == y.sim_seconds  # bit-exact

    def test_query_results_identical(self, v2_pair):
        dataset, legacy, flat = v2_pair
        cfg = ClimberConfig(**CONFIG)
        queries = sample_queries(dataset, 10, seed=3).values
        from repro.cluster import CostModel

        ia = ClimberIndex(legacy, cfg, CostModel())
        ib = ClimberIndex(flat, cfg, CostModel())
        for ra, rb in zip(ia.knn_batch(queries, 8), ib.knn_batch(queries, 8)):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
            assert ra.stats.partitions_loaded == rb.stats.partitions_loaded
            assert ra.stats.sim_seconds == rb.stats.sim_seconds

    def test_wall_phase_seconds_recorded(self, v2_pair):
        _, legacy, flat = v2_pair
        for art in (legacy, flat):
            assert set(art.wall_phase_seconds) == {"convert", "redistribute"}
            assert all(v >= 0 for v in art.wall_phase_seconds.values())

    def test_unknown_redistribution_mode_rejected(self):
        dataset = make_dataset("RandomWalk", 300, length=32, seed=1)
        with pytest.raises(ConfigurationError):
            build_index_artifacts(
                dataset, ClimberConfig(**CONFIG), redistribution="spark"
            )


class TestAppendParity:
    def test_append_matches_legacy_clustering(self):
        """Delta partitions equal the legacy per-record append layout."""
        dataset = make_dataset("RandomWalk", 2000, length=48, seed=5)
        cfg = ClimberConfig(**CONFIG)
        index = ClimberIndex.build(dataset, cfg)
        batch = make_dataset("RandomWalk", 500, length=48, seed=77)

        # Reference clustering: the seed per-record append loop.
        from repro.pivots import permutation_prefixes
        from repro.series import paa_transform

        paa = paa_transform(batch.values, cfg.word_length)
        ranked = permutation_prefixes(paa, index.pivots, cfg.prefix_length)
        gids = index._art.assigner.assign(ranked).group_indices
        clusters: dict[int, dict[str, list[int]]] = {}
        for local in range(batch.count):
            gid = int(gids[local])
            entry = index.skeleton.group(gid)
            node = entry.trie.descend(ranked[local])
            if node.is_leaf and node.partition_ids:
                pid = next(iter(node.partition_ids))
                key = cluster_key(gid, node.path)
            else:
                pid = entry.default_partition
                key = cluster_key(gid, None)
            clusters.setdefault(pid, {}).setdefault(key, []).append(local)

        # assigner.assign consumes RNG draws on ties: rebuild the index so
        # the real append sees the same stream state the reference saw.
        index = ClimberIndex.build(dataset, cfg)
        summary = index.append(batch)
        assert summary["records_appended"] == batch.count
        expected = {
            f"{partition_name(pid)}.d0": {
                key: (batch.ids[rows], batch.values[rows])
                for key, rows in clusters[pid].items()
                for rows in [np.asarray(rows, dtype=np.int64)]
            }
            for pid in clusters
        }
        assert sorted(summary["delta_partitions"]) == sorted(expected)
        for delta_id, mapping in expected.items():
            ref = PartitionFile.from_clusters(delta_id, mapping)
            got = index.dfs.read_partition(delta_id)
            assert got.cluster_keys() == ref.cluster_keys()
            assert np.array_equal(got.ids, ref.ids)
            assert np.array_equal(got.values, ref.values)
            assert dict(got.header) == dict(ref.header)

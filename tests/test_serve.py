"""Serving-layer tests: parity, admission control, drain, and chaos.

The contract under test (see :mod:`repro.serve.service`): micro-batching
is *transparent* — a served answer is byte-identical to the same query
issued directly against an identically built index, including the
degraded-coverage stats and the logical DFS counters — while admission
control sheds or backpressures load deterministically.

Every oracle here is a *second, identically built* index queried
serially in the service's processing order, the same two-build pattern
the chaos suite uses, so the comparison is bit-exact rather than
statistical.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import ClimberIndex
from repro.core.config import (
    EARLY_STOP_ENV,
    ON_PARTITION_FAILURE_ENV,
    ClimberConfig,
)
from repro.exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs import MetricsRegistry
from repro.resilience import (
    FAULT_ENV_BITFLIP_RATE,
    FAULT_ENV_LOSS_RATE,
    FAULT_ENV_RATE,
    FAULT_ENV_SEED,
    FAULT_ENV_STRAGGLER_RATE,
    FaultPlan,
    RetryPolicy,
)
from repro.serve import QueryResponse, QueryService, ServeConfig
from repro.series import SeriesDataset

#: Parity oracles compare explicit builds, so ambient CI chaos
#: (CLIMBER_FAULT_* exported over the whole tier-1 run) and the CI-armed
#: CLIMBER_EARLY_STOP are scrubbed, as in tests/test_chaos.py.
CHAOS_ENV = (
    FAULT_ENV_SEED, FAULT_ENV_RATE, FAULT_ENV_LOSS_RATE,
    FAULT_ENV_BITFLIP_RATE, FAULT_ENV_STRAGGLER_RATE,
    ON_PARTITION_FAILURE_ENV, EARLY_STOP_ENV,
)


@pytest.fixture(autouse=True)
def _scrub_chaos_env(monkeypatch):
    for var in CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)


@pytest.fixture(scope="class", autouse=True)
def _scrub_chaos_env_for_class_fixtures():
    with pytest.MonkeyPatch.context() as mp:
        for var in CHAOS_ENV:
            mp.delenv(var, raising=False)
        yield


def _dataset(n=800, length=32, seed=17):
    rng = np.random.default_rng(seed)
    return SeriesDataset(rng.standard_normal((n, length)))


def _config(**overrides):
    base = dict(
        word_length=8,
        n_pivots=16,
        prefix_length=4,
        capacity=64,
        sample_fraction=0.5,
        seed=5,
        n_input_partitions=4,
    )
    base.update(overrides)
    return ClimberConfig(**base)


def _queries(n=16, length=32, seed=23):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, length))


def _dfs_counter_state(index):
    c = index.dfs.counters
    return (c.bytes_read, c.partitions_read, c.retries, c.read_failures)


def _assert_response_matches(resp: QueryResponse, ref) -> None:
    assert np.array_equal(resp.ids, ref.ids)
    assert np.array_equal(resp.distances, ref.distances)
    assert resp.stats.partitions_failed == ref.stats.partitions_failed
    assert resp.coverage == ref.stats.coverage
    assert resp.degraded == ref.stats.degraded
    assert resp.latency_s >= resp.queue_delay_s >= 0.0
    assert resp.batch_size >= 1


class TestServingParity:
    """Byte-identical answers and counters vs a serially queried twin."""

    @pytest.fixture(scope="class")
    def pair(self):
        dataset = _dataset()
        served = ClimberIndex.build(dataset, _config())
        oracle = ClimberIndex.build(dataset, _config())
        return served, oracle

    def test_concurrent_serving_matches_serial_oracle(self, pair):
        served, oracle = pair
        queries = _queries(16)
        before = _dfs_counter_state(served)
        assert before == _dfs_counter_state(oracle)

        async def drive():
            service = QueryService(
                served,
                ServeConfig(max_batch=8, max_delay_s=0.05),
                registry=MetricsRegistry(),
            )
            async with service:
                responses = await asyncio.gather(
                    *[service.submit(q, k=5) for q in queries]
                )
            return responses, service.stats()

        responses, stats = asyncio.run(drive())
        # Serial oracle in submission order: the service batches FIFO and
        # all requests share one argument key, so processing order — and
        # with it the tie-break RNG stream — is the submission order.
        references = [oracle.knn(q, k=5) for q in queries]
        for resp, ref in zip(responses, references):
            _assert_response_matches(resp, ref)
            assert resp.coverage == 1.0
            assert not resp.degraded
        # Micro-batching actually happened and was transparent.
        assert any(r.batch_size > 1 for r in responses)
        counters = stats["metrics"]["counters"]
        assert counters["serve.requests"] == 16
        assert counters["serve.responses"] == 16
        assert counters["serve.rejected"] == 0
        assert counters["serve.failures"] == 0
        assert counters["serve.degraded"] == 0
        # Logical storage counters advance in lockstep with the serial
        # twin: batching changes scheduling, never the work charged.
        assert _dfs_counter_state(served) == _dfs_counter_state(oracle)

    def test_mixed_k_groups_split_correctly(self, pair):
        served, oracle = pair
        queries = _queries(12, seed=31)
        ks = [3 if i % 2 == 0 else 7 for i in range(len(queries))]

        async def drive():
            # One big batch window so all 12 requests coalesce into a
            # single dispatch with two key groups (k=3 rows first, then
            # k=7 — insertion order of first occurrence).
            service = QueryService(
                served,
                ServeConfig(max_batch=64, max_delay_s=0.05),
                registry=MetricsRegistry(),
            )
            async with service:
                return await asyncio.gather(*[
                    service.submit(q, k=k) for q, k in zip(queries, ks)
                ])

        responses = asyncio.run(drive())
        # Oracle in the service's group processing order: all k=3 rows in
        # submission order, then all k=7 rows.
        references: dict[int, object] = {}
        for wanted_k in (3, 7):
            for i, (q, k) in enumerate(zip(queries, ks)):
                if k == wanted_k:
                    references[i] = oracle.knn(q, k=k)
        for i, resp in enumerate(responses):
            assert len(resp.ids) == min(ks[i], len(resp.ids))
            _assert_response_matches(resp, references[i])
        assert _dfs_counter_state(served) == _dfs_counter_state(oracle)


class TestAdmissionControl:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_reject_mode_sheds_load(self, index):
        queries = _queries(12)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(max_batch=4, max_delay_s=0.01, queue_limit=4,
                            admission="reject"),
                registry=MetricsRegistry(),
            )
            async with service:
                results = await asyncio.gather(
                    *[service.submit(q, k=5) for q in queries],
                    return_exceptions=True,
                )
            return results, service.stats()

        results, stats = asyncio.run(drive())
        ok = [r for r in results if isinstance(r, QueryResponse)]
        shed = [r for r in results if isinstance(r, ServiceOverloadedError)]
        assert len(ok) + len(shed) == len(queries)
        # All 12 submits run before the batcher first drains (they have
        # no awaits before enqueueing), so exactly queue_limit are
        # admitted and the rest shed — deterministically.
        assert len(ok) == 4
        assert len(shed) == 8
        counters = stats["metrics"]["counters"]
        assert counters["serve.requests"] == 12
        assert counters["serve.rejected"] == 8
        assert counters["serve.responses"] == 4

    def test_block_mode_backpressures_instead(self, index):
        queries = _queries(10)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(max_batch=4, max_delay_s=0.0, queue_limit=2,
                            admission="block"),
                registry=MetricsRegistry(),
            )
            async with service:
                responses = await asyncio.gather(
                    *[service.submit(q, k=5) for q in queries]
                )
            return responses, service.stats()

        responses, stats = asyncio.run(drive())
        assert len(responses) == len(queries)
        counters = stats["metrics"]["counters"]
        assert counters["serve.rejected"] == 0
        assert counters["serve.responses"] == len(queries)


class TestLifecycle:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_submit_before_start_and_after_stop_raises(self, index):
        async def drive():
            service = QueryService(index, registry=MetricsRegistry())
            with pytest.raises(ServiceClosedError):
                await service.submit(_queries(1)[0], k=3)
            async with service:
                pass
            with pytest.raises(ServiceClosedError):
                await service.submit(_queries(1)[0], k=3)

        asyncio.run(drive())

    def test_double_start_rejected(self, index):
        async def drive():
            service = QueryService(index, registry=MetricsRegistry())
            await service.start()
            try:
                with pytest.raises(ConfigurationError):
                    await service.start()
            finally:
                await service.stop()

        asyncio.run(drive())

    def test_stop_with_drain_answers_everything(self, index):
        queries = _queries(6)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(max_batch=4, max_delay_s=0.05),
                registry=MetricsRegistry(),
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit(q, k=5))
                for q in queries
            ]
            await asyncio.sleep(0)  # enqueue all before stopping
            await service.stop(drain=True)
            return await asyncio.gather(*tasks)

        responses = asyncio.run(drive())
        assert len(responses) == len(queries)
        assert all(isinstance(r, QueryResponse) for r in responses)

    def test_stop_without_drain_fails_pending(self, index):
        queries = _queries(6)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(max_batch=4, max_delay_s=0.05),
                registry=MetricsRegistry(),
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit(q, k=5))
                for q in queries
            ]
            # One loop pass: every submit has enqueued, but the batcher
            # has not yet resumed to collect a batch.
            await asyncio.sleep(0)
            await service.stop(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(drive())
        assert len(results) == len(queries)
        assert all(isinstance(r, ServiceClosedError) for r in results)

    def test_config_validation(self, index):
        with pytest.raises(ConfigurationError):
            ServeConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(admission="drop")
        with pytest.raises(ConfigurationError):
            ServeConfig(worker_threads=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(max_delay_s=-1.0)

    def test_stats_shape(self, index):
        service = QueryService(index, registry=MetricsRegistry())
        stats = service.stats()
        assert stats["running"] is False
        assert stats["config"]["admission"] == "reject"
        assert "counters" in stats["metrics"]
        assert all(
            name.startswith("serve.")
            for metrics in stats["metrics"].values()
            for name in metrics
        )


class TestServingUnderChaos:
    """Satellite 4: degraded responses under seeded loss match the oracle.

    Loss faults are *per blob* (attempt-independent), so the degradation
    pattern is a pure function of the seed — concurrency in the service
    cannot shift it.  Per-response ``coverage``/``degraded``/
    ``partitions_failed`` must therefore match a serially queried,
    identically built (and identically lossy) twin exactly.
    """

    @pytest.fixture(scope="class")
    def lossy_pair(self):
        dataset = _dataset(n=2000, length=64)
        plan = FaultPlan(seed=1234, loss_rate=0.3)
        kwargs = dict(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            n_input_partitions=8,
        )
        served = ClimberIndex.build(dataset, _config(**kwargs))
        oracle = ClimberIndex.build(dataset, _config(**kwargs))
        lost = [
            p for p in served.dfs.list_partitions()
            if plan.lost(served.dfs.engine.blob_name(p))
        ]
        assert lost, "seed must lose at least one partition"
        return served, oracle, lost

    def test_degraded_serving_matches_serial_oracle(self, lossy_pair):
        served, oracle, lost = lossy_pair
        queries = _queries(24, length=64, seed=29)

        async def drive():
            # worker_threads=1 serialises dispatch execution, pinning the
            # tie-break RNG stream to the oracle's processing order; >1 is
            # exercised by the load bench, where no parity is asserted.
            service = QueryService(
                served,
                ServeConfig(max_batch=8, max_delay_s=0.05, worker_threads=1),
                registry=MetricsRegistry(),
            )
            async with service:
                responses = await asyncio.gather(*[
                    service.submit(q, k=5, on_partition_failure="skip")
                    for q in queries
                ])
            return responses, service.stats()

        responses, stats = asyncio.run(drive())
        references = [
            oracle.knn(q, k=5, on_partition_failure="skip") for q in queries
        ]
        degraded = 0
        for resp, ref in zip(responses, references):
            _assert_response_matches(resp, ref)
            if resp.degraded:
                degraded += 1
                assert 0.0 <= resp.coverage < 1.0
                assert set(resp.stats.partitions_failed) <= set(lost)
            else:
                assert resp.coverage == 1.0
        assert degraded >= 1, "some served query must touch a lost partition"
        counters = stats["metrics"]["counters"]
        assert counters["serve.degraded"] == degraded
        assert counters["serve.responses"] == len(queries)
        assert counters["serve.failures"] == 0
        # Storage-level accounting is in lockstep too: same lost blobs,
        # same skips, same logical charges.
        assert _dfs_counter_state(served) == _dfs_counter_state(oracle)


class TestSubmitStopRace:
    """Satellite 3: ``submit()`` racing ``stop()`` must fail fast.

    A block-mode submitter parked on the space event can be woken by
    ``stop()`` with the queue below its limit; before the fix it would
    exit the admission loop, enqueue behind the shutdown sentinel, and
    await a future the batcher never dispatches — a silent hang.  Every
    interleaving must now resolve to either a served answer or
    :class:`~repro.exceptions.ServiceClosedError`.
    """

    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_blocked_submitter_fails_instead_of_hanging(self, index):
        queries = _queries(2)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(queue_limit=1, admission="block",
                            max_batch=1, max_delay_s=0.01),
                registry=MetricsRegistry(),
            )
            await service.start()
            # Interleaving forced without sleeps: submit A fills the
            # queue, submit B parks on the space event, stop() wakes it
            # with running already False.
            a = asyncio.ensure_future(service.submit(queries[0], k=5))
            b = asyncio.ensure_future(service.submit(queries[1], k=5))
            stopper = asyncio.ensure_future(service.stop(drain=True))
            results = await asyncio.gather(a, b, stopper,
                                           return_exceptions=True)
            return results[:2]

        # A hang is the regression: convert it into a loud failure.
        res_a, res_b = asyncio.run(asyncio.wait_for(drive(), timeout=30))
        outcomes = {type(r).__name__ for r in (res_a, res_b)}
        assert outcomes <= {"QueryResponse", "ServiceClosedError"}
        # The admitted request is drained; the blocked one is refused.
        assert isinstance(res_a, QueryResponse)
        assert isinstance(res_b, ServiceClosedError)

    def test_blocked_submitter_reject_after_undrained_stop(self, index):
        queries = _queries(2)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(queue_limit=1, admission="block",
                            max_batch=1, max_delay_s=0.01),
                registry=MetricsRegistry(),
            )
            await service.start()
            a = asyncio.ensure_future(service.submit(queries[0], k=5))
            b = asyncio.ensure_future(service.submit(queries[1], k=5))
            stopper = asyncio.ensure_future(service.stop(drain=False))
            return await asyncio.gather(a, b, stopper,
                                        return_exceptions=True)

        res_a, res_b, _ = asyncio.run(
            asyncio.wait_for(drive(), timeout=30)
        )
        assert isinstance(res_a, ServiceClosedError)
        assert isinstance(res_b, ServiceClosedError)

    def test_request_behind_sentinel_is_swept(self, index):
        """A request that loses the race entirely — enqueued after the
        shutdown sentinel — is failed by stop()'s post-batcher sweep, not
        left hanging on a never-dispatched future."""
        from repro.serve.service import _Request

        async def drive():
            service = QueryService(index, registry=MetricsRegistry())
            await service.start()
            queue = service._queue
            loop = asyncio.get_running_loop()
            stopper = asyncio.ensure_future(service.stop(drain=True))
            await asyncio.sleep(0)  # stop() is now parked on the batcher
            future = loop.create_future()
            queue.put_nowait(_Request(
                np.asarray(_queries(1)[0]), (5, "adaptive", None, None,
                                             None, None),
                future, 0.0,
            ))
            await stopper
            with pytest.raises(ServiceClosedError):
                await future

        asyncio.run(asyncio.wait_for(drive(), timeout=30))

    def test_submit_storm_during_stop_never_hangs(self, index):
        """Many submitters racing one stop(): every future resolves."""
        queries = _queries(12)

        async def drive():
            service = QueryService(
                index,
                ServeConfig(queue_limit=2, admission="block",
                            max_batch=2, max_delay_s=0.01),
                registry=MetricsRegistry(),
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit(q, k=5))
                for q in queries
            ]
            await asyncio.sleep(0)
            stopper = asyncio.ensure_future(service.stop(drain=True))
            results = await asyncio.gather(*tasks, stopper,
                                           return_exceptions=True)
            return results[:-1]

        results = asyncio.run(asyncio.wait_for(drive(), timeout=60))
        assert len(results) == len(queries)
        for r in results:
            assert isinstance(r, (QueryResponse, ServiceClosedError))


class TestProgressiveServing:
    """``submit(..., early_stop=...)`` routes onto the progressive path."""

    @pytest.fixture(scope="class")
    def pair(self):
        dataset = _dataset()
        served = ClimberIndex.build(dataset, _config())
        oracle = ClimberIndex.build(dataset, _config())
        return served, oracle

    def _serve(self, index, queries, **submit_kwargs):
        async def drive():
            service = QueryService(
                index,
                ServeConfig(max_batch=8, max_delay_s=0.05,
                            worker_threads=1),
                registry=MetricsRegistry(),
            )
            async with service:
                responses = await asyncio.gather(*[
                    service.submit(q, k=5, **submit_kwargs)
                    for q in queries
                ])
            return responses, service.stats()

        return asyncio.run(drive())

    def test_early_stop_off_matches_plain_submit(self, pair):
        served, oracle = pair
        queries = _queries(12)
        responses, _ = self._serve(
            served, queries, variant="od-smallest", early_stop="off"
        )
        references = [
            oracle.knn(q, k=5, variant="od-smallest") for q in queries
        ]
        for resp, ref in zip(responses, references):
            _assert_response_matches(resp, ref)
            assert not resp.stopped_early
            assert resp.visit_coverage == 1.0

    def test_early_stop_serves_partial_coverage_honestly(self, pair):
        served, _ = pair
        queries = _queries(16, seed=41)
        responses, stats = self._serve(
            served, queries, variant="od-smallest", early_stop="streak:1"
        )
        stopped = [r for r in responses if r.stopped_early]
        assert stopped, "streak:1 fired on no served query"
        for resp in stopped:
            assert resp.stats.partitions_forgone
            assert resp.visit_coverage < 1.0
            assert resp.coverage == 1.0  # forgone is not failure
            assert resp.ids.shape[0] == 5
        counters = stats["metrics"]["counters"]
        assert counters["serve.early_stopped"] == len(stopped)
        assert counters["serve.partitions_forgone"] == sum(
            len(r.stats.partitions_forgone) for r in stopped
        )
        assert counters["serve.responses"] == len(queries)

    def test_k_exceeding_records_served(self):
        rng = np.random.default_rng(3)
        small = SeriesDataset(rng.standard_normal((12, 32)))
        index = ClimberIndex.build(small, _config(
            n_pivots=8, prefix_length=3, capacity=8, sample_fraction=1.0,
            n_input_partitions=1,
        ))

        async def drive():
            service = QueryService(index, registry=MetricsRegistry())
            async with service:
                plain = await service.submit(small.values[0], k=50)
                progressive = await service.submit(
                    small.values[0], k=50, early_stop="streak:1"
                )
            return plain, progressive

        plain, progressive = asyncio.run(drive())
        for resp in (plain, progressive):
            assert resp.ids.shape[0] <= 12
            assert resp.ids.shape[0] == resp.distances.shape[0]
            assert resp.coverage == 1.0
        assert not progressive.stopped_early  # never before k in hand
        assert np.array_equal(plain.ids, progressive.ids)
        assert np.array_equal(plain.distances, progressive.distances)

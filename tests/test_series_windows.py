"""Tests for subsequence window extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.series import is_znormalized
from repro.series.windows import sliding_windows, window_dataset


class TestSlidingWindows:
    def test_docstring_example(self):
        out = sliding_windows(np.arange(5.0), window=3, stride=2)
        np.testing.assert_array_equal(out, [[0, 1, 2], [2, 3, 4]])

    def test_stride_one_covers_all(self):
        out = sliding_windows(np.arange(10.0), window=4)
        assert out.shape == (7, 4)
        np.testing.assert_array_equal(out[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(out[-1], [6, 7, 8, 9])

    def test_window_equals_length(self):
        out = sliding_windows(np.arange(5.0), window=5)
        assert out.shape == (1, 5)

    def test_view_is_readonly(self):
        out = sliding_windows(np.arange(6.0), window=2)
        with pytest.raises(ValueError):
            out[0, 0] = 99.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(4.0), window=0)
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(4.0), window=5)

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(4.0), window=2, stride=0)


class TestWindowDataset:
    def test_ids_are_start_offsets(self):
        ds = window_dataset(np.arange(20.0), window=5, stride=3)
        np.testing.assert_array_equal(ds.ids, [0, 3, 6, 9, 12, 15])

    def test_normalized_by_default(self):
        rng = np.random.default_rng(2)
        ds = window_dataset(rng.normal(size=100).cumsum(), window=16, stride=4)
        assert is_znormalized(ds.values)

    def test_unnormalized_preserves_values(self):
        series = np.arange(12.0)
        ds = window_dataset(series, window=4, stride=4, normalize=False)
        np.testing.assert_array_equal(ds.values[1], [4, 5, 6, 7])

    def test_window_content_maps_back_to_source(self):
        rng = np.random.default_rng(3)
        series = rng.normal(size=200)
        ds = window_dataset(series, window=32, stride=7, normalize=False)
        for wid, row in zip(ds.ids, ds.values):
            np.testing.assert_array_equal(row, series[wid : wid + 32])


@given(st.integers(10, 200), st.integers(1, 20), st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_window_count_property(length, window, stride):
    """Property: the number of windows matches the closed-form count."""
    if window > length:
        window = length
    series = np.arange(float(length))
    out = sliding_windows(series, window=window, stride=stride)
    assert out.shape == (1 + (length - window) // stride, window)
    # Every window must be a contiguous slice of the source.
    for i, row in enumerate(out):
        start = i * stride
        np.testing.assert_array_equal(row, series[start : start + window])

"""Tests for P4 dual signatures and bitset packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.pivots import (
    DualSignature,
    pack_pivot_sets,
    rank_insensitive,
    words_for,
)


class TestDualSignature:
    def test_paper_example_figure4(self):
        """Fig. 4: P4->(X) = <1,4,2>, P4->(Y) = <4,1,2>, same unranked set."""
        x = DualSignature((1, 4, 2))
        y = DualSignature((4, 1, 2))
        assert x.unranked == (1, 2, 4)
        assert y.unranked == (1, 2, 4)
        assert x.ranked != y.ranked

    def test_str(self):
        assert str(DualSignature((3, 1, 2))) == "<3,1,2>"

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            DualSignature((1, 1, 2))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DualSignature(())

    def test_prefix_length(self):
        assert DualSignature((5, 2, 9, 0)).prefix_length == 4

    def test_from_row(self):
        sig = DualSignature.from_row(np.array([7, 3, 5], dtype=np.int32))
        assert sig.ranked == (7, 3, 5)

    def test_hashable(self):
        assert len({DualSignature((1, 2)), DualSignature((1, 2))}) == 1


class TestRankInsensitive:
    def test_sorts_rows(self):
        ranked = np.array([[3, 1, 2], [9, 0, 4]])
        out = rank_insensitive(ranked)
        np.testing.assert_array_equal(out, [[1, 2, 3], [0, 4, 9]])

    def test_does_not_mutate(self):
        ranked = np.array([[3, 1, 2]])
        rank_insensitive(ranked)
        np.testing.assert_array_equal(ranked, [[3, 1, 2]])

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            rank_insensitive(np.array([1, 2, 3]))


class TestWordsFor:
    def test_boundaries(self):
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(200) == 4

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            words_for(0)


class TestPackPivotSets:
    def test_single_bits(self):
        packed = pack_pivot_sets(np.array([[0], [63], [64]]), 128)
        assert packed.shape == (3, 2)
        assert packed[0, 0] == 1
        assert packed[1, 0] == np.uint64(1) << np.uint64(63)
        assert packed[2, 1] == 1

    def test_popcount_equals_prefix_length(self, rng):
        m, r = 10, 200
        sigs = np.array([rng.choice(r, size=m, replace=False) for _ in range(50)])
        packed = pack_pivot_sets(sigs, r)
        counts = np.bitwise_count(packed).sum(axis=1)
        assert np.all(counts == m)

    def test_order_irrelevant(self):
        a = pack_pivot_sets(np.array([[1, 5, 9]]), 16)
        b = pack_pivot_sets(np.array([[9, 1, 5]]), 16)
        np.testing.assert_array_equal(a, b)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            pack_pivot_sets(np.array([[0, 8]]), 8)
        with pytest.raises(ConfigurationError):
            pack_pivot_sets(np.array([[-1]]), 8)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            pack_pivot_sets(np.array([1, 2]), 8)


@given(
    st.integers(2, 120),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_pack_roundtrip_property(r, data):
    """Property: unpacking a packed signature recovers the id set."""
    m = data.draw(st.integers(1, min(r, 12)))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    sig = rng.choice(r, size=m, replace=False).reshape(1, -1)
    packed = pack_pivot_sets(sig, r)[0]
    recovered = [
        w * 64 + b for w, word in enumerate(packed) for b in range(64)
        if (int(word) >> b) & 1
    ]
    assert sorted(recovered) == sorted(sig[0].tolist())

"""Randomized parity suite for the vectorised conversion pipeline.

The acceptance bar of the conversion refactor is *exact* equivalence with
the retained seed implementations, which deliberately keep independent
kernels (3-D broadcast OD, chunked shift/popcount WD, per-row tie loops)
so that agreement is adversarial evidence, not self-comparison:

* ``GroupAssigner.assign`` vs ``assign_reference`` — identical group
  indices, identical OD/WD tie counters, and identical RNG stream
  consumption, across seeded sweeps of (r, m, d, centroid count) and the
  fall-back-only / all-tied edge cases;
* ``compute_centroids`` (packed bitset scan) vs
  ``compute_centroids_reference`` (tuple-wise scan) — identical selected
  centroids in identical order;
* the builder's fused streamed conversion vs the legacy per-chunk loop —
  byte-identical skeletons and partitions, independent of block size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, compute_centroids, compute_centroids_reference
from repro.core.assignment import GroupAssigner
from repro.core.builder import build_index_artifacts
from repro.datasets import make_dataset
from repro.pivots import (
    decay_weights,
    overlap_distance_matrix,
    overlap_distance_matrix_reference,
    pack_pivot_sets,
    weight_distance_matrix,
    weight_distance_matrix_reference,
)
from repro.storage import SimulatedDFS


def random_assigner(rng: np.random.Generator, r: int, m: int, k: int,
                    seed: int) -> GroupAssigner:
    centroids = []
    seen = set()
    while len(centroids) < k:
        c = tuple(sorted(int(p) for p in rng.choice(r, size=m, replace=False)))
        if c not in seen:
            seen.add(c)
            centroids.append(c)
    return GroupAssigner(
        centroids, r, m, weights=decay_weights(m),
        rng=np.random.default_rng(seed),
    )


def random_signatures(rng: np.random.Generator, d: int, r: int, m: int) -> np.ndarray:
    return np.array([rng.choice(r, size=m, replace=False) for _ in range(d)])


class TestAssignParity:
    @pytest.mark.parametrize("seed,r,m,d,k", [
        (0, 16, 4, 400, 3),
        (1, 32, 6, 600, 8),
        (2, 64, 8, 800, 20),
        (3, 96, 6, 800, 40),     # two-word bitsets
        (4, 130, 10, 500, 25),   # three-word bitsets
        (5, 24, 3, 1000, 12),    # short prefixes -> heavy OD ties
    ])
    def test_randomized_sweep_bit_identical(self, seed, r, m, d, k):
        gen = np.random.default_rng(seed + 1000)
        a = random_assigner(gen, r, m, k, seed=seed)
        gen2 = np.random.default_rng(seed + 1000)
        b = random_assigner(gen2, r, m, k, seed=seed)
        ranked = random_signatures(gen, d, r, m)

        fast = a.assign(ranked)
        ref = b.assign_reference(ranked)
        np.testing.assert_array_equal(fast.group_indices, ref.group_indices)
        assert fast.od_ties_broken == ref.od_ties_broken
        assert fast.wd_ties_broken == ref.wd_ties_broken
        # Identical RNG stream consumption: the next draw must agree.
        assert a.rng.integers(0, 1 << 30) == b.rng.integers(0, 1 << 30)

    def test_fallback_only_batch(self):
        """Edge case: no object overlaps any centroid -> all G0, no draws."""
        a = random_assigner(np.random.default_rng(7), 40, 4, 5, seed=9)
        b = random_assigner(np.random.default_rng(7), 40, 4, 5, seed=9)
        used = sorted({p for c in a.centroids for p in c})
        free = [p for p in range(40) if p not in used][:4]
        assert len(free) == 4
        ranked = np.tile(np.array(free), (50, 1))
        fast, ref = a.assign(ranked), b.assign_reference(ranked)
        assert fast.group_indices.tolist() == [0] * 50
        np.testing.assert_array_equal(fast.group_indices, ref.group_indices)
        assert fast.od_ties_broken == ref.od_ties_broken == 0
        assert fast.wd_ties_broken == ref.wd_ties_broken == 0

    def test_all_tied_batch(self):
        """Edge case: every centroid ties on OD and WD -> every row draws."""
        # Disjoint centroids, each containing exactly one pivot of the
        # object's signature (0, 1, 2), and uniform weights so the single
        # matched pivot contributes the same WD everywhere: OD and WD tie
        # across all three centroids for every row.
        m, r = 3, 30
        centroids = [(0, 10, 20), (1, 11, 21), (2, 12, 22)]
        weights = np.full(m, 1.0 / m)
        a = GroupAssigner(centroids, r, m, weights=weights,
                          rng=np.random.default_rng(3))
        b = GroupAssigner(centroids, r, m, weights=weights,
                          rng=np.random.default_rng(3))
        ranked = np.tile(np.array([0, 1, 2]), (40, 1))
        fast, ref = a.assign(ranked), b.assign_reference(ranked)
        np.testing.assert_array_equal(fast.group_indices, ref.group_indices)
        assert fast.od_ties_broken == ref.od_ties_broken == 40
        assert fast.wd_ties_broken == ref.wd_ties_broken == 40
        assert set(fast.group_indices.tolist()) <= {1, 2, 3}
        assert a.rng.integers(0, 1 << 30) == b.rng.integers(0, 1 << 30)

    def test_blocking_invariance(self):
        """assign over any block split == one full assign, RNG stream too."""
        gen = np.random.default_rng(11)
        ranked = random_signatures(gen, 700, 48, 6)
        whole = random_assigner(np.random.default_rng(11), 48, 6, 15, seed=4)
        full = whole.assign(ranked)
        for splits in (2, 3, 7):
            blocked = random_assigner(np.random.default_rng(11), 48, 6, 15, seed=4)
            parts = [
                blocked.assign(part).group_indices
                for part in np.array_split(ranked, splits)
            ]
            np.testing.assert_array_equal(
                np.concatenate(parts), full.group_indices
            )
        # Stream position after blocked processing equals the full run's.
        blocked = random_assigner(np.random.default_rng(11), 48, 6, 15, seed=4)
        for part in np.array_split(ranked, 5):
            blocked.assign(part)
        assert whole.rng.integers(0, 1 << 30) == blocked.rng.integers(0, 1 << 30)


class TestKernelParity:
    """The optimised kernels vs the retained seed kernels, bit for bit."""

    @pytest.mark.parametrize("seed,r,m,d,k", [
        (0, 17, 5, 300, 7),
        (1, 64, 8, 500, 31),
        (2, 96, 6, 400, 50),
        (3, 200, 10, 200, 64),
    ])
    def test_od_and_wd_kernels(self, seed, r, m, d, k):
        gen = np.random.default_rng(seed)
        objs = random_signatures(gen, d, r, m)
        cents = random_signatures(gen, k, r, m)
        packed_objs = pack_pivot_sets(np.sort(objs, axis=1), r)
        packed_cents = pack_pivot_sets(np.sort(cents, axis=1), r)
        od_new = overlap_distance_matrix(packed_objs, packed_cents, m)
        od_ref = overlap_distance_matrix_reference(packed_objs, packed_cents, m)
        np.testing.assert_array_equal(od_new, od_ref)

        w = decay_weights(m)
        wd_new = weight_distance_matrix(objs, packed_cents, r, w)
        wd_ref = weight_distance_matrix_reference(objs, packed_cents, r, w)
        # Bit-identical, not merely close: identical accumulation order.
        assert wd_new.tobytes() == wd_ref.tobytes()


class TestCentroidParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_selection_identical(self, seed):
        gen = np.random.default_rng(seed)
        r = int(gen.integers(16, 100))
        m = int(gen.integers(2, min(10, r)))
        n = int(gen.integers(5, 300))
        sigs = list({
            tuple(sorted(int(p) for p in gen.choice(r, size=m, replace=False)))
            for _ in range(n)
        })
        freqs = gen.integers(1, 200, size=len(sigs)).tolist()
        eps = int(gen.integers(0, m + 1))
        cap = int(gen.integers(1, 5000))
        frac = float(gen.uniform(0.01, 1.0))
        maxc = None if gen.integers(0, 2) else int(gen.integers(1, 50))
        kwargs = dict(sample_fraction=frac, capacity=cap, epsilon=eps,
                      max_centroids=maxc)
        fast = compute_centroids(sigs, freqs, n_pivots=r, **kwargs)
        ref = compute_centroids_reference(sigs, freqs, **kwargs)
        assert fast == ref

    def test_default_bitset_width_matches_explicit(self):
        sigs = [(1, 5), (2, 9), (5, 9)]
        freqs = [5, 4, 3]
        kwargs = dict(sample_fraction=1.0, capacity=1, epsilon=1)
        assert (compute_centroids(sigs, freqs, **kwargs)
                == compute_centroids(sigs, freqs, n_pivots=32, **kwargs))


class TestBuilderConversionParity:
    """fused vs legacy conversion through the whole builder."""

    CONFIG = dict(word_length=8, n_pivots=48, prefix_length=6, capacity=150,
                  sample_fraction=0.2, n_input_partitions=32, seed=9)

    @pytest.fixture(scope="class")
    def pair(self):
        dataset = make_dataset("RandomWalk", 3000, length=48, seed=5)
        out = {}
        for mode in ("legacy", "fused"):
            dfs = SimulatedDFS()
            out[mode] = build_index_artifacts(
                dataset, ClimberConfig(**self.CONFIG), dfs=dfs,
                conversion=mode,
            )
        return out["legacy"], out["fused"]

    def test_skeletons_identical(self, pair):
        legacy, fused = pair
        assert legacy.skeleton.to_bytes() == fused.skeleton.to_bytes()

    def test_partitions_byte_identical(self, pair):
        legacy, fused = pair
        assert legacy.dfs.list_partitions() == fused.dfs.list_partitions()
        assert len(legacy.dfs.list_partitions()) > 5
        for pid in legacy.dfs.list_partitions():
            ea, eb = legacy.dfs.engine, fused.dfs.engine
            na, nb = ea._name(pid), eb._name(pid)
            assert (bytes(ea.backend.read_range(na, 0, ea.backend.size(na)))
                    == bytes(eb.backend.read_range(nb, 0, eb.backend.size(nb))))

    def test_sim_stage_costs_identical(self, pair):
        legacy, fused = pair
        sa, sb = legacy.sim_report.stages, fused.sim_report.stages
        assert [s.name for s in sa] == [s.name for s in sb]
        for x, y in zip(sa, sb):
            assert (x.n_tasks, x.total_cost, x.sim_seconds) == (
                y.n_tasks, y.total_cost, y.sim_seconds
            )

    def test_unknown_conversion_mode_rejected(self):
        from repro.exceptions import ConfigurationError

        dataset = make_dataset("RandomWalk", 300, length=32, seed=1)
        with pytest.raises(ConfigurationError):
            build_index_artifacts(
                dataset, ClimberConfig(**self.CONFIG), conversion="spark"
            )

"""Tests for the cost model and cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterSimulator,
    CostModel,
    TaskCost,
    ops_euclidean,
    ops_paa,
    ops_signature,
)
from repro.exceptions import ConfigurationError


class TestOpCounts:
    def test_euclidean_linear_in_length(self):
        assert ops_euclidean(200) == 2 * ops_euclidean(100)

    def test_paa_linear(self):
        assert ops_paa(256) == 512

    def test_signature_grows_with_pivots(self):
        assert ops_signature(200, 16, 10) > ops_signature(50, 16, 10)


class TestCostModel:
    def test_defaults_match_paper_cluster(self):
        m = CostModel()
        assert m.n_nodes == 2
        assert m.cores_per_node == 56
        assert m.total_cores == 112
        assert m.memory_per_node_gb == 512.0

    def test_total_memory(self):
        m = CostModel()
        assert m.total_memory_bytes == pytest.approx(1024e9)

    def test_read_time_linear_beyond_seek(self):
        m = CostModel()
        t1 = m.read_time(100 * 1024 * 1024)
        t2 = m.read_time(200 * 1024 * 1024)
        assert t2 - t1 == pytest.approx(t1 - m.read_time(0), rel=1e-6)

    def test_write_slower_than_sequential_write(self):
        """Replication makes writes cost more than raw disk bandwidth."""
        m = CostModel()
        nbytes = 64 * 1024 * 1024
        raw = nbytes / (m.disk_write_mb_s * 1024 * 1024)
        assert m.write_time(nbytes) > raw

    def test_compute_time_applies_software_factor(self):
        m = CostModel(cpu_ops_per_s=1e9, software_factor=2.0)
        assert m.compute_time(int(2e9)) == pytest.approx(4.0)

    def test_task_time_sums_components(self):
        m = CostModel()
        combined = m.task_time(TaskCost(read_bytes=1000, cpu_ops=1000))
        assert combined == pytest.approx(m.read_time(1000) + m.compute_time(1000))

    def test_zero_cost_task_is_free(self):
        m = CostModel()
        assert m.task_time(TaskCost()) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(n_nodes=0)
        with pytest.raises(ConfigurationError):
            CostModel(disk_read_mb_s=-1)
        with pytest.raises(ConfigurationError):
            CostModel(replication_factor=0)

    def test_taskcost_addition(self):
        a = TaskCost(read_bytes=1, write_bytes=2, shuffle_bytes=3, cpu_ops=4)
        b = TaskCost(read_bytes=10, cpu_ops=40)
        c = a + b
        assert (c.read_bytes, c.write_bytes, c.shuffle_bytes, c.cpu_ops) == (11, 2, 3, 44)


def quiet_model(**kwargs) -> CostModel:
    """A model with overheads zeroed and unit software factor, for exact checks."""
    defaults = dict(task_overhead_s=0.0, stage_overhead_s=0.0, disk_seek_s=0.0,
                    software_factor=1.0)
    defaults.update(kwargs)
    return CostModel(**defaults)


class TestClusterSimulator:
    def test_single_task_stage(self):
        sim = ClusterSimulator(quiet_model())
        report = sim.run_stage("scan", [TaskCost(cpu_ops=int(1.5e9))])
        assert report.sim_seconds == pytest.approx(1.0)

    def test_parallelism_speeds_up(self):
        """112 equal CPU tasks on 112 cores take ~1 task's time."""
        model = quiet_model()
        sim = ClusterSimulator(model)
        tasks = [TaskCost(cpu_ops=int(1.5e9))] * model.total_cores
        report = sim.run_stage("parallel", tasks)
        assert report.sim_seconds == pytest.approx(1.0)

    def test_more_tasks_than_cores_queue(self):
        model = quiet_model(n_nodes=1, cores_per_node=2)
        sim = ClusterSimulator(model)
        tasks = [TaskCost(cpu_ops=int(1.5e9))] * 4
        report = sim.run_stage("queued", tasks)
        assert report.sim_seconds == pytest.approx(2.0)

    def test_lpt_balances_uneven_tasks(self):
        model = quiet_model(n_nodes=1, cores_per_node=2)
        sim = ClusterSimulator(model)
        # Durations 4, 3, 2, 1 on 2 cores: LPT gives makespan 5 (4+1, 3+2).
        tasks = [TaskCost(cpu_ops=int(x * 1.5e9)) for x in (4, 3, 2, 1)]
        report = sim.run_stage("lpt", tasks)
        assert report.sim_seconds == pytest.approx(5.0)

    def test_empty_stage(self):
        sim = ClusterSimulator()
        report = sim.run_stage("noop", [])
        assert report.sim_seconds == 0.0
        assert report.n_tasks == 0

    def test_io_bound_stage_limited_by_node_bandwidth(self):
        """Extra cores cannot speed up a disk-bound stage."""
        model = quiet_model(n_nodes=1, cores_per_node=56, disk_read_mb_s=100.0)
        sim = ClusterSimulator(model)
        mb = 1024 * 1024
        tasks = [TaskCost(read_bytes=100 * mb)] * 56
        report = sim.run_stage("scan", tasks)
        # 5600 MB through one 100 MB/s disk = 56 s, regardless of cores.
        assert report.sim_seconds == pytest.approx(56.0, rel=1e-3)

    def test_stage_overhead_applied_once(self):
        model = quiet_model(stage_overhead_s=2.5)
        sim = ClusterSimulator(model)
        report = sim.run_stage("o", [TaskCost(), TaskCost()])
        assert report.sim_seconds == pytest.approx(2.5)

    def test_per_task_overhead_serialises_on_one_core(self):
        model = quiet_model(n_nodes=1, cores_per_node=1, task_overhead_s=0.5)
        sim = ClusterSimulator(model)
        report = sim.run_stage("o", [TaskCost(), TaskCost()])
        assert report.sim_seconds == pytest.approx(1.0)

    def test_report_accumulates_stages(self):
        sim = ClusterSimulator(quiet_model())
        sim.run_stage("a", [TaskCost(cpu_ops=int(1.5e9))])
        sim.run_stage("b", [TaskCost(cpu_ops=int(3e9))])
        assert sim.report.total_seconds == pytest.approx(3.0)
        assert sim.report.seconds_for("a") == pytest.approx(1.0)

    def test_fresh_report_resets(self):
        sim = ClusterSimulator()
        sim.run_stage("a", [TaskCost(cpu_ops=100)])
        first = sim.fresh_report()
        assert len(first.stages) == 1
        assert len(sim.report.stages) == 0

    def test_driver_step_is_serial(self):
        sim = ClusterSimulator(quiet_model())
        report = sim.run_driver_step("driver", TaskCost(cpu_ops=int(1.5e9)))
        assert report.sim_seconds == pytest.approx(1.0)

    def test_broadcast_cost_scales_with_nodes(self):
        small = ClusterSimulator(CostModel(n_nodes=2))
        large = ClusterSimulator(CostModel(n_nodes=8))
        nbytes = 10 * 1024 * 1024
        assert (
            large.broadcast("b", nbytes).sim_seconds
            > small.broadcast("b", nbytes).sim_seconds
        )

    def test_broadcast_rejects_negative(self):
        sim = ClusterSimulator()
        with pytest.raises(ConfigurationError):
            sim.broadcast("b", -1)

    def test_report_merge_and_str(self):
        sim = ClusterSimulator()
        sim.run_stage("x", [TaskCost(cpu_ops=100)])
        other = ClusterSimulator()
        other.run_stage("y", [TaskCost(cpu_ops=100)])
        rep = sim.fresh_report()
        rep.merge(other.fresh_report())
        assert len(rep.stages) == 2
        assert "total:" in str(rep)


class TestScanVsIndexShape:
    """The macro property Table I / Fig. 7 depend on: full scans of paper-scale
    data are minutes, few-partition index probes stay around ten seconds."""

    def test_full_scan_dwarfs_partition_read(self):
        model = CostModel()
        sim = ClusterSimulator(model)
        total = 200e9  # 200 GB dataset
        n_parts = int(total // (64 * 1024 * 1024))
        per_part = TaskCost(read_bytes=64 * 1024 * 1024, cpu_ops=int(64e6))
        scan = sim.run_stage("scan", [per_part] * n_parts)
        index_read = sim.run_stage("probe", [per_part] * 4)
        # Paper Fig. 7(a): Dss ~860 s vs CLIMBER ~13 s at 200 GB.
        assert scan.sim_seconds > 40 * index_read.sim_seconds
        assert 100 < scan.sim_seconds < 2_000
        assert index_read.sim_seconds < 20


class TestRunStageFastPath:
    """Single-task / uniform-cost stages skip the LPT heap but must stay
    bit-identical to the general scheduling path."""

    @staticmethod
    def _reference_run_stage(model, costs):
        """The seed heap scheduling, reproduced for exact comparison."""
        import heapq

        durations = sorted(
            (
                model.compute_time(c.cpu_ops)
                + (model.disk_seek_s if c.read_bytes else 0.0)
                + model.task_overhead_s
                for c in costs
            ),
            reverse=True,
        )
        heap = [0.0] * min(model.total_cores, len(durations))
        heapq.heapify(heap)
        for dur in durations:
            earliest = heapq.heappop(heap)
            heapq.heappush(heap, earliest + dur)
        cpu_makespan = max(heap)
        total = TaskCost()
        for c in costs:
            total = total + c
        io_seconds = max(
            total.read_bytes / model.cluster_read_bytes_s,
            total.write_bytes
            * max(1, model.replication_factor - 1)
            / model.cluster_write_bytes_s,
            total.shuffle_bytes / model.cluster_network_bytes_s,
        )
        return model.stage_overhead_s + max(cpu_makespan, io_seconds), total

    def test_uniform_stage_bit_identical_to_heap(self):
        model = CostModel(n_nodes=1, cores_per_node=3)
        for n_tasks in (1, 2, 3, 4, 7, 100):
            cost = TaskCost(read_bytes=7_777_777, write_bytes=123,
                            shuffle_bytes=456, cpu_ops=987_654_321)
            costs = [cost] * n_tasks
            sim = ClusterSimulator(model)
            stage = sim.run_stage("uniform", costs)
            ref_seconds, ref_total = self._reference_run_stage(model, costs)
            assert stage.sim_seconds == ref_seconds  # exact, not approx
            assert stage.total_cost == ref_total
            assert stage.n_tasks == n_tasks

    def test_single_irregular_task_bit_identical(self):
        model = CostModel()
        cost = TaskCost(cpu_ops=31_415_926, read_bytes=1)
        sim = ClusterSimulator(model)
        stage = sim.run_stage("one", [cost])
        ref_seconds, ref_total = self._reference_run_stage(model, [cost])
        assert stage.sim_seconds == ref_seconds
        assert stage.total_cost == ref_total

    def test_mixed_costs_take_general_path(self):
        model = CostModel(n_nodes=1, cores_per_node=2,
                          task_overhead_s=0.0, stage_overhead_s=0.0,
                          disk_seek_s=0.0, software_factor=1.0)
        tasks = [TaskCost(cpu_ops=int(x * 1.5e9)) for x in (4, 3, 2, 1)]
        sim = ClusterSimulator(model)
        stage = sim.run_stage("lpt", tasks)
        ref_seconds, _ = self._reference_run_stage(model, tasks)
        assert stage.sim_seconds == ref_seconds
        assert stage.sim_seconds == pytest.approx(5.0)

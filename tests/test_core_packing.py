"""Tests for node packing (Def. 13): FFD and the ablation packers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import first_fit, first_fit_decreasing, one_per_bin
from repro.exceptions import ConfigurationError


class TestFirstFitDecreasing:
    def test_exact_fit(self):
        bins = first_fit_decreasing([("a", 5.0), ("b", 5.0)], capacity=5.0)
        assert len(bins) == 2

    def test_packs_small_after_large(self):
        items = [("big", 7.0), ("mid", 5.0), ("s1", 3.0), ("s2", 3.0), ("s3", 2.0)]
        bins = first_fit_decreasing(items, capacity=10.0)
        # Optimal here is 2 bins: {7,3} and {5,3,2}; FFD finds it.
        assert len(bins) == 2
        sizes = dict(items)
        for b in bins:
            assert sum(sizes[k] for k in b) <= 10.0

    def test_oversized_item_gets_own_bin(self):
        bins = first_fit_decreasing([("huge", 50.0), ("tiny", 1.0)], capacity=10.0)
        assert ["huge"] in bins

    def test_all_keys_preserved(self):
        items = [(i, float(i % 7) + 0.5) for i in range(40)]
        bins = first_fit_decreasing(items, capacity=9.0)
        packed = sorted(k for b in bins for k in b)
        assert packed == list(range(40))

    def test_empty_items(self):
        assert first_fit_decreasing([], capacity=5.0) == []

    def test_zero_size_items_share_one_bin(self):
        bins = first_fit_decreasing([("a", 0.0), ("b", 0.0)], capacity=5.0)
        assert len(bins) == 1

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            first_fit_decreasing([("a", -1.0)], capacity=5.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            first_fit_decreasing([("a", 1.0)], capacity=0.0)

    def test_deterministic_under_equal_sizes(self):
        items = [("b", 2.0), ("a", 2.0), ("c", 2.0)]
        assert first_fit_decreasing(items, 10.0) == first_fit_decreasing(
            list(reversed(items)), 10.0
        )


class TestAblationPackers:
    def test_first_fit_respects_capacity(self):
        items = [(i, 3.0) for i in range(7)]
        bins = first_fit(items, capacity=7.0)
        for b in bins:
            assert len(b) <= 2

    def test_ffd_never_worse_than_first_fit(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            items = [(i, float(s)) for i, s in
                     enumerate(rng.uniform(0.5, 8.0, size=30))]
            ffd = first_fit_decreasing(items, capacity=10.0)
            ff = first_fit(items, capacity=10.0)
            assert len(ffd) <= len(ff)

    def test_one_per_bin(self):
        items = [("a", 1.0), ("b", 2.0)]
        assert one_per_bin(items, capacity=10.0) == [["a"], ["b"]]


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_ffd_invariants_property(data):
    """Properties: coverage, disjointness, capacity (for non-oversized items),
    and the first-fit half-full guarantee."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    n = data.draw(st.integers(1, 60))
    capacity = data.draw(st.floats(1.0, 50.0))
    sizes = rng.uniform(0.0, capacity, size=n)
    items = [(i, float(s)) for i, s in enumerate(sizes)]
    bins = first_fit_decreasing(items, capacity)

    packed = sorted(k for b in bins for k in b)
    assert packed == list(range(n))  # coverage + disjointness
    size_of = dict(items)
    loads = [sum(size_of[k] for k in b) for b in bins]
    for load in loads:
        assert load <= capacity + 1e-9
    # First-fit guarantee: at most one bin can end up at most half full
    # (otherwise the later bin's first item would have fit the earlier one).
    assert sum(1 for load in loads if load <= capacity / 2) <= 1


class TestFfdEarlyExitParity:
    """The max-residual early exit must not change any packing decision."""

    @staticmethod
    def _reference_ffd(items, capacity):
        """The seed FFD without the early exit."""
        ordered = sorted(items, key=lambda kv: (-kv[1], str(kv[0])))
        bins, residual = [], []
        for key, size in ordered:
            placed = False
            for i, free in enumerate(residual):
                if size <= free:
                    bins[i].append(key)
                    residual[i] = free - size
                    placed = True
                    break
            if not placed:
                bins.append([key])
                residual.append(max(0.0, capacity - size))
        return bins

    def test_randomized_parity(self):
        rng = np.random.default_rng(17)
        for trial in range(40):
            n = int(rng.integers(1, 200))
            capacity = float(rng.uniform(5.0, 200.0))
            # Include oversized items (> capacity) and duplicates.
            sizes = rng.uniform(0.0, capacity * 1.4, size=n)
            items = [((i % max(1, n // 2), i), float(s))
                     for i, s in enumerate(sizes)]
            assert first_fit_decreasing(items, capacity) == \
                self._reference_ffd(items, capacity), f"trial {trial}"

    def test_oversized_items_each_get_a_bin(self):
        items = [("a", 50.0), ("b", 40.0), ("c", 30.0)]
        bins = first_fit_decreasing(items, 10.0)
        assert bins == [["a"], ["b"], ["c"]]

    def test_skip_regime_still_places_later_small_items(self):
        # A big item tightens the bound, then a small item must still scan.
        items = [("big1", 9.0), ("big2", 9.0), ("tiny", 1.0)]
        bins = first_fit_decreasing(items, 10.0)
        assert bins == [["big1", "tiny"], ["big2"]]

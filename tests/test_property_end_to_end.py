"""Property-based end-to-end tests over random configurations.

Hypothesis drives dataset shape and index knobs; the invariants checked
are the ones every legal CLIMBER build/query must satisfy regardless of
parameters.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset


@st.composite
def index_setup(draw):
    count = draw(st.integers(300, 900))
    length = draw(st.sampled_from([32, 48, 64]))
    w = draw(st.sampled_from([4, 8]))
    r = draw(st.integers(8, 24))
    m = draw(st.integers(2, min(6, r)))
    capacity = draw(st.integers(40, 200))
    seed = draw(st.integers(0, 10_000))
    return count, length, w, r, m, capacity, seed


@given(index_setup())
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_build_and_query_invariants(setup):
    count, length, w, r, m, capacity, seed = setup
    ds = random_walk_dataset(count, length, seed=seed)
    cfg = ClimberConfig(
        word_length=w, n_pivots=r, prefix_length=m, capacity=capacity,
        sample_fraction=0.3, n_input_partitions=8, seed=seed,
    )
    index = ClimberIndex.build(ds, cfg)

    # (1) Storage conservation: every record stored exactly once.
    stored = []
    for pname in index.dfs.list_partitions():
        stored.extend(index.dfs.read_partition(pname).ids.tolist())
    assert sorted(stored) == sorted(ds.ids.tolist())

    # (2) The fall-back group exists and is group 0.
    assert index.skeleton.groups[0].is_fallback

    # (3) Queries return k sorted results containing no duplicates.
    rng = np.random.default_rng(seed + 1)
    for qi in rng.choice(count, size=3, replace=False):
        for variant in ("knn", "adaptive", "od-smallest"):
            res = index.knn(ds.values[qi], 10, variant=variant)
            assert len(res.ids) == min(10, res.stats.records_examined)
            assert len(set(res.ids.tolist())) == len(res.ids)
            assert np.all(np.diff(res.distances) >= 0)
            assert res.stats.records_examined >= len(res.ids)

    # (4) The global index is dramatically smaller than the data.
    assert index.global_index_nbytes < ds.nbytes

    # (5) Persistence round-trip preserves routing.
    reopened = ClimberIndex.reopen(index.save_global_index(), index.dfs, cfg)
    probe = ds.values[int(rng.integers(0, count))]
    a = index.knn(probe, 5, variant="knn")
    b = reopened.knn(probe, 5, variant="knn")
    np.testing.assert_array_equal(a.ids, b.ids)


@given(index_setup())
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_self_queries_mostly_find_themselves(setup):
    """Dataset members route back to their own cluster almost always.

    (Not strictly always: Algorithm 1's random tie-break can send a
    signature's build-time copy and its query-time routing to different
    groups; that is by design, so we assert a high hit rate, not 100%.)
    """
    count, length, w, r, m, capacity, seed = setup
    ds = random_walk_dataset(count, length, seed=seed)
    cfg = ClimberConfig(
        word_length=w, n_pivots=r, prefix_length=m, capacity=capacity,
        sample_fraction=0.3, n_input_partitions=8, seed=seed,
    )
    index = ClimberIndex.build(ds, cfg)
    rng = np.random.default_rng(seed)
    probes = rng.choice(count, size=12, replace=False)
    hits = sum(
        1
        for qi in probes
        if index.knn(ds.values[qi], 3, variant="adaptive").ids[0] == ds.ids[qi]
    )
    assert hits >= 9

"""Parallel execution layer: bit-identical parity and failure propagation.

The contract under test (see :mod:`repro.core.parallel`): any
``n_workers`` produces **bit-identical** results to ``n_workers=1`` —
same partition bytes, same logical counters, same kNN answers — because
every parallel call site defers RNG and registration to the caller's
thread in deterministic order.  Worker scheduling must never leak into
results; a worker exception must surface on the caller, not hang.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.core.builder as builder_mod
from repro.core.builder import build_index_artifacts
from repro.core.config import ClimberConfig
from repro.core.index import ClimberIndex
from repro.core.parallel import (
    EXECUTOR_KINDS,
    N_WORKERS_ENV,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_n_workers,
    split_ranges,
)
from repro.core.skeleton import SkeletonWithPivots
from repro.exceptions import ConfigurationError
from repro.series import SeriesDataset


def _dataset(n=3000, length=64, seed=11):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((n, length))
    # Duplicate a stretch of rows so signature ties (and with them the
    # RNG tie-break tail) actually occur.
    values[n // 4: n // 4 + 50] = values[: 50]
    return SeriesDataset(values)


def _config(n_workers, executor="thread", conversion_format="v2", seed=5):
    return ClimberConfig(
        word_length=8,
        n_pivots=24,
        prefix_length=4,
        capacity=64,
        sample_fraction=0.5,
        seed=seed,
        n_input_partitions=8,
        partition_format=conversion_format,
        n_workers=n_workers,
        executor=executor,
    )


def _partition_payloads(dfs):
    """Stored physical bytes of every partition, by id."""
    engine = dfs.engine
    out = {}
    for pid in dfs.list_partitions():
        size = engine.physical_nbytes(pid)
        out[pid] = bytes(
            engine.backend.read_range(f"{pid}{engine.SUFFIX}", 0, size)
        )
    return out


# -- executor primitives ---------------------------------------------------------


class TestExecutors:
    def test_resolve_explicit(self):
        assert resolve_n_workers(3) == 3

    def test_resolve_default_is_one(self, monkeypatch):
        monkeypatch.delenv(N_WORKERS_ENV, raising=False)
        assert resolve_n_workers(None) == 1

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(N_WORKERS_ENV, "4")
        assert resolve_n_workers(None) == 4

    def test_resolve_env_invalid(self, monkeypatch):
        monkeypatch.setenv(N_WORKERS_ENV, "two")
        with pytest.raises(ConfigurationError):
            resolve_n_workers(None)

    def test_resolve_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            resolve_n_workers(0)

    def test_make_executor_serial_for_one_worker(self):
        for kind in EXECUTOR_KINDS:
            assert isinstance(make_executor(kind, 1), SerialExecutor)

    def test_make_executor_kinds(self):
        with make_executor("thread", 2) as ex:
            assert isinstance(ex, ThreadExecutor)
        with make_executor("process", 2) as ex:
            assert isinstance(ex, ProcessExecutor)
            assert not ex.shares_memory
        assert isinstance(make_executor("serial", 8), SerialExecutor)

    def test_make_executor_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_executor("gpu", 2)

    def test_shared_memory_gate_degrades_process_to_threads(self):
        with make_executor("process", 2, require_shared_memory=True) as ex:
            assert isinstance(ex, ThreadExecutor)
            assert ex.shares_memory

    def test_map_preserves_order(self):
        items = list(range(50))
        with make_executor("thread", 4) as ex:
            assert ex.map(lambda x: x * x, items) == [x * x for x in items]

    def test_process_map_runs(self):
        with make_executor("process", 2) as ex:
            assert ex.map(abs, [-1, -2, 3]) == [1, 2, 3]

    def test_thread_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("worker failed")
            return x

        with make_executor("thread", 2) as ex:
            with pytest.raises(ValueError, match="worker failed"):
                ex.map(boom, range(8))

    def test_split_ranges(self):
        assert split_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert split_ranges(0, 4) == []
        with pytest.raises(ConfigurationError):
            split_ranges(10, 0)


def test_config_effective_n_workers(monkeypatch):
    monkeypatch.setenv(N_WORKERS_ENV, "3")
    assert ClimberConfig(n_workers=None).effective_n_workers == 3
    assert ClimberConfig(n_workers=2).effective_n_workers == 2
    with pytest.raises(ConfigurationError):
        ClimberConfig(n_workers=0)
    with pytest.raises(ConfigurationError):
        ClimberConfig(executor="fiber")


# -- build parity ----------------------------------------------------------------


class TestBuildParity:
    @pytest.mark.parametrize("conversion", ["fused", "legacy"])
    def test_build_bit_identical_across_worker_counts(self, conversion):
        dataset = _dataset()
        reference = build_index_artifacts(
            dataset, _config(1), conversion=conversion
        )
        ref_payloads = _partition_payloads(reference.dfs)
        ref_counters = reference.dfs.counters
        for n_workers in (2, 4):
            art = build_index_artifacts(
                dataset, _config(n_workers), conversion=conversion
            )
            assert _partition_payloads(art.dfs) == ref_payloads
            assert art.dfs.counters.bytes_written == ref_counters.bytes_written
            assert (art.dfs.counters.partitions_written
                    == ref_counters.partitions_written)
            # The broadcast structure (skeleton + pivots) must agree too.
            assert SkeletonWithPivots(
                art.skeleton, art.pivots
            ).to_bytes() == SkeletonWithPivots(
                reference.skeleton, reference.pivots
            ).to_bytes()

    def test_build_process_executor_parity(self):
        dataset = _dataset(n=1500)
        reference = build_index_artifacts(dataset, _config(1))
        art = build_index_artifacts(
            dataset, _config(2, executor="process")
        )
        assert _partition_payloads(art.dfs) == _partition_payloads(
            reference.dfs
        )

    def test_process_executor_encodes_without_fallback(self):
        # Regression (PR-6 remaining item): redistribution encodes used to
        # fall back to serial on process pools because the encode task
        # closed over live engine handles.  The encode spec is plain data
        # now, so a v2 process build must not record any fallback — the
        # only pooled stage that still degrades is the shared-memory trie
        # compile, which warns through make_executor, not the builder.
        import warnings

        from repro.obs import global_registry

        dataset = _dataset(n=1500)
        before = global_registry().counter("parallel.fallbacks").value
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            art = build_index_artifacts(
                dataset, _config(2, executor="process")
            )
        assert global_registry().counter("parallel.fallbacks").value == before
        assert _partition_payloads(art.dfs) == _partition_payloads(
            build_index_artifacts(dataset, _config(1)).dfs
        )

    def test_encode_partition_task_matches_engine_encode(self):
        # The picklable spec path and the live-engine path must produce
        # identical payload bytes for both formats.
        from repro.core.builder import _encode_partition_task
        from repro.storage.engine import MemoryBackend, StorageEngine

        rng = np.random.default_rng(7)
        ids = np.arange(40, dtype=np.int64)
        values = rng.standard_normal((40, 16))
        header = {"g0/a": (0, 25), "g0/b": (25, 15)}
        for fmt in ("v2", "v1"):
            engine = StorageEngine(MemoryBackend(), partition_format=fmt)
            expected = engine.encode_arrays("part-x", ids, values, header)
            got = _encode_partition_task(
                ("part-x", ids, values, header, fmt, engine.checksums)
            )
            assert got == expected

    def test_build_v1_object_store_parity(self):
        # The v1 in-memory object store has no encoded-write path; the
        # redistribution falls back to the serial write loop but must stay
        # record-identical.
        dataset = _dataset(n=1500)
        ref = build_index_artifacts(dataset, _config(1, conversion_format="v1"))
        par = build_index_artifacts(dataset, _config(4, conversion_format="v1"))
        assert ref.dfs.list_partitions() == par.dfs.list_partitions()
        for pid in ref.dfs.list_partitions():
            a_ids, a_vals = ref.dfs.read_partition(pid).read_all()
            b_ids, b_vals = par.dfs.read_partition(pid).read_all()
            assert np.array_equal(a_ids, b_ids)
            assert np.array_equal(a_vals, b_vals)


# -- query parity ----------------------------------------------------------------


class TestQueryParity:
    @pytest.mark.parametrize("variant", ["knn", "adaptive", "od-smallest"])
    def test_knn_batch_identical_across_worker_counts(self, variant):
        dataset = _dataset()
        rng = np.random.default_rng(23)
        queries = rng.standard_normal((40, dataset.length))
        # Duplicate queries exercise the routing dedup alongside sharding.
        queries[30:] = queries[:10]

        reference = None
        for n_workers in (1, 2, 4):
            index = ClimberIndex.build(dataset, _config(n_workers))
            results = index.knn_batch(queries, k=5, variant=variant)
            logical = index.dfs.counters
            summary = [
                (
                    r.ids.tolist(),
                    r.distances.tolist(),
                    r.stats.partitions_loaded,
                    r.stats.records_examined,
                    r.stats.sim_seconds,
                )
                for r in results
            ]
            if reference is None:
                reference = (summary, logical.bytes_read,
                             logical.partitions_read)
            else:
                assert summary == reference[0]
                assert logical.bytes_read == reference[1]
                assert logical.partitions_read == reference[2]

    def test_knn_batch_matches_single_queries_with_workers(self):
        dataset = _dataset(n=1500)
        queries = np.random.default_rng(3).standard_normal(
            (12, dataset.length)
        )
        batch_index = ClimberIndex.build(dataset, _config(4))
        single_index = ClimberIndex.build(dataset, _config(1))
        batch = batch_index.knn_batch(queries, k=5)
        for i, result in enumerate(batch):
            solo = single_index.knn(queries[i], k=5)
            assert np.array_equal(result.ids, solo.ids)
            assert np.allclose(result.distances, solo.distances)


# -- failure propagation ---------------------------------------------------------


class TestFailurePropagation:
    def test_transient_worker_failure_recovers_via_retry(self, monkeypatch):
        # 3000 records / 4096-row blocks -> one conversion task; a one-shot
        # injected failure is resubmitted (parallel.task_retries) and the
        # build completes — bit-identical to an unfaulted serial build.
        dataset = _dataset(n=3000)
        real = builder_mod._convert_block
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected worker failure")
            return real(task)

        from repro.obs import global_registry

        retries_before = global_registry().counter(
            "parallel.task_retries"
        ).value
        monkeypatch.setattr(builder_mod, "_convert_block", flaky)
        artifacts = build_index_artifacts(dataset, _config(2))
        monkeypatch.setattr(builder_mod, "_convert_block", real)
        reference = build_index_artifacts(dataset, _config(1))
        assert calls["n"] >= 2
        assert global_registry().counter(
            "parallel.task_retries"
        ).value > retries_before
        assert sorted(artifacts.dfs.list_partitions()) == sorted(
            reference.dfs.list_partitions()
        )

    def test_persistent_worker_failure_surfaces_from_build(self, monkeypatch):
        # A deterministic task failure survives the retry and the serial
        # rerun, and must abort the build on the caller's thread — not
        # hang the pool.
        dataset = _dataset(n=3000)

        def broken(task):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(builder_mod, "_convert_block", broken)
        with pytest.warns(RuntimeWarning, match="failed twice"):
            with pytest.raises(RuntimeError, match="injected worker failure"):
                build_index_artifacts(dataset, _config(2))

    def test_worker_exception_surfaces_from_knn_batch(self, monkeypatch):
        dataset = _dataset(n=1000)
        index = ClimberIndex.build(dataset, _config(1))
        index.config = _config(2)

        def boom(*args, **kwargs):
            raise RuntimeError("injected shard failure")

        monkeypatch.setattr(index, "_knn_routed", boom)
        queries = np.random.default_rng(1).standard_normal(
            (20, dataset.length)
        )
        with pytest.warns(RuntimeWarning, match="failed twice"):
            with pytest.raises(RuntimeError, match="injected shard failure"):
                index.knn_batch(queries, k=3)


def test_env_var_drives_build(monkeypatch):
    # CLIMBER_N_WORKERS alone (config untouched) must route the build
    # through the thread pool and still produce the serial bytes.
    dataset = _dataset(n=1200)
    monkeypatch.delenv(N_WORKERS_ENV, raising=False)
    reference = build_index_artifacts(dataset, _config(None))
    monkeypatch.setenv(N_WORKERS_ENV, "2")
    art = build_index_artifacts(dataset, _config(None))
    assert _partition_payloads(art.dfs) == _partition_payloads(reference.dfs)

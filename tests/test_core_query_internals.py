"""Unit tests for the query-side internals of ClimberIndex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberIndex, cluster_key


@pytest.fixture(scope="module")
def built(std_index_dataset, built_index):
    # Query-internal checks are read-only: ride the shared session index.
    return std_index_dataset, built_index


class TestGroupCandidatesSlack:
    def test_slack_widens_candidate_pool(self, built):
        ds, idx = built
        sig = idx.query_signature(ds.values[3])
        strict = idx.group_candidates(sig, od_slack=0)
        slack = idx.group_candidates(sig, od_slack=2)
        assert len(slack) >= len(strict)
        # The strict set is a prefix of the slack set in OD order.
        assert {c.entry.group_id for c in strict} <= {
            c.entry.group_id for c in slack
        }

    def test_slack_never_includes_no_overlap_groups(self, built, std_index_config):
        ds, idx = built
        sig = idx.query_signature(ds.values[7])
        m = std_index_config.prefix_length
        for c in idx.group_candidates(sig, od_slack=m):
            assert c.od < m or c.entry.is_fallback

    def test_primary_always_at_min_od(self, built):
        ds, idx = built
        for i in (1, 50, 400, 2000):
            sig = idx.query_signature(ds.values[i])
            cands = idx.group_candidates(sig, od_slack=2)
            primary = idx.select_primary(cands)
            assert primary.od == min(c.od for c in cands)


class TestCovered:
    def test_node_inside_selected_subtree(self, built):
        _, idx = built
        entry = idx.skeleton.groups[1]
        root = entry.trie
        if root.is_leaf:
            pytest.skip("group 1 trie has no children in this build")
        child = next(iter(root.children.values()))
        assert ClimberIndex._covered([(entry, root)], entry, child)
        assert not ClimberIndex._covered([(entry, child)], entry, root)

    def test_different_groups_never_cover(self, built):
        _, idx = built
        a = idx.skeleton.groups[1]
        b = idx.skeleton.groups[2]
        assert not ClimberIndex._covered([(a, a.trie)], b, b.trie)


class TestTargetKeys:
    def test_root_selection_includes_default_cluster(self, built):
        _, idx = built
        entry = idx.skeleton.groups[1]
        keys = idx._target_keys(entry, entry.trie)
        assert cluster_key(entry.group_id, None) in keys

    def test_leaf_selection_is_single_key(self, built):
        _, idx = built
        entry = idx.skeleton.groups[1]
        leaves = list(entry.trie.leaves())
        if leaves[0] is entry.trie:
            pytest.skip("group 1 trie is a single leaf")
        keys = idx._target_keys(entry, leaves[0])
        assert keys == [cluster_key(entry.group_id, leaves[0].path)]


class TestKnnBatch:
    def test_batch_matches_singles(self, built):
        ds, idx = built
        batch = idx.knn_batch(ds.values[:4], 5, variant="knn")
        assert len(batch) == 4
        for i, res in enumerate(batch):
            single = idx.knn(ds.values[i], 5, variant="knn")
            np.testing.assert_array_equal(res.ids, single.ids)

    def test_single_row_input(self, built):
        ds, idx = built
        out = idx.knn_batch(ds.values[0], 3)
        assert len(out) == 1
        assert len(out[0].ids) == 3


class TestAdaptiveBudget:
    def test_expansion_subsumes_descendants(self, built):
        """Selecting an ancestor must remove its selected descendants."""
        ds, idx = built
        # Force heavy expansion with a large k.
        res = idx.knn(ds.values[11], 800, variant="adaptive", adaptive_factor=8)
        assert len(res.ids) == 800 or res.stats.records_examined >= len(res.ids)

    def test_factor_one_equals_knn_partitions(self, built):
        ds, idx = built
        for i in (5, 25, 125):
            a = idx.knn(ds.values[i], 300, variant="adaptive", adaptive_factor=1)
            b = idx.knn(ds.values[i], 300, variant="knn")
            assert a.stats.n_partitions <= max(1, b.stats.n_partitions) + 1

    def test_larger_factor_never_fewer_partitions(self, built):
        ds, idx = built
        for i in (9, 99, 999):
            small = idx.knn(ds.values[i], 600, variant="adaptive", adaptive_factor=2)
            large = idx.knn(ds.values[i], 600, variant="adaptive", adaptive_factor=6)
            assert large.stats.n_partitions >= small.stats.n_partitions

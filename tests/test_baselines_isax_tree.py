"""Tests for the shared in-memory iSAX binary tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ISaxTree
from repro.exceptions import ConfigurationError
from repro.series import ISaxSpace, knn_bruteforce, paa_transform, znormalize


@pytest.fixture(scope="module")
def loaded_tree():
    rng = np.random.default_rng(21)
    data = znormalize(rng.normal(size=(800, 32)).cumsum(axis=1))
    space = ISaxSpace(4, 32, max_bits=6)
    paa = paa_transform(data, 4)
    tree = ISaxTree(space, leaf_capacity=32)
    tree.bulk_load(space.encode_paa(paa), np.arange(800))
    return data, paa, space, tree


class TestBulkLoad:
    def test_all_rows_in_leaves(self, loaded_tree):
        _, _, _, tree = loaded_tree
        total = sum(l.rows.shape[0] for l in tree.leaves() if l.rows is not None)
        assert total == 800

    def test_leaf_capacity_respected(self, loaded_tree):
        _, _, space, tree = loaded_tree
        for leaf in tree.leaves():
            if leaf.rows is None:
                continue
            # Oversized leaves only when the word is fully refined.
            if leaf.rows.shape[0] > 32:
                assert all(b == space.max_bits for b in leaf.word.bits)

    def test_leaf_rows_match_leaf_words(self, loaded_tree):
        """Every row stored under a leaf must be covered by the leaf word."""
        data, paa, space, tree = loaded_tree
        syms = space.encode_paa(paa)
        for leaf in tree.leaves():
            if leaf.rows is None or leaf.rows.shape[0] == 0:
                continue
            assert space.matches(leaf.word, syms[leaf.rows]).all()

    def test_rejects_bad_shapes(self):
        space = ISaxSpace(4, 32)
        tree = ISaxTree(space, 8)
        with pytest.raises(ConfigurationError):
            tree.bulk_load(np.zeros((5, 3), dtype=np.int64), np.arange(5))
        with pytest.raises(ConfigurationError):
            tree.bulk_load(np.zeros((5, 4), dtype=np.int64), np.arange(4))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ISaxTree(ISaxSpace(4, 32), 0)

    def test_node_count(self, loaded_tree):
        _, _, _, tree = loaded_tree
        assert tree.node_count() >= len(tree.leaves())


class TestDescend:
    def test_descend_reaches_leaf(self, loaded_tree):
        _, paa, space, tree = loaded_tree
        syms = space.encode_paa(paa)
        node = tree.descend(syms[0])
        assert node.is_leaf

    def test_descend_finds_own_leaf(self, loaded_tree):
        """A stored row's symbols must route to the leaf containing it."""
        _, paa, space, tree = loaded_tree
        syms = space.encode_paa(paa)
        for i in (0, 100, 400, 799):
            node = tree.descend(syms[i])
            assert i in set(node.rows.tolist())


class TestExactKnn:
    def test_matches_bruteforce(self, loaded_tree):
        """Branch-and-bound with MINDIST pruning must stay exact."""
        data, paa, _, tree = loaded_tree
        for i in (3, 97, 512):
            ids, dists, _ = tree.exact_knn(data[i], paa[i], data, 10)
            expect_ids, expect_d = knn_bruteforce(data[i], data, np.arange(800), 10)
            assert set(ids) == set(expect_ids)
            # atol covers the matmul-vs-direct floating point gap (~1e-7).
            np.testing.assert_allclose(np.sort(dists), np.sort(expect_d), atol=1e-6)

    def test_prunes_some_records(self, loaded_tree):
        """Pruning must skip part of the data for typical queries.

        MINDIST bounds are weak in high dimensions, so individual queries
        may degenerate to a full scan; the average must not.
        """
        data, paa, _, tree = loaded_tree
        visited = sum(
            tree.exact_knn(data[i], paa[i], data, 5)[2] for i in (3, 97, 211, 512, 700)
        )
        assert visited < 5 * 800

    def test_visits_at_least_k(self, loaded_tree):
        data, paa, _, tree = loaded_tree
        _, _, visited = tree.exact_knn(data[5], paa[5], data, 5)
        assert visited >= 5

    def test_empty_tree_raises(self):
        from repro.exceptions import IndexNotBuiltError

        tree = ISaxTree(ISaxSpace(4, 32), 8)
        with pytest.raises(IndexNotBuiltError):
            tree.exact_knn(np.zeros(32), np.zeros(4), np.zeros((1, 32)), 1)

    def test_exact_on_out_of_sample_queries(self, loaded_tree):
        data, _, space, tree = loaded_tree
        rng = np.random.default_rng(5)
        queries = znormalize(rng.normal(size=(5, 32)).cumsum(axis=1))
        qpaa = paa_transform(queries, 4)
        for q, qp in zip(queries, qpaa):
            ids, _, _ = tree.exact_knn(q, qp, data, 7)
            expect_ids, _ = knn_bruteforce(q, data, np.arange(800), 7)
            assert set(ids) == set(expect_ids)

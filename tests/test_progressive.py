"""Progressive kNN: parity oracle, early stopping, calibration, knobs.

The contracts under test (see :mod:`repro.core.progressive`):

* **Parity oracle** — a progressive run with stopping disabled is
  bit-identical to :meth:`~repro.core.ClimberIndex.knn` in its final
  update: same ids, same distance bits, same stats fields (bar
  ``wall_seconds``) and same logical DFS counters, across partition
  formats and worker counts.
* **Early stopping is safe** — the rule never fires before ``k`` answers
  are in hand, forgone coverage is recorded honestly, and a stopped
  answer is still a complete (ordered, deduplicated) answer set.
* **Calibration** — the offline curve is monotone, persists as JSON,
  round-trips through :meth:`~repro.core.ClimberIndex.attach_calibration`,
  and drives ``early_stop="confidence"``.
* **Knob grammar** — explicit arg → config → ``CLIMBER_EARLY_STOP`` env →
  off, with malformed specs rejected eagerly.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core import (
    ClimberConfig,
    ClimberIndex,
    ProgressiveCalibration,
    StopRule,
    parse_early_stop,
    resolve_stop_rule,
)
from repro.core.config import EARLY_STOP_ENV, ON_PARTITION_FAILURE_ENV
from repro.core.index import QueryStats
from repro.evaluation import calibrate_early_stop
from repro.exceptions import ConfigurationError
from repro.resilience import (
    FAULT_ENV_BITFLIP_RATE,
    FAULT_ENV_LOSS_RATE,
    FAULT_ENV_RATE,
    FAULT_ENV_SEED,
    FAULT_ENV_STRAGGLER_RATE,
    FaultPlan,
    RetryPolicy,
)
from repro.series import SeriesDataset

#: Oracles compare explicit twin builds, so ambient CI chaos and the
#: CI-armed ``CLIMBER_EARLY_STOP`` are both scrubbed.
_SCRUB_ENV = (
    FAULT_ENV_SEED, FAULT_ENV_RATE, FAULT_ENV_LOSS_RATE,
    FAULT_ENV_BITFLIP_RATE, FAULT_ENV_STRAGGLER_RATE,
    ON_PARTITION_FAILURE_ENV, EARLY_STOP_ENV,
)

#: QueryStats fields the parity oracle pins exactly (everything except
#: the wall clock).
_PINNED_FIELDS = (
    "variant", "k", "best_od", "group_ids", "path_len", "gn_size",
    "n_selected_nodes", "partitions_loaded", "data_bytes",
    "records_examined", "expanded_within_partition", "sim_seconds",
    "partitions_failed", "partitions_forgone",
)


@pytest.fixture(autouse=True)
def _scrub_env(monkeypatch):
    for var in _SCRUB_ENV:
        monkeypatch.delenv(var, raising=False)


def _dataset(n=800, length=32, seed=17):
    rng = np.random.default_rng(seed)
    return SeriesDataset(rng.standard_normal((n, length)))


def _config(**overrides):
    base = dict(
        word_length=8,
        n_pivots=16,
        prefix_length=4,
        capacity=64,
        sample_fraction=0.5,
        seed=5,
        n_input_partitions=4,
    )
    base.update(overrides)
    return ClimberConfig(**base)


def _queries(n=12, length=32, seed=23):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, length))


def _assert_final_matches(final, ref) -> None:
    assert final.done
    assert not final.stopped_early
    assert np.array_equal(final.ids, ref.ids)
    assert np.array_equal(final.distances, ref.distances)
    for field in _PINNED_FIELDS:
        assert getattr(final.stats, field) == getattr(ref.stats, field), field


# ---------------------------------------------------------------------------
# Knob grammar
# ---------------------------------------------------------------------------

class TestKnobGrammar:
    @pytest.mark.parametrize("spec,expected", [
        ("off", ("off", None)),
        ("OFF", ("off", None)),
        ("confidence", ("confidence", None)),
        ("confidence:0.95", ("confidence", 0.95)),
        ("streak:3", ("streak", 3)),
        (4, ("streak", 4)),
    ])
    def test_parse_accepts(self, spec, expected):
        assert parse_early_stop(spec) == expected

    @pytest.mark.parametrize("spec", [
        "", "maybe", "confidence:2", "confidence:nope", "streak:0",
        "streak:x", 0, -1, True, None, 1.5,
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ConfigurationError):
            parse_early_stop(spec)

    def test_config_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            _config(early_stop="bogus")
        with pytest.raises(ConfigurationError):
            _config(early_stop_confidence=1.5)
        assert _config(early_stop="streak:2").early_stop == "streak:2"

    def test_resolution_chain(self, monkeypatch):
        # off everywhere -> off
        assert _config().effective_early_stop == "off"
        # env fallback
        monkeypatch.setenv(EARLY_STOP_ENV, "streak:3")
        assert _config().effective_early_stop == "streak:3"
        # explicit config wins over env
        assert _config(early_stop="off").effective_early_stop == "off"
        # malformed env rejected at resolution time
        monkeypatch.setenv(EARLY_STOP_ENV, "nonsense")
        with pytest.raises(ConfigurationError):
            _config().effective_early_stop

    def test_resolve_stop_rule_modes(self):
        assert resolve_stop_rule("off", 0.9, None) is None
        rule = resolve_stop_rule("streak:2", 0.9, None)
        assert rule == StopRule(streak=2, kind="streak")
        # confidence without calibration uses the conservative prior:
        # 1 - 0.5**s >= 0.9 first at s=4.
        rule = resolve_stop_rule("confidence", 0.9, None)
        assert rule.kind == "confidence" and rule.streak == 4
        rule = resolve_stop_rule("confidence:0.99", 0.9, None)
        assert rule.streak == 7

    def test_stop_rule_requires_k_in_hand(self):
        rule = StopRule(streak=1)
        assert not rule.should_stop(False, 5, 5)
        assert rule.should_stop(True, 1, 1)


# ---------------------------------------------------------------------------
# Parity oracle
# ---------------------------------------------------------------------------

class TestParityOracle:
    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_progressive_off_matches_knn(self, fmt, n_workers):
        dataset = _dataset()
        queries = _queries()
        cfg = _config(partition_format=fmt, n_workers=n_workers)
        reference = ClimberIndex.build(dataset, cfg)
        progressive = ClimberIndex.build(dataset, cfg)
        for variant in ("knn", "adaptive", "od-smallest"):
            for q in queries:
                ref = reference.knn(q, 10, variant=variant)
                final = list(progressive.knn_progressive(
                    q, 10, variant=variant, early_stop="off"
                ))[-1]
                _assert_final_matches(final, ref)
        ref_c = dataclasses.asdict(reference.dfs.counters)
        prog_c = dataclasses.asdict(progressive.dfs.counters)
        for key in ("partitions_read", "bytes_read", "partitions_written",
                    "bytes_written"):
            assert ref_c[key] == prog_c[key], key

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_batch_progressive_off_matches_knn_batch(self, fmt, n_workers):
        dataset = _dataset()
        queries = _queries(16)
        cfg = _config(partition_format=fmt, n_workers=n_workers)
        reference = ClimberIndex.build(dataset, cfg)
        progressive = ClimberIndex.build(dataset, cfg)
        refs = reference.knn_batch(queries, 10)
        finals = progressive.knn_batch_progressive(
            queries, 10, early_stop="off"
        )
        assert len(refs) == len(finals)
        for ref, final in zip(refs, finals):
            _assert_final_matches(final, ref)
        assert (reference.dfs.counters.partitions_read
                == progressive.dfs.counters.partitions_read)
        assert (reference.dfs.counters.bytes_read
                == progressive.dfs.counters.bytes_read)

    def test_progressive_consumes_same_rng_stream(self):
        """Interleaving knn and progressive calls on one index stays on
        the serial RNG stream: answers equal a knn-only twin's."""
        dataset = _dataset()
        queries = _queries(8)
        reference = ClimberIndex.build(dataset, _config())
        mixed = ClimberIndex.build(dataset, _config())
        refs = [reference.knn(q, 5) for q in queries]
        outs = []
        for i, q in enumerate(queries):
            if i % 2:
                outs.append(mixed.knn(q, 5))
            else:
                outs.append(list(mixed.knn_progressive(
                    q, 5, early_stop="off"
                ))[-1])
        for ref, out in zip(refs, outs):
            assert np.array_equal(ref.ids, out.ids)
            assert np.array_equal(ref.distances, out.distances)


# ---------------------------------------------------------------------------
# Update stream semantics
# ---------------------------------------------------------------------------

class TestUpdateStream:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_one_update_per_partition_plus_final(self, index):
        updates = list(index.knn_progressive(
            _queries(1)[0], 10, variant="od-smallest", early_stop="off"
        ))
        final = updates[-1]
        steps = updates[:-1]
        assert final.done and all(not u.done for u in steps)
        assert len(steps) == final.partitions_planned
        assert [u.partitions_visited for u in steps] == list(
            range(1, len(steps) + 1)
        )
        assert final.partitions_visited == final.partitions_planned
        assert final.visited_fraction == 1.0
        assert final.partitions_forgone == ()

    def test_kth_distance_monotone_and_stability_bounded(self, index):
        updates = list(index.knn_progressive(
            _queries(1)[0], 10, variant="od-smallest", early_stop="off"
        ))
        steps = [u for u in updates if not u.done]
        kths = [u.kth_distance for u in steps]
        assert all(b <= a for a, b in zip(kths, kths[1:]))
        for u in steps:
            assert 0.0 <= u.stability < 1.0
            assert u.stable_steps <= u.partitions_visited
            assert u.improvement >= 0.0

    def test_intermediate_answers_are_exact_over_seen(self, index):
        """Every intermediate top-k is sorted by (distance, id) and free
        of duplicate ids."""
        for u in index.knn_progressive(
            _queries(2)[1], 5, variant="od-smallest", early_stop="off"
        ):
            assert len(set(u.ids.tolist())) == u.ids.shape[0]
            order = np.lexsort((u.ids, u.distances))
            assert np.array_equal(order, np.arange(u.ids.shape[0]))

    def test_generator_is_lazy_after_eager_routing(self, index):
        """Abandoning the walk early reads fewer partitions than full
        coverage."""
        before = index.dfs.counters.partitions_read
        walk = index.knn_progressive(
            _queries(3)[2], 10, variant="od-smallest", early_stop="off"
        )
        first = next(walk)
        assert first.partitions_visited == 1
        walk.close()
        read = index.dfs.counters.partitions_read - before
        assert read < first.partitions_planned or first.partitions_planned <= 1


# ---------------------------------------------------------------------------
# Early stopping
# ---------------------------------------------------------------------------

class TestEarlyStopping:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_streak_rule_stops_and_records_forgone(self, index):
        stopped = None
        for q in _queries(16, seed=41):
            final = list(index.knn_progressive(
                q, 10, variant="od-smallest", early_stop="streak:1"
            ))[-1]
            assert final.done
            if final.stopped_early:
                stopped = final
                break
        assert stopped is not None, "streak:1 never fired on any query"
        assert stopped.partitions_visited < stopped.partitions_planned
        assert len(stopped.partitions_forgone) == (
            stopped.partitions_planned - stopped.partitions_visited
        )
        assert stopped.stats.partitions_forgone == stopped.partitions_forgone
        # Forgone coverage is honest: visit_coverage drops, but coverage
        # (failures only) stays complete.
        assert stopped.stats.visit_coverage < 1.0
        assert stopped.stats.coverage == 1.0
        assert stopped.ids.shape[0] == 10

    def test_stopped_answer_is_prefix_consistent(self, index):
        """A stopped answer equals the full-coverage answer restricted to
        the partitions actually visited."""
        q = _queries(16, seed=41)[0]
        final = list(index.knn_progressive(
            q, 10, variant="od-smallest", early_stop="streak:1"
        ))[-1]
        full = list(index.knn_progressive(
            q, 10, variant="od-smallest", early_stop="off"
        ))[-1]
        if not final.stopped_early:
            assert np.array_equal(final.ids, full.ids)
        else:
            # With fewer candidates seen, distances can only be >= at
            # each rank.
            n = min(final.ids.shape[0], full.ids.shape[0])
            assert np.all(final.distances[:n] >= full.distances[:n] - 1e-12)

    def test_never_stops_before_k_in_hand(self):
        small = SeriesDataset(
            np.random.default_rng(3).standard_normal((12, 32))
        )
        index = ClimberIndex.build(small, _config(
            n_pivots=8, prefix_length=3, capacity=8, sample_fraction=1.0,
            n_input_partitions=1,
        ))
        final = list(index.knn_progressive(
            small.values[0], 50, early_stop="streak:1"
        ))[-1]
        assert not final.stopped_early
        assert final.visited_fraction == 1.0
        assert final.ids.shape[0] == min(12, final.stats.records_examined)
        assert final.stats.coverage == 1.0

    def test_env_fallback_arms_stopping(self, monkeypatch, index):
        monkeypatch.setenv(EARLY_STOP_ENV, "streak:1")
        finals = [
            list(index.knn_progressive(q, 10, variant="od-smallest"))[-1]
            for q in _queries(16, seed=41)
        ]
        assert any(f.stopped_early for f in finals)
        monkeypatch.delenv(EARLY_STOP_ENV)
        finals = [
            list(index.knn_progressive(q, 10, variant="od-smallest"))[-1]
            for q in _queries(16, seed=41)
        ]
        assert not any(f.stopped_early for f in finals)

    def test_explicit_off_beats_env(self, monkeypatch, index):
        monkeypatch.setenv(EARLY_STOP_ENV, "streak:1")
        for q in _queries(6, seed=41):
            final = list(index.knn_progressive(
                q, 10, variant="od-smallest", early_stop="off"
            ))[-1]
            assert not final.stopped_early


# ---------------------------------------------------------------------------
# Degraded-mode composition
# ---------------------------------------------------------------------------

class TestDegradedProgressive:
    def test_skip_mode_parity_with_knn_under_loss(self):
        dataset = _dataset()
        queries = _queries(10)
        plan = FaultPlan(seed=1234, loss_rate=0.3)
        cfg = _config(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            on_partition_failure="skip",
        )
        reference = ClimberIndex.build(dataset, cfg)
        progressive = ClimberIndex.build(dataset, cfg)
        degraded = 0
        for q in queries:
            ref = reference.knn(q, 10, variant="od-smallest")
            final = list(progressive.knn_progressive(
                q, 10, variant="od-smallest", early_stop="off"
            ))[-1]
            _assert_final_matches(final, ref)
            degraded += bool(final.stats.degraded)
        assert degraded > 0, "loss_rate=0.3 produced no degraded queries"

    def test_failed_partition_counts_as_stable_step(self):
        dataset = _dataset()
        plan = FaultPlan(seed=1234, loss_rate=0.3)
        index = ClimberIndex.build(dataset, _config(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            on_partition_failure="skip",
        ))
        for q in _queries(10):
            updates = list(index.knn_progressive(
                q, 10, variant="od-smallest", early_stop="off"
            ))
            final = updates[-1]
            if not final.stats.partitions_failed:
                continue
            # Steps that failed leave the answer unchanged, so every
            # update's streak accounting stays consistent.
            for prev, cur in zip(updates, updates[1:]):
                if cur.done:
                    break
                assert cur.stable_steps in (0, prev.stable_steps + 1)
            return
        pytest.fail("no query hit a lost partition")


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------

class TestCalibration:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_curve_monotone_and_persisted(self, index, tmp_path_factory):
        path = tmp_path_factory.mktemp("cal") / "calibration.json"
        cal = calibrate_early_stop(
            index, _queries(20, seed=77), k=10, variant="od-smallest",
            max_streak=6, path=path,
        )
        fracs = [frac for _, frac in cal.curve]
        assert all(b >= a for a, b in zip(fracs, fracs[1:]))
        assert all(0.0 <= f <= 1.0 for f in fracs)
        assert cal.source == "calibrated"
        assert cal.n_queries == 20
        # JSON round-trip through the file
        loaded = ProgressiveCalibration.load(path)
        assert loaded == cal
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.progressive-calibration/v1"

    def test_attach_and_confidence_mode(self, index, tmp_path):
        path = tmp_path / "calibration.json"
        cal = calibrate_early_stop(
            index, _queries(20, seed=77), k=10, variant="od-smallest",
            max_streak=6, path=path,
        )
        index.attach_calibration(path)
        assert index.calibration == cal
        # The resolved streak comes from the measured curve.
        rule = resolve_stop_rule("confidence:0.9", 0.9, index.calibration)
        assert rule.streak == cal.threshold_for(0.9)
        finals = [
            list(index.knn_progressive(
                q, 10, variant="od-smallest", early_stop="confidence:0.9"
            ))[-1]
            for q in _queries(16, seed=41)
        ]
        assert all(f.done for f in finals)
        index.attach_calibration(None)
        assert index.calibration is None

    def test_unachievable_confidence_disables_stopping(self):
        cal = ProgressiveCalibration(curve=((1, 0.2), (2, 0.4)))
        assert cal.threshold_for(0.99) == 3  # max_streak + 1

    def test_prior_thresholds(self):
        prior = ProgressiveCalibration.prior()
        assert prior.threshold_for(0.9) == 4
        assert prior.threshold_for(0.99) == 7

    def test_calibration_validates(self):
        with pytest.raises(ConfigurationError):
            ProgressiveCalibration(curve=())
        with pytest.raises(ConfigurationError):
            ProgressiveCalibration(curve=((2, 0.5), (1, 0.7)))
        with pytest.raises(ConfigurationError):
            ProgressiveCalibration(curve=((1, 1.5),))
        with pytest.raises(ConfigurationError):
            calibrate_early_stop(object(), np.empty((0, 8)), k=5)

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ProgressiveCalibration.from_json(
                json.dumps({"schema": "bogus/v9", "curve": [[1, 0.5]]})
            )


# ---------------------------------------------------------------------------
# Explain + telemetry integration
# ---------------------------------------------------------------------------

class TestProgressiveObservability:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config(telemetry=True))

    def test_explain_progressive_entry(self, index):
        entry = index.explain_query(
            _queries(1)[0], 5, variant="od-smallest", early_stop="streak:2"
        )
        assert entry["mode"] == "knn_progressive"
        prog = entry["progressive"]
        assert prog["partitions_planned"] >= prog["partitions_visited"] >= 1
        assert len(prog["steps"]) == prog["partitions_visited"]
        assert prog["stopped_early"] == (
            prog["partitions_visited"] < prog["partitions_planned"]
        )
        assert len(prog["partitions_forgone"]) == (
            prog["partitions_planned"] - prog["partitions_visited"]
        )
        json.dumps(entry)

    def test_explain_batch_progressive_totals(self, index):
        out = index.explain_query(_queries(4), 5, progressive=True)
        assert out["mode"] == "knn_batch_progressive"
        assert out["batch_size"] == 4
        assert out["shared_stages"] == []
        for entry in out["queries"]:
            assert "progressive" in entry
        totals = out["totals"]
        assert totals["coverage"] == 1.0
        assert totals["partitions_probed"] == sum(
            e["partitions_probed"] for e in out["queries"]
        )
        json.dumps(out)

    def test_progressive_counters_recorded(self, index):
        index.reset_stats()
        finals = [
            list(index.knn_progressive(
                q, 10, variant="od-smallest", early_stop="streak:1"
            ))[-1]
            for q in _queries(16, seed=41)
        ]
        counters = index.stats()["metrics"]["counters"]
        assert counters["query.progressive.count"] == 16
        assert counters["query.progressive.partitions_visited"] == sum(
            f.partitions_visited for f in finals
        )
        expected_stops = sum(f.stopped_early for f in finals)
        assert expected_stops > 0
        assert counters["query.progressive.early_stops"] == expected_stops
        assert counters["query.progressive.partitions_forgone"] == sum(
            len(f.partitions_forgone) for f in finals
        )
        # The shared query.* surface records progressive queries too.
        assert counters["query.count"] == 16


# ---------------------------------------------------------------------------
# Validation edges
# ---------------------------------------------------------------------------

class TestValidation:
    @pytest.fixture(scope="class")
    def index(self):
        return ClimberIndex.build(_dataset(), _config())

    def test_bad_args_raise_eagerly(self, index):
        q = _queries(1)[0]
        with pytest.raises(ConfigurationError):
            index.knn_progressive(q, 0)
        with pytest.raises(ConfigurationError):
            index.knn_progressive(q, 5, variant="nope")
        with pytest.raises(ConfigurationError):
            index.knn_progressive(q, 5, early_stop="bogus")
        with pytest.raises(ConfigurationError):
            index.knn_progressive(q, 5, early_stop="confidence",
                                  confidence=1.5)

    def test_empty_batch(self, index):
        assert index.knn_batch_progressive(
            np.empty((0, 32)), 5, early_stop="off"
        ) == []

    def test_query_stats_zero_wanted_coverage(self):
        """Satellite regression: empty wanted set -> coverage 1.0, not a
        ZeroDivisionError."""
        stats = QueryStats(
            variant="knn", k=3, best_od=0, group_ids=(), path_len=0,
            gn_size=0.0, n_selected_nodes=0, partitions_loaded=(),
            data_bytes=0, records_examined=0,
            expanded_within_partition=False, sim_seconds=0.0,
            wall_seconds=0.0,
        )
        assert stats.coverage == 1.0
        assert stats.visit_coverage == 1.0
        assert not stats.degraded

    def test_visit_coverage_counts_forgone(self):
        stats = QueryStats(
            variant="knn", k=3, best_od=0, group_ids=(), path_len=0,
            gn_size=0.0, n_selected_nodes=1,
            partitions_loaded=("p0", "p1"), data_bytes=1,
            records_examined=1, expanded_within_partition=False,
            sim_seconds=0.0, wall_seconds=0.0,
            partitions_forgone=("p2", "p3"),
        )
        assert stats.coverage == 1.0
        assert stats.visit_coverage == 0.5

    def test_explain_totals_zero_wanted_guard(self):
        """The aggregate coverage guards its denominator."""
        entries = [{
            "partitions_probed": 0, "partitions": [], "bytes_read": 0,
            "records_examined": 0, "cache": {"hits": 0, "misses": 0},
            "wall_seconds": 0.0, "degraded": False, "partitions_failed": [],
        }]
        totals = ClimberIndex._explain_totals(entries)
        assert totals["coverage"] == 1.0

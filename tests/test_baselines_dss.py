"""Tests for the Dss exact-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DssScanner
from repro.datasets import random_walk_dataset
from repro.exceptions import ConfigurationError
from repro.series import knn_bruteforce


@pytest.fixture(scope="module")
def scan_setup():
    ds = random_walk_dataset(1200, 32, seed=4)
    return ds, DssScanner.build(ds, n_partitions=8)


class TestDss:
    def test_exactness(self, scan_setup):
        """Dss is the ground truth: it must equal brute force everywhere."""
        ds, dss = scan_setup
        for i in (0, 50, 333, 1199):
            expect_ids, expect_d = knn_bruteforce(ds.values[i], ds.values, ds.ids, 10)
            res = dss.knn(ds.values[i], 10)
            np.testing.assert_array_equal(res.ids, expect_ids)
            np.testing.assert_allclose(res.distances, expect_d, atol=1e-9)

    def test_scans_every_partition(self, scan_setup):
        ds, dss = scan_setup
        res = dss.knn(ds.values[0], 5)
        assert res.stats.n_partitions == 8
        assert res.stats.records_examined == 1200

    def test_no_index_construction(self, scan_setup):
        _, dss = scan_setup
        assert dss.build_sim_seconds == 0.0

    def test_sim_time_scales_with_data(self):
        small_ds = random_walk_dataset(500, 32, seed=1)
        big_ds = random_walk_dataset(500, 32, seed=1)
        small = DssScanner.build(small_ds, n_partitions=4, cost_scale=1.0)
        big = DssScanner.build(big_ds, n_partitions=4, cost_scale=100.0)
        q = small_ds.values[0]
        assert big.knn(q, 5).stats.sim_seconds > small.knn(q, 5).stats.sim_seconds

    def test_rejects_bad_inputs(self, scan_setup):
        ds, dss = scan_setup
        with pytest.raises(ConfigurationError):
            dss.knn(ds.values[0], 0)
        with pytest.raises(ConfigurationError):
            DssScanner.build(ds, n_partitions=0)

    def test_k_exceeding_dataset(self, scan_setup):
        ds, dss = scan_setup
        res = dss.knn(ds.values[0], 5000)
        assert len(res.ids) == 1200

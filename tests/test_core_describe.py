"""Tests for ClimberIndex.describe()."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def index(built_index):
    # describe() is read-only: ride the shared session-scoped index.
    return built_index


class TestDescribe:
    def test_keys(self, index):
        info = index.describe()
        assert {
            "records", "groups", "partitions", "trie_nodes",
            "global_index_bytes", "mean_partition_records",
            "max_partition_records",
        } <= set(info)

    def test_consistency_with_properties(self, index):
        info = index.describe()
        assert info["records"] == index.n_records
        assert info["groups"] == index.n_groups
        assert info["partitions"] == index.n_partitions
        assert info["global_index_bytes"] == index.global_index_nbytes

    def test_partition_stats_plausible(self, index):
        info = index.describe()
        assert 0 < info["mean_partition_records"] <= info["max_partition_records"]
        assert info["partitions_written"] <= info["partitions"]

    def test_record_conservation(self, index):
        info = index.describe()
        assert (
            info["mean_partition_records"] * info["partitions_written"]
            == pytest.approx(info["records"], rel=1e-9)
        )

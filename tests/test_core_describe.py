"""Tests for ClimberIndex.describe()."""

from __future__ import annotations

import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset


@pytest.fixture(scope="module")
def index():
    ds = random_walk_dataset(1200, 32, seed=8)
    cfg = ClimberConfig(word_length=8, n_pivots=24, prefix_length=5,
                        capacity=150, sample_fraction=0.3,
                        n_input_partitions=8, seed=2)
    return ClimberIndex.build(ds, cfg)


class TestDescribe:
    def test_keys(self, index):
        info = index.describe()
        assert {
            "records", "groups", "partitions", "trie_nodes",
            "global_index_bytes", "mean_partition_records",
            "max_partition_records",
        } <= set(info)

    def test_consistency_with_properties(self, index):
        info = index.describe()
        assert info["records"] == index.n_records
        assert info["groups"] == index.n_groups
        assert info["partitions"] == index.n_partitions
        assert info["global_index_bytes"] == index.global_index_nbytes

    def test_partition_stats_plausible(self, index):
        info = index.describe()
        assert 0 < info["mean_partition_records"] <= info["max_partition_records"]
        assert info["partitions_written"] <= info["partitions"]

    def test_record_conservation(self, index):
        info = index.describe()
        assert (
            info["mean_partition_records"] * info["partitions_written"]
            == pytest.approx(info["records"], rel=1e-9)
        )

"""Parity tests: the vectorised routing engine vs the seed scalar path.

The acceptance bar of the routing refactor is *exact* equivalence with
the scalar implementation it replaced — identical candidate lists
(groups, OD, bit-identical WD), identical primary selection including
the seeded random tie-break stream, and identical kNN answers for all
three query variants, across several datasets and seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.core.routing import (
    RoutingTable,
    scalar_group_candidates,
    scalar_select_primary,
    select_primary,
)
from repro.datasets import random_walk_dataset


def build_index(seed: int, count: int = 1800, **overrides):
    params = dict(word_length=8, n_pivots=32, prefix_length=6, capacity=120,
                  sample_fraction=0.25, n_input_partitions=12, seed=seed)
    params.update(overrides)
    cfg = ClimberConfig(**params)
    ds = random_walk_dataset(count, 48, seed=seed + 100)
    return ds, ClimberIndex.build(ds, cfg)


def scalar_twin(index: ClimberIndex) -> ClimberIndex:
    """A second index over the same artifacts, patched to the scalar path.

    Both twins start with a fresh tie-break RNG at the same seed, so any
    divergence in RNG *consumption* between the paths shows up as a
    divergence in results.
    """
    twin = ClimberIndex(index._art, index.config, index.model)
    twin.group_candidates = (
        lambda sig, od_slack=0: scalar_group_candidates(twin, sig, od_slack)
    )
    twin.select_primary = lambda cands: scalar_select_primary(cands, twin._rng)
    return twin


class TestCandidateParity:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_group_candidates_match_scalar(self, seed):
        ds, idx = build_index(seed)
        for i in range(0, ds.count, 131):
            sig = idx.query_signature(ds.values[i])
            for slack in (0, 1, 2):
                fast = idx.group_candidates(sig, od_slack=slack)
                ref = scalar_group_candidates(idx, sig, od_slack=slack)
                assert [c.entry.group_id for c in fast] == [
                    c.entry.group_id for c in ref
                ]
                assert [c.od for c in fast] == [c.od for c in ref]
                # WD must match bit-for-bit, not approximately: the sort
                # order (OD, WD, id) depends on exact float values.
                assert [c.wd for c in fast] == [c.wd for c in ref]
                assert [
                    tuple(n.path for n in c.path) for c in fast
                ] == [tuple(n.path for n in c.path) for c in ref]

    def test_fallback_query_routes_to_group_zero(self):
        _, idx = build_index(1)
        m = idx.config.prefix_length
        # A signature overlapping no centroid must fall back to G0 in both.
        pivots_used = set()
        for g in idx.skeleton.groups[1:]:
            pivots_used |= set(g.centroid)
        unused = [p for p in range(idx.config.n_pivots) if p not in pivots_used]
        if len(unused) < m:
            pytest.skip("every pivot appears in some centroid for this build")
        sig = np.array(unused[:m], dtype=np.int64)
        fast = idx.group_candidates(sig)
        ref = scalar_group_candidates(idx, sig)
        assert len(fast) == len(ref) == 1
        assert fast[0].entry.group_id == ref[0].entry.group_id == 0
        assert fast[0].od == ref[0].od == m

    def test_select_primary_is_the_seed_cascade(self):
        # The tie-break cascade was deliberately NOT replaced: it runs on
        # the tiny candidate lists the matrices produce.  The reference
        # name must stay an alias so bench/test comparisons stay honest.
        assert scalar_select_primary is select_primary

    @pytest.mark.parametrize("seed", [2, 5])
    def test_select_primary_on_vectorised_candidates(self, seed):
        ds, idx = build_index(seed)
        rng = np.random.default_rng(999)
        for i in range(0, ds.count, 83):
            sig = idx.query_signature(ds.values[i])
            cands = idx.group_candidates(sig, od_slack=1)
            primary = select_primary(cands, rng)
            assert primary.od == min(c.od for c in cands)
            best_wd = min(c.wd for c in cands if c.od == primary.od)
            assert primary.wd <= best_wd + 1e-12

    def test_distance_matrices_match_scalar_metrics(self):
        ds, idx = build_index(4)
        table: RoutingTable = idx.routing
        sigs = np.vstack(
            [idx.query_signature(ds.values[i]) for i in range(0, 60, 7)]
        )
        od, wd = table.distance_matrices(sigs)
        assert od.shape == wd.shape == (sigs.shape[0], idx.n_groups)
        for row, sig in enumerate(sigs):
            ref = scalar_group_candidates(idx, sig, od_slack=idx.config.prefix_length)
            for cand in ref:
                gid = cand.entry.group_id
                assert od[row, gid] == cand.od
                assert wd[row, gid] == cand.wd


class TestKnnParity:
    @pytest.mark.parametrize("variant", ["knn", "adaptive", "od-smallest"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_knn_matches_scalar_path(self, variant, seed):
        ds, built = build_index(seed)
        fast = ClimberIndex(built._art, built.config, built.model)
        ref = scalar_twin(built)
        for i in range(0, ds.count, 157):
            a = fast.knn(ds.values[i], 12, variant=variant)
            b = ref.knn(ds.values[i], 12, variant=variant)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.stats.group_ids == b.stats.group_ids
            assert a.stats.best_od == b.stats.best_od
            assert a.stats.partitions_loaded == b.stats.partitions_loaded
            assert a.stats.sim_seconds == b.stats.sim_seconds

    def test_knn_parity_with_deltas(self):
        ds, built = build_index(11, count=1400)
        extra = random_walk_dataset(300, 48, seed=500)
        built.append(extra)
        fast = ClimberIndex(built._art, built.config, built.model)
        ref = scalar_twin(built)
        for i in (0, 50, 600):
            a = fast.knn(ds.values[i], 8, variant="adaptive")
            b = ref.knn(ds.values[i], 8, variant="adaptive")
            np.testing.assert_array_equal(a.ids, b.ids)
            assert a.stats.partitions_loaded == b.stats.partitions_loaded


class TestBatchEquivalence:
    @pytest.mark.parametrize("variant", ["knn", "adaptive", "od-smallest"])
    def test_batch_equals_loop(self, variant):
        ds, built = build_index(6)
        loop_idx = ClimberIndex(built._art, built.config, built.model)
        batch_idx = ClimberIndex(built._art, built.config, built.model)
        queries = ds.values[:24]
        batch = batch_idx.knn_batch(queries, 7, variant=variant)
        assert len(batch) == queries.shape[0]
        for i, res in enumerate(batch):
            single = loop_idx.knn(queries[i], 7, variant=variant)
            np.testing.assert_array_equal(res.ids, single.ids)
            np.testing.assert_array_equal(res.distances, single.distances)
            assert res.stats.group_ids == single.stats.group_ids
            assert res.stats.partitions_loaded == single.stats.partitions_loaded
            assert res.stats.data_bytes == single.stats.data_bytes
            assert res.stats.sim_seconds == single.stats.sim_seconds

    def test_batch_shares_transform_work(self):
        """The batch path computes one signature matrix, not q of them."""
        ds, built = build_index(8)
        calls = []
        orig = ClimberIndex.query_signature
        built.query_signature = lambda q: (
            calls.append(1) or orig(built, q)
        )
        built.knn_batch(ds.values[:5], 3, variant="knn")
        assert calls == []  # per-query signature path never taken

    def test_batch_single_row_input(self):
        ds, built = build_index(8)
        out = built.knn_batch(ds.values[0], 3)
        assert len(out) == 1
        assert len(out[0].ids) == 3

    def test_batch_empty_input(self):
        ds, built = build_index(8)
        assert built.knn_batch(np.empty((0, ds.length)), 3) == []

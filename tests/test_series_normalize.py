"""Tests for z-normalisation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.series import is_znormalized, znormalize


class TestZnormalize:
    def test_mean_zero_std_one(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(20, 50))
        z = znormalize(x)
        np.testing.assert_allclose(z.mean(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=1), 1.0, atol=1e-12)

    def test_constant_series_becomes_zeros(self):
        z = znormalize(np.full((2, 10), 7.0))
        np.testing.assert_array_equal(z, np.zeros((2, 10)))

    def test_mixed_constant_and_varying_rows(self):
        x = np.vstack([np.full(10, 3.0), np.arange(10.0)])
        z = znormalize(x)
        np.testing.assert_array_equal(z[0], 0.0)
        assert abs(z[1].std() - 1.0) < 1e-12

    def test_does_not_mutate_input(self):
        x = np.arange(10.0).reshape(1, 10)
        before = x.copy()
        znormalize(x)
        np.testing.assert_array_equal(x, before)

    def test_idempotent(self, rng):
        x = rng.normal(size=(5, 30))
        once = znormalize(x)
        twice = znormalize(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_scale_and_shift_invariance(self, rng):
        x = rng.normal(size=(5, 30))
        shifted = 4.0 * x + 11.0
        np.testing.assert_allclose(znormalize(x), znormalize(shifted), atol=1e-9)


class TestIsZnormalized:
    def test_accepts_normalized(self, rng):
        assert is_znormalized(znormalize(rng.normal(size=(5, 40))))

    def test_rejects_unnormalized(self):
        assert not is_znormalized(np.arange(10.0) + 100)

    def test_accepts_flat_zero_rows(self):
        assert is_znormalized(np.zeros((3, 10)))


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 8), st.integers(2, 40)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_znormalize_always_valid(x):
    """Property: output of znormalize always passes is_znormalized."""
    assert is_znormalized(znormalize(x), atol=1e-5)

"""Tests for partition files, the simulated DFS, and binary codecs."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.exceptions import PartitionNotFoundError, StorageError
from repro.storage import (
    PartitionFile,
    SimulatedDFS,
    array_from_bytes,
    array_to_bytes,
)
from repro.storage.serialization import read_blob, write_blob


def make_partition(pid="p0", n_clusters=3, per_cluster=5, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


class TestSerialization:
    def test_blob_roundtrip(self):
        buf = io.BytesIO()
        write_blob(buf, b"hello")
        write_blob(buf, b"")
        buf.seek(0)
        assert read_blob(buf) == b"hello"
        assert read_blob(buf) == b""

    def test_truncated_blob_raises(self):
        buf = io.BytesIO()
        write_blob(buf, b"hello")
        data = buf.getvalue()[:-2]
        with pytest.raises(StorageError):
            read_blob(io.BytesIO(data))

    def test_array_roundtrip_dtypes(self):
        for dtype in (np.float64, np.int64, np.uint64, np.int32, np.uint16):
            arr = np.arange(12, dtype=dtype).reshape(3, 4)
            out = array_from_bytes(array_to_bytes(arr))
            np.testing.assert_array_equal(out, arr)
            assert out.dtype == arr.dtype

    def test_array_roundtrip_is_writable_copy(self):
        arr = np.zeros((2, 2))
        out = array_from_bytes(array_to_bytes(arr))
        out[0, 0] = 1.0  # must not raise

    def test_rejects_object_dtype(self):
        import json

        from repro.storage.serialization import json_to_bytes

        # Craft a payload claiming an unsupported dtype.
        buf = io.BytesIO()
        write_blob(buf, json.dumps({"dtype": "object", "shape": [1]}).encode())
        write_blob(buf, b"\x00" * 8)
        with pytest.raises(StorageError):
            array_from_bytes(buf.getvalue())


class TestPartitionFile:
    def test_cluster_layout_contiguous_and_sorted(self):
        part = make_partition(n_clusters=3, per_cluster=4)
        offsets = [part.header[k][0] for k in sorted(part.header)]
        assert offsets == [0, 4, 8]
        assert part.record_count == 12

    def test_read_cluster_returns_exact_records(self):
        rng = np.random.default_rng(1)
        ids_a = np.array([10, 11])
        vals_a = rng.normal(size=(2, 4))
        ids_b = np.array([20])
        vals_b = rng.normal(size=(1, 4))
        part = PartitionFile.from_clusters(
            "p", {"b": (ids_b, vals_b), "a": (ids_a, vals_a)}
        )
        got_ids, got_vals = part.read_cluster("a")
        np.testing.assert_array_equal(got_ids, ids_a)
        np.testing.assert_allclose(got_vals, vals_a)

    def test_read_missing_cluster(self):
        part = make_partition()
        with pytest.raises(StorageError):
            part.read_cluster("nope")

    def test_read_clusters_concatenates(self):
        part = make_partition(n_clusters=3, per_cluster=2)
        ids, vals = part.read_clusters(["g0/0", "g0/2"])
        assert ids.shape == (4,)
        assert vals.shape == (4, 8)

    def test_read_clusters_empty_keys(self):
        part = make_partition()
        with pytest.raises(StorageError):
            part.read_clusters([])

    def test_read_all(self):
        part = make_partition(n_clusters=2, per_cluster=3)
        ids, vals = part.read_all()
        assert ids.shape == (6,)
        assert vals.shape == (6, 8)

    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            PartitionFile.from_clusters("p", {})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(StorageError):
            PartitionFile.from_clusters(
                "p",
                {"a": (np.array([1]), np.zeros((1, 4))),
                 "b": (np.array([2]), np.zeros((1, 5)))},
            )

    def test_rejects_id_value_mismatch(self):
        with pytest.raises(StorageError):
            PartitionFile.from_clusters(
                "p", {"a": (np.array([1, 2]), np.zeros((1, 4)))}
            )

    def test_nbytes_grows_with_records(self):
        small = make_partition(per_cluster=2)
        big = make_partition(per_cluster=20)
        assert big.nbytes > small.nbytes

    def test_bytes_roundtrip(self):
        part = make_partition(n_clusters=2, per_cluster=3, seed=9)
        out = PartitionFile.from_bytes(part.to_bytes())
        assert out.partition_id == part.partition_id
        assert out.header == part.header
        np.testing.assert_array_equal(out.ids, part.ids)
        np.testing.assert_allclose(out.values, part.values)

    def test_cluster_sizes(self):
        part = make_partition(n_clusters=2, per_cluster=3)
        assert part.cluster_sizes() == {"g0/0": 3, "g0/1": 3}


class TestSimulatedDFS:
    def test_write_read_roundtrip(self):
        dfs = SimulatedDFS()
        part = make_partition("alpha")
        dfs.write_partition(part)
        out = dfs.read_partition("alpha")
        np.testing.assert_array_equal(out.ids, part.ids)

    def test_duplicate_write_rejected(self):
        dfs = SimulatedDFS()
        dfs.write_partition(make_partition("a"))
        with pytest.raises(StorageError):
            dfs.write_partition(make_partition("a"))

    def test_missing_partition(self):
        dfs = SimulatedDFS()
        with pytest.raises(PartitionNotFoundError):
            dfs.read_partition("ghost")
        with pytest.raises(PartitionNotFoundError):
            dfs.partition_nbytes("ghost")

    def test_counters_track_io(self):
        dfs = SimulatedDFS()
        part = make_partition("a")
        dfs.write_partition(part)
        assert dfs.counters.bytes_written == part.nbytes
        assert dfs.counters.partitions_written == 1
        dfs.read_partition("a")
        dfs.read_partition("a")
        assert dfs.counters.partitions_read == 2
        assert dfs.counters.bytes_read == 2 * part.nbytes

    def test_counters_snapshot_is_independent(self):
        dfs = SimulatedDFS()
        dfs.write_partition(make_partition("a"))
        snap = dfs.counters.snapshot()
        dfs.read_partition("a")
        assert snap.partitions_read == 0

    def test_block_records_matches_block_size(self):
        dfs = SimulatedDFS(block_bytes=1024 * 1024)
        c = dfs.block_records(256)
        # 256-point series is 2064 bytes stored.
        assert c == (1024 * 1024) // 2064

    def test_rejects_tiny_block(self):
        with pytest.raises(StorageError):
            SimulatedDFS(block_bytes=10)

    def test_list_and_len(self):
        dfs = SimulatedDFS()
        dfs.write_partition(make_partition("b"))
        dfs.write_partition(make_partition("a"))
        assert dfs.list_partitions() == ["a", "b"]
        assert len(dfs) == 2
        assert dfs.has_partition("a")
        assert not dfs.has_partition("c")

    def test_total_bytes(self):
        dfs = SimulatedDFS()
        p1, p2 = make_partition("a"), make_partition("b", per_cluster=10)
        dfs.write_partition(p1)
        dfs.write_partition(p2)
        assert dfs.total_bytes == p1.nbytes + p2.nbytes

    def test_disk_backed_roundtrip(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path)
        part = make_partition("onDisk", seed=4)
        dfs.write_partition(part)
        assert (tmp_path / "onDisk.part").exists()
        out = dfs.read_partition("onDisk")
        np.testing.assert_allclose(out.values, part.values)

    def test_disk_backed_does_not_keep_in_memory(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path)
        dfs.write_partition(make_partition("x"))
        assert dfs._partitions == {}

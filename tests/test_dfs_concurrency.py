"""The narrowed DFS lock: overlap, single-flight, and schedule determinism.

PR-8 left straggler and retry-backoff sleeps under the one coarse DFS
lock, so concurrent readers convoyed: N threads hitting N distinct slow
partitions paid the *sum* of the injected delays.  The narrowed lock
(this PR) keeps only metadata/cache/counter mutations under the global
lock and runs backend opens + sleeps under per-partition single-flight
guards.  Pinned here:

* reads of *distinct* straggler-injected partitions overlap — wall clock
  well under the sum of injected delays;
* retry-backoff sleeps of distinct partitions overlap the same way;
* reads of the *same* partition stay serialised (single-flight), so the
  fault injector's per-name attempt schedule — and with it every
  seeded-chaos test in the repo — is exactly as deterministic as under
  the coarse lock;
* the logical counters stay arithmetically exact throughout.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.exceptions import TransientReadError
from repro.resilience import FaultPlan, RetryPolicy
from repro.storage import PartitionFile, SimulatedDFS


def make_partition(pid, n_clusters=2, per_cluster=4, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


def _run_threads(fns):
    """Run one thread per fn behind a barrier; return (wall_s, errors)."""
    barrier = threading.Barrier(len(fns) + 1)
    errors = []

    def wrap(fn):
        barrier.wait()
        try:
            fn()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(fn,)) for fn in fns]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=60)
    return time.perf_counter() - t0, errors


class TestStragglerOverlap:
    def test_distinct_partition_stragglers_overlap(self):
        # Every attempt's first read sleeps straggler_delay_s.  Two
        # threads on two distinct partitions used to serialise on the
        # coarse lock (wall ~ sum of delays); with the narrowed lock the
        # sleeps overlap (wall ~ one delay).
        delay = 0.2
        plan = FaultPlan(seed=1, straggler_rate=1.0, straggler_delay_s=delay)
        dfs = SimulatedDFS(fault_plan=plan)
        for i in range(2):
            dfs.write_partition(make_partition(f"p{i}", seed=i))

        wall, errors = _run_threads([
            lambda pid=f"p{i}": dfs.read_partition(pid) for i in range(2)
        ])
        assert not errors
        total_injected = 2 * delay
        assert wall < 0.6 * total_injected, (
            f"straggler sleeps serialised: wall {wall:.3f}s vs "
            f"{total_injected:.3f}s injected"
        )
        c = dfs.counters
        assert c.partitions_read == 2
        assert c.retries == 0

    def test_retry_backoff_overlaps_across_partitions(self):
        # transient_rate=1.0 makes every attempt fail: each read sleeps
        # the full deterministic backoff schedule, then raises.  Distinct
        # partitions must serve their backoffs concurrently.
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.1, jitter=0.5,
                             seed=7)
        plan = FaultPlan(seed=3, transient_rate=1.0)
        dfs = SimulatedDFS(fault_plan=plan, retry_policy=policy)
        for i in range(2):
            dfs.write_partition(make_partition(f"p{i}", seed=i))

        raised = []

        def read(pid):
            try:
                dfs.read_partition(pid)
            except TransientReadError:
                raised.append(pid)

        wall, errors = _run_threads([
            lambda pid=f"p{i}": read(pid) for i in range(2)
        ])
        assert not errors
        assert sorted(raised) == ["p0", "p1"]
        # The injected sleep per partition is exactly the deterministic
        # backoff schedule; the two must overlap, not add up.
        per_name = [
            sum(policy.backoff_delay(dfs.engine.blob_name(f"p{i}"), a)
                for a in (1, 2))
            for i in range(2)
        ]
        assert wall < 0.6 * sum(per_name), (
            f"backoff sleeps serialised: wall {wall:.3f}s vs "
            f"{sum(per_name):.3f}s injected"
        )
        c = dfs.counters
        assert c.retries == 4          # 2 retries per failed read
        assert c.read_failures == 2
        assert c.partitions_read == 0  # only successful reads charge


class TestSingleFlight:
    def test_same_partition_reads_serialise_and_share_cache(self):
        # Single-flight per partition id: with the cache on, a storm of
        # same-partition readers produces exactly one physical open (one
        # miss, one straggler sleep) and N-1 hits — deterministically,
        # because waiters re-probe the cache after the guard.
        delay = 0.15
        plan = FaultPlan(seed=2, straggler_rate=1.0, straggler_delay_s=delay)
        dfs = SimulatedDFS(fault_plan=plan, cache_bytes=1 << 20)
        dfs.write_partition(make_partition("p0"))

        n = 6
        wall, errors = _run_threads(
            [lambda: dfs.read_partition("p0")] * n
        )
        assert not errors
        c = dfs.counters
        assert c.partitions_read == n
        assert c.cache_misses == 1
        assert c.cache_hits == n - 1
        # One open, one straggler sleep — not N.
        assert wall < 2.5 * delay
        assert dfs.fault_injector.attempts(dfs.engine.blob_name("p0")) == 1


class TestScheduleDeterminism:
    def _workload(self, seed):
        plan = FaultPlan(seed=seed, transient_rate=0.35)
        dfs = SimulatedDFS(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        n_parts, reads_each = 6, 5
        for i in range(n_parts):
            dfs.write_partition(make_partition(f"p{i}", seed=i))

        outcomes: dict[str, list[bool]] = {f"p{i}": [] for i in range(n_parts)}

        def reader(pid):
            for _ in range(reads_each):
                try:
                    dfs.read_partition(pid)
                    outcomes[pid].append(True)
                except TransientReadError:
                    outcomes[pid].append(False)

        wall, errors = _run_threads([
            lambda pid=f"p{i}": reader(pid) for i in range(n_parts)
        ])
        assert not errors
        c = dfs.counters
        return outcomes, (c.retries, c.read_failures, c.partitions_read)

    def test_same_seed_same_schedule_under_concurrency(self):
        # Per-name attempt schedules are serialised by the single-flight
        # guard, so a concurrent run is a pure function of the seed: the
        # exact per-read outcome sequence of every partition — and every
        # resilience counter — repeats across runs.
        first_outcomes, first_counters = self._workload(seed=11)
        second_outcomes, second_counters = self._workload(seed=11)
        assert first_outcomes == second_outcomes
        assert first_counters == second_counters
        # The schedule actually exercised both branches somewhere.
        flat = [o for seq in first_outcomes.values() for o in seq]
        assert any(flat) and not all(flat)

    def test_concurrent_schedule_matches_serial(self):
        # The same workload issued serially (one thread, same per-name
        # read order) sees the identical outcome schedule: concurrency
        # affects only interleaving across names, never the per-name
        # attempt sequence the fault plan keys on.
        concurrent_outcomes, concurrent_counters = self._workload(seed=11)

        plan = FaultPlan(seed=11, transient_rate=0.35)
        dfs = SimulatedDFS(
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        for i in range(6):
            dfs.write_partition(make_partition(f"p{i}", seed=i))
        serial: dict[str, list[bool]] = {}
        for i in range(6):
            pid = f"p{i}"
            serial[pid] = []
            for _ in range(5):
                try:
                    dfs.read_partition(pid)
                    serial[pid].append(True)
                except TransientReadError:
                    serial[pid].append(False)
        assert serial == concurrent_outcomes
        c = dfs.counters
        assert (c.retries, c.read_failures,
                c.partitions_read) == concurrent_counters

"""Shared fixtures for the test suite.

Datasets here are intentionally small (hundreds to a few thousand series)
so the whole suite runs in well under a minute; benchmark-scale workloads
live under ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_walk_dataset
from repro.series import SeriesDataset, znormalize


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> SeriesDataset:
    """2 000 z-normalised random-walk series of length 64."""
    return random_walk_dataset(2_000, 64, seed=7)


@pytest.fixture(scope="session")
def tiny_dataset() -> SeriesDataset:
    """200 z-normalised random-walk series of length 32."""
    return random_walk_dataset(200, 32, seed=11)


@pytest.fixture(scope="session")
def clustered_dataset() -> SeriesDataset:
    """Series drawn from 8 shape clusters: indexes should separate these."""
    gen = np.random.default_rng(3)
    centers = gen.normal(size=(8, 64)).cumsum(axis=1)
    rows = []
    for i in range(1_600):
        c = centers[i % 8]
        rows.append(c + gen.normal(scale=0.25, size=64))
    return SeriesDataset(znormalize(np.array(rows)), name="clustered")

"""Shared fixtures for the test suite.

Datasets here are intentionally small (hundreds to a few thousand series)
so the whole suite runs in well under a minute; benchmark-scale workloads
live under ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset
from repro.series import SeriesDataset, znormalize

#: Configuration of the shared session-scoped index (`built_index`).
#: Exposed via the ``std_index_config`` fixture so adopting modules can
#: reference word length / capacity / prefix length without rebuilding.
STD_INDEX_CONFIG = ClimberConfig(
    word_length=8,
    n_pivots=32,
    prefix_length=6,
    capacity=150,
    sample_fraction=0.25,
    n_input_partitions=16,
    seed=3,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def std_index_config() -> ClimberConfig:
    return STD_INDEX_CONFIG


@pytest.fixture(scope="session")
def std_index_dataset() -> SeriesDataset:
    """The dataset behind the shared built index (3 000 series of len 64)."""
    return random_walk_dataset(3000, 64, seed=7)


@pytest.fixture(scope="session")
def built_index(std_index_dataset) -> ClimberIndex:
    """One CLIMBER index shared by every read-only integration module.

    Built once per session; modules that only *query* or *inspect* the
    index (core index/describe/query-internals suites) adopt it instead
    of each rebuilding their own, which used to dominate tier-1 wall
    time.  Tests that mutate the index (append/persistence round-trips
    with custom storage) must keep building their own.
    """
    return ClimberIndex.build(std_index_dataset, STD_INDEX_CONFIG)


@pytest.fixture(scope="session")
def small_dataset() -> SeriesDataset:
    """2 000 z-normalised random-walk series of length 64."""
    return random_walk_dataset(2_000, 64, seed=7)


@pytest.fixture(scope="session")
def tiny_dataset() -> SeriesDataset:
    """200 z-normalised random-walk series of length 32."""
    return random_walk_dataset(200, 32, seed=11)


@pytest.fixture(scope="session")
def clustered_dataset() -> SeriesDataset:
    """Series drawn from 8 shape clusters: indexes should separate these."""
    gen = np.random.default_rng(3)
    centers = gen.normal(size=(8, 64)).cumsum(axis=1)
    rows = []
    for i in range(1_600):
        c = centers[i % 8]
        rows.append(c + gen.normal(scale=0.25, size=64))
    return SeriesDataset(znormalize(np.array(rows)), name="clustered")

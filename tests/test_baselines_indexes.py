"""Tests for DPiSAX, TARDIS, Odyssey, and HNSW."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DpisaxConfig,
    DpisaxIndex,
    HnswConfig,
    HnswIndex,
    OdysseyConfig,
    OdysseyIndex,
    TardisConfig,
    TardisIndex,
)
from repro.cluster import CostModel
from repro.datasets import random_walk_dataset, sample_queries
from repro.exceptions import ConfigurationError, MemoryBudgetExceeded
from repro.series import knn_bruteforce


@pytest.fixture(scope="module")
def ds():
    return random_walk_dataset(2000, 64, seed=9)


@pytest.fixture(scope="module")
def queries(ds):
    return sample_queries(ds, 10, seed=2)


def mean_recall(ds, queries, knn_fn, k=20):
    total = 0.0
    for q in queries.values:
        exact, _ = knn_bruteforce(q, ds.values, ds.ids, k)
        res = knn_fn(q, k)
        total += len(set(res.ids) & set(exact)) / k
    return total / queries.count


@pytest.fixture(scope="module")
def dpisax(ds):
    return DpisaxIndex.build(
        ds, DpisaxConfig(word_length=8, max_bits=6, capacity=120,
                         sample_fraction=0.25, seed=3)
    )


@pytest.fixture(scope="module")
def tardis(ds):
    return TardisIndex.build(
        ds, TardisConfig(word_length=8, max_bits=6, capacity=120,
                         sample_fraction=0.25, seed=3)
    )


class TestDpisax:
    def test_every_record_stored_once(self, ds, dpisax):
        seen = []
        for pname in dpisax.dfs.list_partitions():
            seen.extend(dpisax.dfs.read_partition(pname).ids.tolist())
        assert sorted(seen) == sorted(ds.ids.tolist())

    def test_single_partition_per_query(self, ds, dpisax):
        res = dpisax.knn(ds.values[4], 10)
        assert res.stats.n_partitions == 1

    def test_recall_above_random_below_exact(self, ds, queries, dpisax):
        r = mean_recall(ds, queries, dpisax.knn)
        assert 0.02 < r < 0.95

    def test_returns_k_results(self, ds, dpisax):
        res = dpisax.knn(ds.values[0], 15)
        assert len(res.ids) == 15
        assert np.all(np.diff(res.distances) >= 0)

    def test_global_index_is_small(self, ds, dpisax):
        assert dpisax.global_index_nbytes < 0.01 * ds.nbytes

    def test_build_sim_positive(self, dpisax):
        assert dpisax.build_sim_seconds > 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DpisaxConfig(word_length=0)
        with pytest.raises(ConfigurationError):
            DpisaxConfig(sample_fraction=0.0)
        with pytest.raises(ConfigurationError):
            DpisaxConfig(leaf_capacity=0)

    def test_rejects_bad_k(self, ds, dpisax):
        with pytest.raises(ConfigurationError):
            dpisax.knn(ds.values[0], 0)


class TestTardis:
    def test_every_record_stored_once(self, ds, tardis):
        seen = []
        for pname in tardis.dfs.list_partitions():
            seen.extend(tardis.dfs.read_partition(pname).ids.tolist())
        assert sorted(seen) == sorted(ds.ids.tolist())

    def test_single_partition_per_query(self, ds, tardis):
        res = tardis.knn(ds.values[4], 10)
        assert res.stats.n_partitions == 1

    def test_recall_above_random_below_exact(self, ds, queries, tardis):
        r = mean_recall(ds, queries, tardis.knn)
        assert 0.02 < r < 0.95

    def test_returns_k_sorted(self, ds, tardis):
        res = tardis.knn(ds.values[1], 12)
        assert len(res.ids) == 12
        assert np.all(np.diff(res.distances) >= 0)

    def test_sigtree_wider_than_dpisax_table(self, tardis, dpisax):
        """Paper Fig. 8(b): TARDIS's n-ary sigTree is the larger global index."""
        assert tardis.global_index_nbytes > dpisax.global_index_nbytes

    def test_build_faster_than_dpisax(self, tardis, dpisax):
        """Paper Fig. 8(a): DPiSAX has the slowest construction."""
        assert tardis.build_sim_seconds < dpisax.build_sim_seconds

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TardisConfig(max_bits=0)


class TestOdyssey:
    @pytest.fixture(scope="class")
    def odyssey(self, ds):
        return OdysseyIndex.build(
            ds, OdysseyConfig(word_length=8, max_bits=6, leaf_capacity=64)
        )

    def test_exact_recall(self, ds, queries, odyssey):
        assert mean_recall(ds, queries, odyssey.knn) == pytest.approx(1.0)

    def test_memory_budget_enforced(self, ds):
        tiny = CostModel(memory_per_node_gb=0.0001)
        with pytest.raises(MemoryBudgetExceeded):
            OdysseyIndex.build(ds, OdysseyConfig(), model=tiny)

    def test_memory_budget_scales_with_cost_scale(self, ds):
        model = CostModel()  # 1 TB cluster memory
        # Scaled to ~1.2 TB-equivalent the build must fail.
        scale = 1.3e12 / ds.nbytes
        with pytest.raises(MemoryBudgetExceeded):
            OdysseyIndex.build(ds, OdysseyConfig(cost_scale=scale), model=model)

    def test_query_faster_than_distributed(self, ds, odyssey):
        res = odyssey.knn(ds.values[0], 10)
        assert res.stats.sim_seconds < 5.0

    def test_build_sim_positive(self, odyssey):
        assert odyssey.build_sim_seconds > 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            OdysseyConfig(memory_usable_fraction=0.0)


class TestHnsw:
    @pytest.fixture(scope="class")
    def hnsw(self, ds):
        return HnswIndex.build(
            ds, HnswConfig(m=8, ef_construction=48, ef_search=48, seed=1)
        )

    def test_high_recall(self, ds, queries, hnsw):
        """Paper Table I: graph-based recall ~0.9."""
        assert mean_recall(ds, queries, hnsw.knn) > 0.8

    def test_returns_sorted_k(self, ds, hnsw):
        res = hnsw.knn(ds.values[3], 10)
        assert len(res.ids) == 10
        assert np.all(np.diff(res.distances) >= 0)

    def test_finds_self(self, ds, hnsw):
        res = hnsw.knn(ds.values[42], 1)
        assert res.ids[0] == ds.ids[42]

    def test_single_node_memory_bound(self, ds):
        """HNSW fails one step before Odyssey (single-node budget)."""
        model = CostModel()  # 512 GB per node
        scale = 6.0e11 / ds.nbytes
        with pytest.raises(MemoryBudgetExceeded):
            HnswIndex.build(ds, HnswConfig(cost_scale=scale), model=model)

    def test_construction_counts_distances(self, hnsw, ds):
        """Graph construction must dominate query cost by orders of magnitude."""
        per_query = hnsw.knn(ds.values[7], 10).stats.records_examined
        assert hnsw.build_dist_comps > 50 * per_query

    def test_query_sim_subsecond(self, ds, hnsw):
        assert hnsw.knn(ds.values[0], 10).stats.sim_seconds < 1.0

    def test_ef_search_improves_recall(self, ds, queries):
        lo = HnswIndex.build(ds, HnswConfig(m=6, ef_construction=32,
                                            ef_search=4, seed=1))
        r_lo = mean_recall(ds, queries, lo.knn, k=10)
        hi = HnswIndex.build(ds, HnswConfig(m=6, ef_construction=32,
                                            ef_search=96, seed=1))
        r_hi = mean_recall(ds, queries, hi.knn, k=10)
        assert r_hi >= r_lo

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            HnswConfig(m=1)
        with pytest.raises(ConfigurationError):
            HnswConfig(ef_construction=0)


class TestCrossSystemOrdering:
    """The macro-orderings of Fig. 7(b) and Table I on one shared dataset."""

    def test_recall_ordering(self, ds, queries, dpisax, tardis):
        from repro.core import ClimberConfig, ClimberIndex

        climber = ClimberIndex.build(
            ds,
            ClimberConfig(word_length=8, n_pivots=48, prefix_length=8,
                          capacity=120, sample_fraction=0.25,
                          n_input_partitions=16, seed=3),
        )
        r_climber = mean_recall(ds, queries, lambda q, k: climber.knn(q, k))
        r_tardis = mean_recall(ds, queries, tardis.knn)
        r_dpisax = mean_recall(ds, queries, dpisax.knn)
        # Paper Fig. 7(b): CLIMBER above both iSAX systems.  The margin at
        # this tiny test scale is small; the benchmarks demonstrate the
        # full-scale gap (see benchmarks/bench_fig7_datasets.py).
        assert r_climber > r_tardis
        assert r_climber > r_dpisax + 0.05

"""v1/v2 storage parity: query results and logical counters byte-identical.

The acceptance contract of the zero-copy engine: an index served by the
columnar v2 format must produce *exactly* the answers and the access-volume
accounting of the v1 blob format — same ids, same distances, same
``sim_seconds``, same logical DFS counters — because everything that
changed is physical.  Also covers the ``knn_batch`` signature
deduplication satellite (repeated queries in a batch route once).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset, sample_queries

CFG = ClimberConfig(
    word_length=8, n_pivots=32, prefix_length=6, capacity=100,
    sample_fraction=0.25, n_input_partitions=12, seed=2,
)


@pytest.fixture(scope="module")
def dataset():
    return random_walk_dataset(1_500, 48, seed=9)


@pytest.fixture(scope="module")
def queries(dataset):
    return sample_queries(dataset, 12, seed=77).values


def build(dataset, fmt, tmp_path=None):
    from repro.storage import SimulatedDFS

    dfs = SimulatedDFS(
        backing_dir=tmp_path, partition_format=fmt
    ) if tmp_path else SimulatedDFS(partition_format=fmt)
    cfg = ClimberConfig(**{**CFG.__dict__, "partition_format": fmt})
    return ClimberIndex.build(dataset, cfg, dfs=dfs), dfs


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        np.testing.assert_array_equal(ra.ids, rb.ids)
        np.testing.assert_array_equal(ra.distances, rb.distances)
        assert ra.stats.sim_seconds == rb.stats.sim_seconds
        assert ra.stats.partitions_loaded == rb.stats.partitions_loaded
        assert ra.stats.data_bytes == rb.stats.data_bytes
        assert ra.stats.records_examined == rb.stats.records_examined


class TestFormatParity:
    @pytest.mark.parametrize("variant", ["knn", "adaptive", "od-smallest"])
    def test_knn_results_and_counters_identical(self, dataset, queries,
                                                variant, tmp_path):
        v1_idx, v1_dfs = build(dataset, "v1", tmp_path / "v1")
        v2_idx, v2_dfs = build(dataset, "v2", tmp_path / "v2")
        v1_res = [v1_idx.knn(q, 10, variant=variant) for q in queries]
        v2_res = [v2_idx.knn(q, 10, variant=variant) for q in queries]
        assert_results_identical(v1_res, v2_res)
        assert v1_dfs.counters.bytes_read == v2_dfs.counters.bytes_read
        assert (v1_dfs.counters.partitions_read
                == v2_dfs.counters.partitions_read)
        assert v1_dfs.counters.bytes_written == v2_dfs.counters.bytes_written

    def test_knn_batch_parity_in_memory(self, dataset, queries):
        v1_idx, v1_dfs = build(dataset, "v1")
        v2_idx, v2_dfs = build(dataset, "v2")
        assert_results_identical(
            v1_idx.knn_batch(queries, 8), v2_idx.knn_batch(queries, 8)
        )
        assert v1_dfs.counters.bytes_read == v2_dfs.counters.bytes_read
        assert (v1_dfs.counters.partitions_read
                == v2_dfs.counters.partitions_read)

    def test_v2_reopen_from_disk_matches_v1(self, dataset, queries, tmp_path):
        from repro.storage import SimulatedDFS

        v1_idx, _ = build(dataset, "v1", tmp_path / "v1")
        v2_idx, _ = build(dataset, "v2", tmp_path / "v2")
        blob = v2_idx.save_global_index()
        fresh = SimulatedDFS(backing_dir=tmp_path / "v2")
        fresh.attach()
        reopened = ClimberIndex.reopen(blob, fresh, v2_idx.config)
        assert_results_identical(
            [v1_idx.knn(q, 10) for q in queries],
            [reopened.knn(q, 10) for q in queries],
        )

    def test_v2_with_cache_matches_v1_without(self, dataset, queries, tmp_path):
        from repro.storage import SimulatedDFS

        v2_idx, _ = build(dataset, "v2", tmp_path / "v2")
        blob = v2_idx.save_global_index()
        cached = SimulatedDFS(backing_dir=tmp_path / "v2",
                              cache_bytes=1 << 26)
        cached.attach()
        warm_idx = ClimberIndex.reopen(blob, cached, v2_idx.config)
        v1_idx, v1_dfs = build(dataset, "v1", tmp_path / "v1")
        warm = [warm_idx.knn(q, 10) for q in queries]
        cold = [v1_idx.knn(q, 10) for q in queries]
        assert_results_identical(cold, warm)
        assert cached.counters.bytes_read == v1_dfs.counters.bytes_read
        assert cached.counters.cache_hits > 0

    def test_append_parity(self, dataset, tmp_path):
        extra = random_walk_dataset(200, 48, seed=31)
        probe = extra.values[:6]
        outcomes = {}
        for fmt in ("v1", "v2"):
            idx, dfs = build(dataset, fmt, tmp_path / f"append-{fmt}")
            summary = idx.append(extra)
            outcomes[fmt] = (
                summary["delta_partitions"],
                [idx.knn(q, 10) for q in probe],
                dfs.counters.bytes_read,
            )
        assert outcomes["v1"][0] == outcomes["v2"][0]
        assert_results_identical(outcomes["v1"][1], outcomes["v2"][1])
        assert outcomes["v1"][2] == outcomes["v2"][2]


class TestBatchSignatureDedup:
    def test_repeated_queries_route_once(self, dataset, queries, monkeypatch):
        """A batch of duplicates computes the routing matrix on unique rows."""
        idx, _ = build(dataset, "v2")
        batch = np.repeat(queries[:3], 4, axis=0)  # 12 rows, 3 distinct
        seen_rows = []
        original = type(idx.routing).distance_matrices

        def spy(self, ranked):
            seen_rows.append(np.asarray(ranked).shape[0])
            return original(self, ranked)

        monkeypatch.setattr(type(idx.routing), "distance_matrices", spy)
        results = idx.knn_batch(batch, 8)
        assert seen_rows == [3]
        assert len(results) == 12

    def test_repeated_queries_match_per_query_knn(self, dataset, queries):
        # Two identically-built indexes so both runs see the same RNG
        # stream position at every tie-break.
        batch_idx, _ = build(dataset, "v2")
        solo_idx, _ = build(dataset, "v2")
        batch = np.repeat(queries[:3], 4, axis=0)
        batch_res = batch_idx.knn_batch(batch, 8)
        solo_res = [solo_idx.knn(q, 8) for q in batch]
        assert_results_identical(solo_res, batch_res)

    def test_duplicates_share_answers(self, dataset, queries):
        idx, _ = build(dataset, "v2")
        batch = np.vstack([queries[0], queries[1], queries[0]])
        res = idx.knn_batch(batch, 5)
        np.testing.assert_array_equal(res[0].ids, res[2].ids)
        np.testing.assert_array_equal(res[0].distances, res[2].distances)

    def test_unique_batch_unchanged(self, dataset, queries):
        batch_idx, _ = build(dataset, "v2")
        solo_idx, _ = build(dataset, "v2")
        batch_res = batch_idx.knn_batch(queries, 8)
        solo_res = [solo_idx.knn(q, 8) for q in queries]
        assert_results_identical(solo_res, batch_res)

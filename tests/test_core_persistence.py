"""Tests for index persistence: save_global_index / reopen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset
from repro.exceptions import ConfigurationError
from repro.storage import SimulatedDFS


CFG = ClimberConfig(word_length=8, n_pivots=24, prefix_length=5,
                    capacity=120, sample_fraction=0.25,
                    n_input_partitions=12, seed=4)


@pytest.fixture(scope="module")
def built():
    ds = random_walk_dataset(1500, 48, seed=3)
    dfs = SimulatedDFS()
    index = ClimberIndex.build(ds, CFG, dfs=dfs)
    return ds, dfs, index


class TestPersistence:
    def test_global_index_roundtrips(self, built):
        _, dfs, index = built
        blob = index.save_global_index()
        reopened = ClimberIndex.reopen(blob, dfs, CFG)
        assert reopened.n_groups == index.n_groups
        assert reopened.n_partitions == index.n_partitions
        np.testing.assert_array_equal(reopened.pivots, index.pivots)

    def test_reopened_index_answers_identically(self, built):
        ds, dfs, index = built
        reopened = ClimberIndex.reopen(index.save_global_index(), dfs, CFG)
        for i in (0, 77, 512, 1400):
            a = index.knn(ds.values[i], 10, variant="knn")
            b = reopened.knn(ds.values[i], 10, variant="knn")
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)

    def test_reopened_adaptive_variant_works(self, built):
        ds, dfs, index = built
        reopened = ClimberIndex.reopen(index.save_global_index(), dfs, CFG)
        res = reopened.knn(ds.values[9], 200, variant="adaptive")
        assert len(res.ids) > 0

    def test_reopen_counts_records(self, built):
        ds, dfs, index = built
        reopened = ClimberIndex.reopen(index.save_global_index(), dfs, CFG)
        assert reopened.n_records == ds.count

    def test_reopen_rejects_mismatched_prefix(self, built):
        _, dfs, index = built
        bad = ClimberConfig(word_length=8, n_pivots=24, prefix_length=6,
                            capacity=120, sample_fraction=0.25)
        with pytest.raises(ConfigurationError):
            ClimberIndex.reopen(index.save_global_index(), dfs, bad)

    def test_disk_backed_end_to_end(self, tmp_path):
        """Build on a disk-backed DFS, reopen, query — fully persistent."""
        ds = random_walk_dataset(800, 32, seed=6)
        cfg = ClimberConfig(word_length=8, n_pivots=16, prefix_length=4,
                            capacity=100, sample_fraction=0.3,
                            n_input_partitions=8, seed=1)
        dfs = SimulatedDFS(backing_dir=tmp_path / "dfs")
        index = ClimberIndex.build(ds, cfg, dfs=dfs)
        blob = index.save_global_index()
        (tmp_path / "global.idx").write_bytes(blob)

        # A fresh process would do exactly this:
        dfs2 = SimulatedDFS(backing_dir=tmp_path / "dfs")
        assert dfs2.attach() == len(dfs)
        reopened = ClimberIndex.reopen(
            (tmp_path / "global.idx").read_bytes(), dfs2, cfg
        )
        res = reopened.knn(ds.values[5], 5)
        assert res.ids[0] == ds.ids[5]

"""Tests for Euclidean distances, brute-force kNN, and partial-result merging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.series import (
    euclidean,
    knn_bruteforce,
    knn_merge,
    pairwise_euclidean,
    squared_euclidean,
)


class TestEuclidean:
    def test_identity(self):
        x = np.arange(5.0)
        assert euclidean(x, x) == 0.0

    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_symmetry(self, rng):
        x, y = rng.normal(size=(2, 20))
        assert euclidean(x, y) == pytest.approx(euclidean(y, x))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            euclidean(np.zeros(3), np.zeros(4))


class TestSquaredEuclidean:
    def test_matches_naive(self, rng):
        q = rng.normal(size=(3, 16))
        d = rng.normal(size=(7, 16))
        fast = squared_euclidean(q, d)
        naive = ((q[:, None, :] - d[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_never_negative(self, rng):
        # Clustered near-identical points stress the cancellation path.
        base = rng.normal(size=16)
        pts = base + rng.normal(scale=1e-9, size=(50, 16))
        assert squared_euclidean(pts, pts).min() >= 0.0

    def test_shape(self, rng):
        out = squared_euclidean(rng.normal(size=(2, 8)), rng.normal(size=(5, 8)))
        assert out.shape == (2, 5)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            squared_euclidean(np.zeros((2, 8)), np.zeros((2, 9)))

    def test_pairwise_is_sqrt(self, rng):
        q = rng.normal(size=(2, 8))
        d = rng.normal(size=(4, 8))
        np.testing.assert_allclose(
            pairwise_euclidean(q, d) ** 2, squared_euclidean(q, d), atol=1e-9
        )


class TestKnnBruteforce:
    def test_finds_self_first(self, rng):
        data = rng.normal(size=(30, 10))
        ids, dists = knn_bruteforce(data[4], data, np.arange(30), 5)
        assert ids[0] == 4
        assert dists[0] == 0.0

    def test_sorted_by_distance(self, rng):
        data = rng.normal(size=(50, 10))
        _, dists = knn_bruteforce(data[0], data, np.arange(50), 10)
        assert np.all(np.diff(dists) >= 0)

    def test_k_larger_than_data(self, rng):
        data = rng.normal(size=(3, 5))
        ids, _ = knn_bruteforce(data[0], data, np.arange(3), 10)
        assert len(ids) == 3

    def test_matches_full_sort(self, rng):
        data = rng.normal(size=(100, 8))
        q = rng.normal(size=8)
        ids, _ = knn_bruteforce(q, data, np.arange(100), 7)
        full = np.sqrt(((data - q) ** 2).sum(axis=1))
        expect = np.argsort(full, kind="stable")[:7]
        assert set(ids) == set(expect)

    def test_deterministic_tie_break_by_id(self):
        data = np.zeros((5, 4))  # all identical -> all ties
        ids, _ = knn_bruteforce(np.zeros(4), data, np.array([9, 3, 7, 1, 5]), 3)
        assert list(ids) == [1, 3, 5]

    def test_small_set_fast_path_matches_general(self, rng):
        """Candidate sets at/below the threshold take the direct-dot path;
        it must pick the same neighbours as the einsum batch path."""
        from repro.series.distance import SMALL_SCAN_THRESHOLD

        for n in (1, 2, SMALL_SCAN_THRESHOLD, SMALL_SCAN_THRESHOLD + 1, 200):
            data = rng.normal(size=(n, 12))
            q = rng.normal(size=12)
            k = min(5, n)
            ids, dists = knn_bruteforce(q, data, np.arange(n), k)
            d2 = squared_euclidean(q, data)[0]
            expect = np.lexsort((np.arange(n), d2))[:k]
            np.testing.assert_array_equal(ids, expect)
            np.testing.assert_allclose(dists, np.sqrt(d2[expect]))

    def test_small_set_tie_break_still_by_id(self):
        # Integer-valued data: both arithmetic paths are exact, so the
        # deterministic (distance, id) ordering is observable.
        data = np.array([[0.0, 3.0], [3.0, 0.0], [0.0, 0.0], [3.0, 0.0]])
        ids, dists = knn_bruteforce(np.zeros(2), data, np.array([9, 2, 7, 1]), 3)
        assert list(ids) == [7, 1, 2]
        np.testing.assert_allclose(dists, [0.0, 3.0, 3.0])

    def test_small_set_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            knn_bruteforce(np.zeros(4), np.zeros((3, 5)), np.arange(3), 2)

    def test_custom_ids_returned(self, rng):
        data = rng.normal(size=(10, 6))
        ids = np.arange(100, 110)
        out, _ = knn_bruteforce(data[2], data, ids, 1)
        assert out[0] == 102


class TestKnnMerge:
    def test_merges_two_partitions(self):
        a = (np.array([1, 2]), np.array([0.5, 2.0]))
        b = (np.array([3, 4]), np.array([1.0, 3.0]))
        ids, dists = knn_merge([a, b], 3)
        assert list(ids) == [1, 3, 2]
        np.testing.assert_allclose(dists, [0.5, 1.0, 2.0])

    def test_duplicate_ids_keep_min_distance(self):
        a = (np.array([1]), np.array([2.0]))
        b = (np.array([1]), np.array([1.0]))
        ids, dists = knn_merge([a, b], 5)
        assert list(ids) == [1]
        assert dists[0] == 1.0

    def test_empty_input(self):
        ids, dists = knn_merge([], 5)
        assert len(ids) == 0
        assert len(dists) == 0

    def test_equals_global_bruteforce(self, rng):
        data = rng.normal(size=(60, 8))
        q = rng.normal(size=8)
        parts = np.array_split(np.arange(60), 4)
        partials = [
            knn_bruteforce(q, data[p], p, 10) for p in parts
        ]
        merged_ids, merged_d = knn_merge(partials, 10)
        direct_ids, direct_d = knn_bruteforce(q, data, np.arange(60), 10)
        assert set(merged_ids) == set(direct_ids)
        np.testing.assert_allclose(np.sort(merged_d), np.sort(direct_d), atol=1e-9)

    @staticmethod
    def _reference_merge(partials, k):
        """The pre-vectorisation dict+heap implementation."""
        import heapq

        best = {}
        for ids, dists in partials:
            for i, dist in zip(np.asarray(ids), np.asarray(dists)):
                i, dist = int(i), float(dist)
                if i not in best or dist < best[i]:
                    best[i] = dist
        top = heapq.nsmallest(k, [(d, i) for i, d in best.items()])
        if not top:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        return (np.array([t[1] for t in top], dtype=np.int64),
                np.array([t[0] for t in top], dtype=np.float64))

    def test_matches_scalar_reference(self, rng):
        for trial in range(20):
            partials = []
            for _ in range(rng.integers(1, 5)):
                n = int(rng.integers(0, 12))
                ids = rng.integers(0, 15, size=n)
                dists = np.round(rng.uniform(0, 4, size=n), 1)  # force ties
                partials.append((ids, dists))
            k = int(rng.integers(1, 10))
            got_ids, got_d = knn_merge(partials, k)
            ref_ids, ref_d = self._reference_merge(partials, k)
            np.testing.assert_array_equal(got_ids, ref_ids)
            np.testing.assert_array_equal(got_d, ref_d)
            assert got_ids.dtype == np.int64 and got_d.dtype == np.float64

    def test_deterministic_distance_id_order(self):
        a = (np.array([7, 3, 9]), np.array([1.0, 1.0, 0.5]))
        b = (np.array([5]), np.array([1.0]))
        ids, dists = knn_merge([a, b], 4)
        assert list(ids) == [9, 3, 5, 7]
        np.testing.assert_allclose(dists, [0.5, 1.0, 1.0, 1.0])

    def test_all_empty_partials(self):
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        ids, dists = knn_merge([empty, empty], 3)
        assert len(ids) == 0 and len(dists) == 0


@given(
    arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 12)),
           elements=st.floats(-100, 100, allow_nan=False)),
)
@settings(max_examples=50, deadline=None)
def test_triangle_inequality(mat):
    """Property: Euclidean distance satisfies the triangle inequality."""
    x, y = mat[0], mat[1]
    z = mat[-1]
    assert euclidean(x, z) <= euclidean(x, y) + euclidean(y, z) + 1e-7

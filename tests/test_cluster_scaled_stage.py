"""Tests for scaled-stage accounting and the baseline build-cost helper."""

from __future__ import annotations

import pytest

from repro.baselines.common import partition_scan_cost, simulate_distributed_build
from repro.cluster import ClusterSimulator, CostModel, TaskCost
from repro.datasets import random_walk_dataset
from repro.storage import PartitionFile
import numpy as np


def quiet_model(**kwargs) -> CostModel:
    defaults = dict(task_overhead_s=0.0, stage_overhead_s=0.0, disk_seek_s=0.0,
                    software_factor=1.0)
    defaults.update(kwargs)
    return CostModel(**defaults)


class TestRunScaledStage:
    def test_splits_volume_into_block_tasks(self):
        sim = ClusterSimulator(quiet_model())
        granule = 64 * 1024 * 1024
        report = sim.run_scaled_stage(
            "s", TaskCost(read_bytes=granule * 10), granule_bytes=granule
        )
        assert report.n_tasks == 10

    def test_min_tasks_respected(self):
        sim = ClusterSimulator(quiet_model())
        report = sim.run_scaled_stage(
            "s", TaskCost(read_bytes=1024), min_tasks=7
        )
        assert report.n_tasks == 7

    def test_pure_cpu_stage_uses_min_tasks(self):
        sim = ClusterSimulator(quiet_model())
        report = sim.run_scaled_stage(
            "s", TaskCost(cpu_ops=10**9), min_tasks=3
        )
        assert report.n_tasks == 3

    def test_total_preserved_up_to_rounding(self):
        sim = ClusterSimulator(quiet_model())
        total = TaskCost(read_bytes=10**9, cpu_ops=10**8)
        report = sim.run_scaled_stage("s", total)
        assert report.total_cost.read_bytes == pytest.approx(10**9, rel=1e-3)
        assert report.total_cost.cpu_ops == pytest.approx(10**8, rel=1e-3)

    def test_granularity_exploits_parallelism(self):
        """The same CPU total must finish faster when split into blocks.

        This is the accounting property that keeps scaled-down runs from
        bottlenecking the simulated cluster on artificial task counts.
        """
        model = quiet_model()
        total = TaskCost(cpu_ops=int(112 * 1.5e9), read_bytes=112 * 1024 * 1024)
        coarse = ClusterSimulator(model).run_stage("coarse", [total])
        fine = ClusterSimulator(model).run_scaled_stage(
            "fine", total, granule_bytes=1024 * 1024
        )
        assert fine.sim_seconds < 0.25 * coarse.sim_seconds


class TestSimulateDistributedBuild:
    def test_stage_structure(self):
        ds = random_walk_dataset(200, 32, seed=1)
        report = simulate_distributed_build(
            CostModel(), ds, cost_scale=1000.0, n_chunks=16,
            sample_fraction=0.1, per_record_ops=500,
        )
        names = [s.name for s in report.stages]
        assert any(n.startswith("build/skeleton/sample") for n in names)
        assert any(n.startswith("build/convert") for n in names)
        assert any(n.startswith("build/redistribute") for n in names)

    def test_no_write_fraction_drops_redistribution(self):
        ds = random_walk_dataset(200, 32, seed=1)
        report = simulate_distributed_build(
            CostModel(), ds, cost_scale=1000.0, n_chunks=16,
            sample_fraction=0.1, per_record_ops=500, write_fraction=0.0,
        )
        assert report.seconds_for("build/redistribute") == 0.0

    def test_cost_scale_moves_time(self):
        ds = random_walk_dataset(200, 32, seed=1)

        def total(scale):
            return simulate_distributed_build(
                CostModel(), ds, cost_scale=scale, n_chunks=16,
                sample_fraction=0.1, per_record_ops=500,
            ).total_seconds

        # In the I/O-dominated regime (beyond fixed stage overheads) the
        # build time grows ~linearly with the data volume.
        assert total(1e7) > 5 * total(1e6)

    def test_expensive_conversion_dominates(self):
        """Higher per-record ops must slow the build (the DPiSAX story)."""
        ds = random_walk_dataset(200, 32, seed=1)

        def total(ops):
            return simulate_distributed_build(
                CostModel(), ds, cost_scale=1e6, n_chunks=16,
                sample_fraction=0.1, per_record_ops=ops,
            ).total_seconds

        assert total(20_000) > 1.5 * total(500)


class TestPartitionScanCost:
    def _part(self):
        return PartitionFile.from_clusters(
            "p", {"a": (np.arange(10), np.zeros((10, 16)))}
        )

    def test_block_granular_mode(self):
        part = self._part()
        block = 64 * 1024 * 1024
        cost = partition_scan_cost(part, cost_scale=1e6, sim_partition_bytes=block)
        assert cost.read_bytes == block
        # CPU charged for one block's worth of records, not the scaled count.
        assert cost.cpu_ops < 1e12

    def test_honest_mode_scales_bytes(self):
        part = self._part()
        cost = partition_scan_cost(part, cost_scale=100.0, sim_partition_bytes=None)
        assert cost.read_bytes == part.nbytes * 100

"""Tests for SAX breakpoints, words, and MINDIST."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.series import (
    euclidean,
    paa_transform,
    sax_breakpoints,
    sax_mindist,
    sax_transform,
    symbol_bounds,
    znormalize,
)


class TestBreakpoints:
    def test_cardinality_4_known_values(self):
        bps = sax_breakpoints(4)
        np.testing.assert_allclose(bps, [-0.6745, 0.0, 0.6745], atol=1e-4)

    def test_cardinality_8_contains_paper_boundary(self):
        """Paper Section III-B: stripe '111' starts at 1.15 for c=8."""
        bps = sax_breakpoints(8)
        assert bps[-1] == pytest.approx(1.1503, abs=1e-4)

    def test_count(self):
        for c in (2, 4, 8, 16, 32):
            assert sax_breakpoints(c).shape == (c - 1,)

    def test_sorted_and_symmetric(self):
        bps = sax_breakpoints(16)
        assert np.all(np.diff(bps) > 0)
        np.testing.assert_allclose(bps, -bps[::-1], atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            sax_breakpoints(6)

    def test_rejects_cardinality_one(self):
        with pytest.raises(ConfigurationError):
            sax_breakpoints(1)

    def test_cached_instances_are_readonly(self):
        bps = sax_breakpoints(4)
        with pytest.raises(ValueError):
            bps[0] = 0.0


class TestSaxTransform:
    def test_symbols_in_range(self, rng):
        paa = paa_transform(znormalize(rng.normal(size=(50, 32))), 8)
        syms = sax_transform(paa, 8)
        assert syms.min() >= 0
        assert syms.max() <= 7

    def test_extreme_values_hit_extreme_symbols(self):
        paa = np.array([[-10.0, 10.0]])
        syms = sax_transform(paa, 8)
        assert syms[0, 0] == 0
        assert syms[0, 1] == 7

    def test_zero_maps_to_middle(self):
        syms = sax_transform(np.array([[0.0]]), 8)
        # 0.0 is exactly the c/2 breakpoint; left-side search puts it below.
        assert syms[0, 0] in (3, 4)

    def test_monotone_in_value(self, rng):
        vals = np.sort(rng.normal(size=(1, 64)))
        syms = sax_transform(vals, 16)[0]
        assert np.all(np.diff(syms.astype(int)) >= 0)

    def test_equiprobable_on_gaussian(self, rng):
        """On N(0,1) values each symbol should get roughly equal mass."""
        vals = rng.normal(size=(1, 200_000))
        counts = np.bincount(sax_transform(vals, 4)[0], minlength=4)
        assert counts.min() > 0.2 * vals.size
        assert counts.max() < 0.3 * vals.size


class TestSymbolBounds:
    def test_bounds_bracket_symbol_values(self, rng):
        paa = paa_transform(znormalize(rng.normal(size=(20, 32))), 8)
        syms = sax_transform(paa, 8)
        lo, hi = symbol_bounds(syms, 8)
        assert np.all(paa >= lo - 1e-12)
        assert np.all(paa <= hi + 1e-12)

    def test_extreme_symbols_unbounded(self):
        lo, hi = symbol_bounds(np.array([0, 7]), 8)
        assert lo[0] == -np.inf
        assert hi[1] == np.inf

    def test_rejects_out_of_range_symbol(self):
        with pytest.raises(ConfigurationError):
            symbol_bounds(np.array([8]), 8)


class TestSaxMindist:
    def test_equal_words_zero(self):
        assert sax_mindist(np.array([3, 3]), np.array([3, 3]), 8, 32) == 0.0

    def test_adjacent_symbols_zero(self):
        assert sax_mindist(np.array([3]), np.array([4]), 8, 32) == 0.0

    def test_symmetry(self, rng):
        a = rng.integers(0, 8, size=6)
        b = rng.integers(0, 8, size=6)
        assert sax_mindist(a, b, 8, 48) == pytest.approx(sax_mindist(b, a, 8, 48))

    def test_word_length_mismatch(self):
        with pytest.raises(ValueError):
            sax_mindist(np.zeros(3, dtype=int), np.zeros(4, dtype=int), 8, 32)

    def test_lower_bounds_euclidean(self, rng):
        """Property on real data: MINDIST(SAX, SAX) <= ED."""
        data = znormalize(rng.normal(size=(40, 64)).cumsum(axis=1))
        paa = paa_transform(data, 8)
        syms = sax_transform(paa, 8)
        for i in range(0, 40, 5):
            for j in range(1, 40, 7):
                md = sax_mindist(syms[i], syms[j], 8, 64)
                assert md <= euclidean(data[i], data[j]) + 1e-9


@given(st.integers(0, 15), st.integers(0, 15), st.sampled_from([16]))
@settings(max_examples=80, deadline=None)
def test_mindist_nonnegative_and_symmetric(si, sj, card):
    a = np.array([si])
    b = np.array([sj])
    d1 = sax_mindist(a, b, card, 16)
    d2 = sax_mindist(b, a, card, 16)
    assert d1 >= 0.0
    assert d1 == pytest.approx(d2)

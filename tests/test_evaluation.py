"""Tests for ground truth, the evaluation harness, and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DssScanner
from repro.datasets import random_walk_dataset, sample_queries
from repro.evaluation import (
    evaluate_system,
    exact_ground_truth,
    fmt_duration,
    render_table,
    write_csv,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def workload():
    ds = random_walk_dataset(600, 32, seed=6)
    qs = sample_queries(ds, 8, seed=1)
    truth = exact_ground_truth(ds, qs, 10)
    return ds, qs, truth


class TestGroundTruth:
    def test_length_and_k(self, workload):
        _, qs, truth = workload
        assert len(truth) == 8
        assert truth.k == 10

    def test_self_is_neighbor(self, workload):
        """Queries drawn from the dataset contain themselves in ground truth."""
        _, qs, truth = workload
        for qi, qid in enumerate(qs.ids):
            assert qid in truth.neighbors_of(qi)

    def test_recall_perfect(self, workload):
        _, _, truth = workload
        assert truth.recall_of(0, truth.neighbors_of(0)) == 1.0

    def test_recall_partial(self, workload):
        _, _, truth = workload
        half = truth.neighbors_of(0)[:5]
        assert truth.recall_of(0, half) == pytest.approx(0.5)

    def test_recall_zero(self, workload):
        _, _, truth = workload
        assert truth.recall_of(0, np.array([-1, -2])) == 0.0

    def test_rejects_bad_k(self, workload):
        ds, qs, _ = workload
        with pytest.raises(ConfigurationError):
            exact_ground_truth(ds, qs, 0)


class TestEvaluateSystem:
    def test_exact_system_scores_one(self, workload):
        ds, qs, truth = workload
        dss = DssScanner.build(ds, n_partitions=4)
        ev = evaluate_system("Dss", dss.knn, qs, truth, 10)
        assert ev.recall == pytest.approx(1.0)
        assert ev.system == "Dss"
        assert ev.n_queries == 8
        assert ev.partitions == 4.0
        assert ev.sim_seconds > 0

    def test_row_is_flat(self, workload):
        ds, qs, truth = workload
        dss = DssScanner.build(ds, n_partitions=4)
        row = evaluate_system("Dss", dss.knn, qs, truth, 10).row()
        assert row["recall"] == 1.0
        assert set(row) >= {"system", "k", "recall", "query_sim_s"}


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table("T", [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert len({len(line) for line in lines[1:]}) == 1

    def test_render_empty(self):
        assert "(no rows)" in render_table("T", [])

    def test_render_column_subset(self):
        out = render_table("T", [{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[1]

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = write_csv(tmp_path / "sub" / "out.csv", rows)
        text = path.read_text().strip().splitlines()
        assert text[0] == "x,y"
        assert text[1] == "1,a"

    def test_write_csv_empty(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""

    def test_fmt_duration(self):
        assert fmt_duration(12.34) == "12.3s"
        assert fmt_duration(600) == "10.0m"
        assert fmt_duration(float("nan")) == "X"

"""Tests for pivot selection, permutations, and permutation prefixes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.pivots import (
    full_permutations,
    permutation_prefixes,
    pivot_distance_matrix,
    select_farthest_first_pivots,
    select_random_pivots,
)


@pytest.fixture(scope="module")
def paa_and_pivots():
    rng = np.random.default_rng(77)
    paa = rng.normal(size=(500, 8))
    pivots = select_random_pivots(paa, 16, rng)
    return paa, pivots


class TestSelection:
    def test_random_pivots_are_candidate_rows(self, rng):
        cands = rng.normal(size=(50, 6))
        pivots = select_random_pivots(cands, 10, rng)
        assert pivots.shape == (10, 6)
        for p in pivots:
            assert any(np.array_equal(p, c) for c in cands)

    def test_random_pivots_distinct(self, rng):
        cands = rng.normal(size=(50, 6))
        pivots = select_random_pivots(cands, 50, rng)
        assert np.unique(pivots, axis=0).shape[0] == 50

    def test_too_many_pivots_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            select_random_pivots(rng.normal(size=(5, 4)), 6, rng)

    def test_zero_pivots_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            select_random_pivots(rng.normal(size=(5, 4)), 0, rng)

    def test_pivots_are_copies(self, rng):
        cands = rng.normal(size=(20, 4))
        pivots = select_random_pivots(cands, 5, rng)
        pivots[0, 0] = 1e9
        assert cands.max() < 1e9

    def test_farthest_first_spreads(self, rng):
        """Max-min selection must achieve wider min-pairwise spacing."""
        from repro.series import squared_euclidean

        cands = rng.normal(size=(300, 8))

        def min_gap(pivots):
            d2 = squared_euclidean(pivots, pivots)
            np.fill_diagonal(d2, np.inf)
            return d2.min()

        ff = select_farthest_first_pivots(cands, 12, np.random.default_rng(1))
        rnd = select_random_pivots(cands, 12, np.random.default_rng(1))
        assert min_gap(ff) >= min_gap(rnd)


class TestPivotDistanceMatrix:
    def test_shape(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        assert pivot_distance_matrix(paa, pivots).shape == (500, 16)

    def test_word_length_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            pivot_distance_matrix(rng.normal(size=(5, 8)), rng.normal(size=(3, 7)))

    def test_zero_for_pivot_itself(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        d2 = pivot_distance_matrix(pivots, pivots)
        np.testing.assert_allclose(np.diag(d2), 0.0, atol=1e-9)


class TestFullPermutations:
    def test_rows_are_permutations(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        perms = full_permutations(paa, pivots)
        assert perms.shape == (500, 16)
        expect = np.arange(16)
        for row in perms[:25]:
            np.testing.assert_array_equal(np.sort(row), expect)

    def test_sorted_by_distance(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        perms = full_permutations(paa, pivots)
        d2 = pivot_distance_matrix(paa, pivots)
        for i in range(0, 500, 100):
            ordered = d2[i, perms[i]]
            assert np.all(np.diff(ordered) >= 0)

    def test_tie_break_by_pivot_id(self):
        # Two identical pivots: the lower id must come first.
        pivots = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 0.0]])
        perms = full_permutations(np.array([[0.0, 0.0]]), pivots)
        assert list(perms[0]) == [1, 2, 0]

    def test_paper_figure2_style_example(self):
        """A point nearest p6 then p4 must start its permutation <6, 4, ...>."""
        pivots = np.array(
            [[10.0, 0], [8.0, 8], [0, 10.0], [2.0, 1.0], [5.0, 9.0], [1.0, 0.5], [4.0, 4.0]]
        )
        x = np.array([[1.2, 0.7]])
        perm = full_permutations(x, pivots)[0]
        assert perm[0] == 5  # closest pivot
        d2 = pivot_distance_matrix(x, pivots)[0]
        np.testing.assert_array_equal(perm, np.argsort(d2, kind="stable"))


class TestPermutationPrefixes:
    def test_prefix_is_head_of_full_permutation(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        full = full_permutations(paa, pivots)
        for m in (1, 3, 8, 16):
            prefix = permutation_prefixes(paa, pivots, m)
            np.testing.assert_array_equal(prefix, full[:, :m])

    def test_rejects_bad_prefix_lengths(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        with pytest.raises(ConfigurationError):
            permutation_prefixes(paa, pivots, 0)
        with pytest.raises(ConfigurationError):
            permutation_prefixes(paa, pivots, 17)

    def test_tie_heavy_input(self):
        """Many equidistant pivots: prefix must still match the full sort."""
        pivots = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0], [2.0, 0.0]])
        x = np.zeros((3, 2))
        prefix = permutation_prefixes(x, pivots, 2)
        for row in prefix:
            assert list(row) == [0, 1]

    def test_int32_dtype(self, paa_and_pivots):
        paa, pivots = paa_and_pivots
        assert permutation_prefixes(paa, pivots, 4).dtype == np.int32


@given(st.integers(2, 30), st.integers(2, 10), st.data())
@settings(max_examples=40, deadline=None)
def test_prefix_consistency_property(r, w, data):
    """Property: for any m, prefix == head of the full permutation."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    paa = rng.normal(size=(20, w))
    pivots = rng.normal(size=(r, w))
    m = data.draw(st.integers(1, r))
    full = full_permutations(paa, pivots)
    prefix = permutation_prefixes(paa, pivots, m)
    np.testing.assert_array_equal(prefix, full[:, :m])

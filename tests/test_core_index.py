"""Integration tests for index construction and the three query variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset, sample_queries
from repro.exceptions import ConfigurationError
from repro.series import knn_bruteforce
from repro.storage import SimulatedDFS


# The module rides the shared session-scoped index (``built_index`` in
# conftest): same geometry the old module-local SMALL_CFG used, built
# once for the whole suite; its config arrives via ``std_index_config``.


@pytest.fixture(scope="module")
def built(std_index_dataset, built_index):
    return std_index_dataset, built_index


class TestConfig:
    def test_paper_defaults_valid(self):
        from repro.core import PAPER_DEFAULTS

        assert PAPER_DEFAULTS.n_pivots == 200
        assert PAPER_DEFAULTS.prefix_length == 10

    def test_epsilon_default_is_half_prefix(self):
        assert ClimberConfig(prefix_length=10).epsilon == 5
        assert ClimberConfig(prefix_length=7).epsilon == 4

    def test_epsilon_override(self):
        cfg = ClimberConfig(prefix_length=10, min_centroid_separation=2)
        assert cfg.epsilon == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClimberConfig(prefix_length=0)
        with pytest.raises(ConfigurationError):
            ClimberConfig(n_pivots=4, prefix_length=5)
        with pytest.raises(ConfigurationError):
            ClimberConfig(sample_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ClimberConfig(adaptive_factor=0)
        with pytest.raises(ConfigurationError):
            ClimberConfig(cost_scale=0.0)


class TestBuild:
    def test_every_record_stored_exactly_once(self, built):
        ds, idx = built
        seen = []
        for pname in idx.dfs.list_partitions():
            part = idx.dfs.read_partition(pname)
            seen.extend(part.ids.tolist())
        assert sorted(seen) == sorted(ds.ids.tolist())

    def test_fallback_group_is_group_zero(self, built):
        _, idx = built
        assert idx.skeleton.groups[0].is_fallback

    def test_partitions_respect_soft_capacity(self, built, std_index_config):
        """Partition record counts should be near c; hard violations only via
        oversized leaves (soft constraint)."""
        _, idx = built
        cap = std_index_config.capacity
        for pname in idx.dfs.list_partitions():
            part = idx.dfs.read_partition(pname)
            assert part.record_count <= 3 * cap

    def test_cluster_keys_belong_to_registered_groups(self, built):
        _, idx = built
        valid_groups = {g.group_id for g in idx.skeleton.groups}
        for pname in idx.dfs.list_partitions():
            part = idx.dfs.read_partition(pname)
            for key in part.cluster_keys():
                gid = int(key.split("/")[0][1:])
                assert gid in valid_groups

    def test_leaf_records_match_leaf_path(self, built, std_index_config):
        """Records in a leaf cluster must carry signatures matching the path."""
        from repro.pivots import permutation_prefixes
        from repro.series import paa_transform

        ds, idx = built
        pname = idx.dfs.list_partitions()[0]
        part = idx.dfs.read_partition(pname)
        for key in part.cluster_keys()[:5]:
            parts = key.split("/")
            if parts[-1] == "~" or len(parts) == 1:
                continue
            path = tuple(int(p) for p in parts[1:])
            _, vals = part.read_cluster(key)
            paa = paa_transform(vals, std_index_config.word_length)
            ranked = permutation_prefixes(
                paa, idx.pivots, std_index_config.prefix_length
            )
            for row in ranked:
                assert tuple(row[: len(path)]) == path

    def test_global_index_small(self, built):
        """Paper Fig. 8(b): the skeleton is tiny relative to the data."""
        ds, idx = built
        assert idx.global_index_nbytes < 0.05 * ds.nbytes

    def test_build_report_phases(self, built):
        _, idx = built
        phases = idx.build_phase_seconds
        assert set(phases) == {"skeleton", "conversion", "redistribution"}
        assert all(v > 0 for v in phases.values())
        assert idx.build_sim_seconds >= sum(phases.values()) - 1e-9

    def test_deterministic_rebuild(self):
        ds = random_walk_dataset(1000, 32, seed=1)
        cfg = ClimberConfig(word_length=8, n_pivots=16, prefix_length=4,
                            capacity=100, sample_fraction=0.3,
                            n_input_partitions=8, seed=5)
        a = ClimberIndex.build(ds, cfg)
        b = ClimberIndex.build(ds, cfg)
        assert a.skeleton.to_bytes() == b.skeleton.to_bytes()
        assert a.dfs.list_partitions() == b.dfs.list_partitions()

    def test_rejects_word_longer_than_series(self):
        ds = random_walk_dataset(100, 16, seed=1)
        cfg = ClimberConfig(word_length=32, n_pivots=8, prefix_length=4,
                            capacity=50, sample_fraction=0.5)
        with pytest.raises(ConfigurationError):
            ClimberIndex.build(ds, cfg)

    def test_rejects_pivots_exceeding_sample(self):
        ds = random_walk_dataset(100, 32, seed=1)
        cfg = ClimberConfig(word_length=8, n_pivots=90, prefix_length=4,
                            capacity=50, sample_fraction=0.05,
                            n_input_partitions=20)
        with pytest.raises(ConfigurationError):
            ClimberIndex.build(ds, cfg)

    def test_custom_dfs_used(self):
        ds = random_walk_dataset(500, 32, seed=2)
        dfs = SimulatedDFS()
        cfg = ClimberConfig(word_length=8, n_pivots=16, prefix_length=4,
                            capacity=100, sample_fraction=0.3,
                            n_input_partitions=8)
        idx = ClimberIndex.build(ds, cfg, dfs=dfs)
        assert idx.dfs is dfs
        assert len(dfs) > 0


class TestQueryRouting:
    def test_signature_matches_pivot_machinery(self, built, std_index_config):
        from repro.pivots import permutation_prefixes
        from repro.series import paa_transform

        ds, idx = built
        q = ds.values[17]
        sig = idx.query_signature(q)
        paa = paa_transform(q.reshape(1, -1), std_index_config.word_length)
        expect = permutation_prefixes(
            paa, idx.pivots, std_index_config.prefix_length
        )[0]
        np.testing.assert_array_equal(sig, expect)

    def test_candidates_share_smallest_od(self, built):
        ds, idx = built
        cands = idx.group_candidates(idx.query_signature(ds.values[5]))
        assert len(cands) >= 1
        ods = {c.od for c in cands}
        assert len(ods) == 1

    def test_candidates_sorted_by_wd(self, built):
        ds, idx = built
        cands = idx.group_candidates(idx.query_signature(ds.values[9]))
        wds = [c.wd for c in cands]
        assert wds == sorted(wds)

    def test_primary_selection_prefers_deeper_node(self, built):
        ds, idx = built
        cands = idx.group_candidates(idx.query_signature(ds.values[3]))
        primary = idx.select_primary(cands)
        best_wd = min(c.wd for c in cands)
        tied = [c for c in cands if c.wd <= best_wd + 1e-12]
        assert primary.path_len == max(c.path_len for c in tied)


class TestQueryVariants:
    def test_result_shapes(self, built):
        ds, idx = built
        res = idx.knn(ds.values[0], 10)
        assert res.ids.shape == (10,)
        assert res.distances.shape == (10,)
        assert np.all(np.diff(res.distances) >= 0)

    def test_query_finds_itself(self, built):
        """A dataset member queried against the index returns itself first."""
        ds, idx = built
        hits = 0
        for i in (0, 100, 500, 999, 1500, 2999):
            res = idx.knn(ds.values[i], 5)
            if res.ids[0] == ds.ids[i] and res.distances[0] < 1e-9:
                hits += 1
        assert hits >= 5  # signature routing is exact for seen objects

    def test_knn_single_node_partitions(self, built):
        ds, idx = built
        res = idx.knn(ds.values[42], 10, variant="knn")
        assert res.stats.n_partitions >= 1
        assert res.stats.variant == "knn"

    def test_adaptive_equals_knn_for_small_k(self, built):
        """Paper Fig. 9: with small K the adaptive variants match CLIMBER-kNN."""
        ds, idx = built
        for i in (7, 77, 777):
            a = idx.knn(ds.values[i], 5, variant="knn")
            b = idx.knn(ds.values[i], 5, variant="adaptive")
            if a.stats.gn_size >= 5:
                np.testing.assert_array_equal(a.ids, b.ids)

    def test_adaptive_expands_for_large_k(self, built):
        ds, idx = built
        expanded = 0
        for i in range(0, 300, 20):
            a = idx.knn(ds.values[i], 200, variant="knn")
            b = idx.knn(ds.values[i], 200, variant="adaptive")
            if b.stats.n_partitions > a.stats.n_partitions:
                expanded += 1
        assert expanded > 0

    def test_adaptive_respects_partition_budget(self, built):
        ds, idx = built
        for i in range(0, 200, 25):
            knn = idx.knn(ds.values[i], 400, variant="knn")
            for factor in (2, 4):
                res = idx.knn(ds.values[i], 400, variant="adaptive",
                              adaptive_factor=factor)
                assert res.stats.n_partitions <= max(
                    factor * max(1, knn.stats.n_partitions), 1
                )

    def test_od_smallest_reads_most_data(self, built):
        """Fig. 11(b): OD-Smallest accesses more data than the variants."""
        ds, idx = built
        q = ds.values[8]
        knn_bytes = idx.knn(q, 10, variant="knn").stats.data_bytes
        od_bytes = idx.knn(q, 10, variant="od-smallest").stats.data_bytes
        assert od_bytes >= knn_bytes

    def test_recall_ordering_across_variants(self, built):
        """OD-Smallest >= Adaptive >= kNN - tolerance, averaged over queries."""
        ds, idx = built
        qs = sample_queries(ds, 15, seed=5)
        k = 50

        def mean_recall(variant):
            total = 0.0
            for q in qs.values:
                exact, _ = knn_bruteforce(q, ds.values, ds.ids, k)
                got = idx.knn(q, k, variant=variant)
                total += len(set(got.ids) & set(exact)) / k
            return total / qs.count

        r_knn = mean_recall("knn")
        r_adp = mean_recall("adaptive")
        r_ods = mean_recall("od-smallest")
        assert r_ods >= r_adp - 0.02
        assert r_adp >= r_knn - 0.02
        assert r_adp > 0.3  # sanity: far better than random

    def test_invalid_inputs(self, built):
        ds, idx = built
        with pytest.raises(ConfigurationError):
            idx.knn(ds.values[0], 0)
        with pytest.raises(ConfigurationError):
            idx.knn(ds.values[0], 5, variant="magic")

    def test_stats_sim_seconds_positive(self, built):
        ds, idx = built
        res = idx.knn(ds.values[1], 5)
        assert res.stats.sim_seconds > 0
        assert res.stats.wall_seconds > 0
        assert res.stats.records_examined >= len(res.ids)

    def test_stats_partitions_exist_in_dfs(self, built):
        ds, idx = built
        res = idx.knn(ds.values[2], 5)
        for pname in res.stats.partitions_loaded:
            assert idx.dfs.has_partition(pname)


class TestSmallIndexEdges:
    """Satellite edges: ``k`` exceeding the record count, and the
    zero-denominator coverage guard, exercised through the real query
    paths rather than synthetic stats."""

    @pytest.fixture(scope="class")
    def tiny(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal((12, 32))
        cfg = ClimberConfig(
            word_length=8, n_pivots=8, prefix_length=3, capacity=8,
            sample_fraction=1.0, seed=5, n_input_partitions=1,
        )
        from repro.series import SeriesDataset

        dataset = SeriesDataset(values)
        return dataset, ClimberIndex.build(dataset, cfg)

    def test_knn_k_exceeds_records(self, tiny):
        ds, idx = tiny
        res = idx.knn(ds.values[0], 50)
        assert res.ids.shape[0] <= 12
        assert res.ids.shape[0] == res.distances.shape[0]
        assert len(set(res.ids.tolist())) == res.ids.shape[0]
        assert res.stats.coverage == 1.0
        assert res.stats.visit_coverage == 1.0
        assert not res.stats.degraded
        # Everything reachable was examined: the answer is the exact
        # brute-force answer over the whole dataset.
        exact_ids, exact_d = knn_bruteforce(
            ds.values[0], ds.values, ds.ids, 50
        )
        assert set(res.ids.tolist()) <= set(exact_ids.tolist())

    def test_knn_batch_k_exceeds_records(self, tiny):
        ds, idx = tiny
        results = idx.knn_batch(ds.values[:4], 50)
        assert len(results) == 4
        for res in results:
            assert 0 < res.ids.shape[0] <= 12
            assert res.stats.coverage == 1.0

    def test_explain_k_exceeds_records(self, tiny):
        ds, idx = tiny
        out = idx.explain_query(ds.values[:3], 50)
        assert out["mode"] == "knn_batch"
        # Satellite 1 regression: the aggregate coverage must survive
        # whatever denominators tiny plans produce.
        assert 0.0 < out["totals"]["coverage"] <= 1.0
        for entry in out["queries"]:
            assert len(entry["ids"]) <= 12

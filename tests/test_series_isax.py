"""Tests for iSAX words, the iSAX space, and the MINDIST pruning bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.series import (
    ISaxSpace,
    ISaxWord,
    euclidean,
    paa_transform,
    znormalize,
)


@pytest.fixture(scope="module")
def space() -> ISaxSpace:
    return ISaxSpace(word_length=4, series_length=32, max_bits=8)


@pytest.fixture(scope="module")
def sample_data():
    rng = np.random.default_rng(42)
    data = znormalize(rng.normal(size=(300, 32)).cumsum(axis=1))
    return data


class TestISaxWord:
    def test_str_rendering(self):
        w = ISaxWord((0, 2, 0), (2, 3, 0))
        assert str(w) == "[00,010,*]"

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ISaxWord((0, 1), (1,))

    def test_rejects_symbol_out_of_bit_range(self):
        with pytest.raises(ConfigurationError):
            ISaxWord((4,), (2,))

    def test_split_produces_two_children(self):
        w = ISaxWord((1,), (1,))
        c0, c1 = w.split(0)
        assert c0.symbols == (2,) and c0.bits == (2,)
        assert c1.symbols == (3,) and c1.bits == (2,)

    def test_split_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ISaxWord((0,), (1,)).split(3)

    def test_parent_covers_children(self):
        w = ISaxWord((1, 0), (1, 1))
        c0, c1 = w.split(0)
        assert w.covers(c0)
        assert w.covers(c1)
        assert not c0.covers(w)

    def test_siblings_do_not_cover_each_other(self):
        c0, c1 = ISaxWord((1,), (1,)).split(0)
        assert not c0.covers(c1)
        assert not c1.covers(c0)

    def test_root_covers_everything(self):
        root = ISaxWord((0, 0), (0, 0))
        assert root.covers(ISaxWord((3, 1), (2, 2)))


class TestISaxSpace:
    def test_encode_shape(self, space, sample_data):
        paa = paa_transform(sample_data, 4)
        syms = space.encode_paa(paa)
        assert syms.shape == (300, 4)
        assert syms.max() < 256

    def test_encode_rejects_wrong_word_length(self, space):
        with pytest.raises(ConfigurationError):
            space.encode_paa(np.zeros((2, 5)))

    def test_word_at_prefix_consistency(self, space, sample_data):
        """Coarsening must equal right-shifting the full symbols."""
        paa = paa_transform(sample_data, 4)
        full = space.encode_paa(paa)
        w = space.word_at(full[0], (2, 2, 2, 2))
        expect = tuple(int(s) >> 6 for s in full[0])
        assert w.symbols == expect

    def test_word_at_zero_bits_is_wildcard(self, space, sample_data):
        paa = paa_transform(sample_data, 4)
        full = space.encode_paa(paa)
        w = space.word_at(full[0], (0, 0, 0, 0))
        assert w == space.root_word()

    def test_matches_root_covers_all(self, space, sample_data):
        full = space.encode_paa(paa_transform(sample_data, 4))
        mask = space.matches(space.root_word(), full)
        assert mask.all()

    def test_matches_partitions_space(self, space, sample_data):
        """Splitting a word partitions the set it covers into its children."""
        full = space.encode_paa(paa_transform(sample_data, 4))
        word = space.root_word()
        c0, c1 = word.split(0)
        m0 = space.matches(c0, full)
        m1 = space.matches(c1, full)
        assert not np.any(m0 & m1)
        assert np.all(m0 | m1)

    def test_own_word_matches_self(self, space, sample_data):
        full = space.encode_paa(paa_transform(sample_data, 4))
        for i in range(0, 300, 50):
            w = space.word_at(full[i], (8, 8, 8, 8))
            assert space.matches(w, full[i : i + 1])[0]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ISaxSpace(0, 32)
        with pytest.raises(ConfigurationError):
            ISaxSpace(4, 32, max_bits=0)
        with pytest.raises(ConfigurationError):
            ISaxSpace(40, 32)


class TestMindist:
    def test_covering_word_gives_zero(self, space, sample_data):
        paa = paa_transform(sample_data, 4)
        full = space.encode_paa(paa)
        w = space.word_at(full[0], (3, 3, 3, 3))
        assert space.mindist_paa(paa[0], w) == 0.0

    def test_lower_bounds_true_distance(self, space, sample_data):
        """Core pruning invariant: MINDIST(q, word) <= ED(q, any covered series)."""
        paa = paa_transform(sample_data, 4)
        full = space.encode_paa(paa)
        q_idx = 5
        for bits in [(1, 1, 1, 1), (3, 3, 3, 3), (8, 8, 8, 8)]:
            for i in range(0, 300, 17):
                w = space.word_at(full[i], bits)
                lb = space.mindist_paa(paa[q_idx], w)
                assert lb <= euclidean(sample_data[q_idx], sample_data[i]) + 1e-9

    def test_wildcard_segments_contribute_zero(self, space):
        q = np.array([5.0, 5.0, 5.0, 5.0])
        assert space.mindist_paa(q, space.root_word()) == 0.0

    def test_monotone_under_refinement(self, space, sample_data):
        """Refining a word can only increase (never decrease) MINDIST."""
        paa = paa_transform(sample_data, 4)
        full = space.encode_paa(paa)
        q = paa[3]
        prev = 0.0
        for b in range(0, 9):
            w = space.word_at(full[100], (b, b, b, b))
            lb = space.mindist_paa(q, w)
            assert lb >= prev - 1e-12
            prev = lb


@given(st.integers(1, 6), st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_split_preserves_coverage(bits, raw_symbol):
    """Property: the union of a split's children covers exactly the parent."""
    symbol = raw_symbol % (1 << bits)
    parent = ISaxWord((symbol,), (bits,))
    c0, c1 = parent.split(0)
    # Any refinement of the parent at bits+1 must fall in exactly one child.
    for next_bit in (0, 1):
        refined = ISaxWord(((symbol << 1) | next_bit,), (bits + 1,))
        assert parent.covers(refined)
        assert c0.covers(refined) != c1.covers(refined)

"""Tests for the resilience layer: fault plans, injector, retry policy.

The layer's defining property is determinism: every fault and jitter
value is a pure function of ``(seed, blob name, attempt, salt)``, so the
same plan produces the same schedule in every process and for every
worker count.  These tests pin that down at the unit level plus the DFS
integration (retries, counters, degraded reads); end-to-end chaos runs
live in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    PartitionLostError,
    ReadTimeoutError,
    TransientReadError,
)
from repro.resilience import (
    FaultDecision,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.resilience.faults import stable_uniform
from repro.storage import PartitionFile, SimulatedDFS
from repro.storage.engine import MemoryBackend


def make_partition(pid="p0", n_clusters=3, per_cluster=5, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


class TestStableUniform:
    def test_deterministic_and_uniformish(self):
        a = stable_uniform(7, "blob", 0, "transient")
        b = stable_uniform(7, "blob", 0, "transient")
        assert a == b
        assert 0.0 <= a < 1.0
        draws = [
            stable_uniform(7, f"blob{i}", 0, "transient") for i in range(200)
        ]
        assert 0.3 < sum(draws) / len(draws) < 0.7

    def test_sensitive_to_every_argument(self):
        base = stable_uniform(7, "blob", 0, "transient")
        assert stable_uniform(8, "blob", 0, "transient") != base
        assert stable_uniform(7, "blob2", 0, "transient") != base
        assert stable_uniform(7, "blob", 1, "transient") != base
        assert stable_uniform(7, "blob", 0, "flip") != base


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(straggler_delay_s=-1)

    def test_active_flag(self):
        assert not FaultPlan(seed=3).active
        assert FaultPlan(seed=3, transient_rate=0.1).active
        assert FaultPlan(seed=3, loss_rate=0.1).active

    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=11, transient_rate=0.3, bit_flip_rate=0.3,
                         straggler_rate=0.3)
        for attempt in range(5):
            d1 = plan.decide("blob.part", attempt, 4096)
            d2 = plan.decide("blob.part", attempt, 4096)
            assert d1 == d2

    def test_loss_is_per_blob_not_per_attempt(self):
        plan = FaultPlan(seed=5, loss_rate=0.5)
        names = [f"b{i}.part" for i in range(64)]
        lost = [n for n in names if plan.lost(n)]
        assert 0 < len(lost) < len(names)
        for name in lost:
            for attempt in range(4):
                assert plan.decide(name, attempt, 100).lost

    def test_zero_rate_plan_is_all_clean(self):
        plan = FaultPlan(seed=123)
        for i in range(32):
            assert plan.decide(f"b{i}.part", 0, 1000) == FaultDecision.CLEAN

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({"CLIMBER_FAULT_SEED": "42"})
        assert plan is not None
        assert plan.seed == 42
        assert plan.transient_rate == pytest.approx(0.02)
        assert plan.loss_rate == 0.0
        plan = FaultPlan.from_env({
            "CLIMBER_FAULT_SEED": "1",
            "CLIMBER_FAULT_RATE": "0.5",
            "CLIMBER_FAULT_LOSS_RATE": "0.25",
            "CLIMBER_FAULT_BITFLIP_RATE": "0.125",
            "CLIMBER_FAULT_STRAGGLER_RATE": "0.0625",
        })
        assert plan.transient_rate == pytest.approx(0.5)
        assert plan.loss_rate == pytest.approx(0.25)
        assert plan.bit_flip_rate == pytest.approx(0.125)
        assert plan.straggler_rate == pytest.approx(0.0625)
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env({"CLIMBER_FAULT_SEED": "nope"})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env({"CLIMBER_FAULT_SEED": "1",
                                "CLIMBER_FAULT_RATE": "many"})


class TestFaultInjector:
    def _store(self, plan, payload=b"x" * 256, name="b.part"):
        backend = MemoryBackend()
        backend.write(name, payload)
        return FaultInjector(backend, plan), name

    def test_reads_outside_attempts_are_clean(self):
        injector, name = self._store(
            FaultPlan(seed=0, transient_rate=1.0, bit_flip_rate=1.0)
        )
        # No begin_attempt: metadata-style reads pass through untouched.
        assert bytes(injector.read_range(name, 0, 8)) == b"x" * 8

    def test_transient_raises_only_on_faulted_attempts(self):
        plan = FaultPlan(seed=2, transient_rate=0.5)
        injector, name = self._store(plan)
        outcomes = []
        for attempt in range(8):
            injector.begin_attempt(name)
            try:
                injector.read_range(name, 0, 8)
                outcomes.append(False)
            except TransientReadError:
                outcomes.append(True)
        expected = [
            plan.decide(name, attempt, 256).transient for attempt in range(8)
        ]
        assert outcomes == expected
        assert any(outcomes) and not all(outcomes)

    def test_lost_blob_raises_forever(self):
        plan = FaultPlan(seed=0, loss_rate=1.0)
        injector, name = self._store(plan)
        for _ in range(3):
            injector.begin_attempt(name)
            with pytest.raises(PartitionLostError):
                injector.read_range(name, 0, 8)

    def test_bit_flip_served_without_touching_store(self):
        plan = FaultPlan(seed=9, bit_flip_rate=1.0)
        payload = bytes(range(256))
        injector, name = self._store(plan, payload=payload)
        injector.begin_attempt(name)
        decision = plan.decide(name, 0, len(payload))
        assert decision.flip_byte >= 0
        served = bytes(injector.read_range(name, 0, len(payload)))
        assert served != payload
        diff = [i for i in range(256) if served[i] != payload[i]]
        assert diff == [decision.flip_byte]
        assert served[decision.flip_byte] ^ payload[decision.flip_byte] \
            == 1 << decision.flip_bit
        # The stored bytes were never modified.
        assert bytes(injector.inner.read_range(name, 0, len(payload))) \
            == payload

    def test_flip_outside_requested_range_leaves_read_clean(self):
        plan = FaultPlan(seed=9, bit_flip_rate=1.0)
        payload = bytes(range(256))
        injector, name = self._store(plan, payload=payload)
        injector.begin_attempt(name)
        flip = plan.decide(name, 0, len(payload)).flip_byte
        lo, hi = (0, flip) if flip > 0 else (flip + 1, len(payload))
        if hi > lo:
            assert bytes(injector.read_range(name, lo, hi - lo)) \
                == payload[lo:hi]

    def test_attempt_counter_is_per_name(self):
        injector, name = self._store(FaultPlan(seed=0))
        injector.inner.write("other.part", b"y" * 16)
        assert injector.attempts(name) == 0
        injector.begin_attempt(name)
        injector.begin_attempt(name)
        injector.begin_attempt("other.part")
        assert injector.attempts(name) == 2
        assert injector.attempts("other.part") == 1

    def test_writes_pass_through(self):
        injector, _ = self._store(FaultPlan(seed=0, transient_rate=1.0))
        injector.write("new.part", b"abc")
        assert injector.exists("new.part")
        assert injector.size("new.part") == 3
        assert "new.part" in injector.list_names()
        injector.delete("new.part")
        assert not injector.exists("new.part")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_s=0)
        assert RetryPolicy.none().max_attempts == 1

    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.001, backoff_multiplier=2.0,
                             jitter=0.5, seed=4)
        d1 = policy.backoff_delay("b.part", 1)
        d2 = policy.backoff_delay("b.part", 2)
        assert d1 == policy.backoff_delay("b.part", 1)
        assert 0.001 <= d1 <= 0.0015
        assert 0.002 <= d2 <= 0.003
        with pytest.raises(ConfigurationError):
            policy.backoff_delay("b.part", 0)


class TestDfsRetryIntegration:
    def _dfs(self, plan, retry_policy=None, **kwargs):
        dfs = SimulatedDFS(fault_plan=plan, retry_policy=retry_policy,
                           **kwargs)
        dfs.write_partition(make_partition("p0"))
        return dfs

    def _faulted_attempt_plan(self, n_faults: int) -> FaultPlan:
        """A plan whose first ``n_faults`` attempts on p0 are transient.

        Scans seeds until the stable hash yields the wanted prefix —
        deterministic thereafter (the schedule is a pure function of the
        seed).
        """
        name = "p0.part"
        for seed in range(10_000):
            plan = FaultPlan(seed=seed, transient_rate=0.5)
            flags = [plan.decide(name, a, 1).transient for a in range(n_faults + 1)]
            if all(flags[:n_faults]) and not flags[n_faults]:
                return plan
        raise AssertionError("no seed found")  # pragma: no cover

    def test_transient_fault_recovers_and_counts_retry(self):
        plan = self._faulted_attempt_plan(1)
        dfs = self._dfs(plan, RetryPolicy(max_attempts=3,
                                          backoff_base_s=0.0))
        part = dfs.read_partition("p0")
        assert part.record_count == 15
        c = dfs.counters
        assert c.retries == 1
        assert c.read_failures == 0
        assert c.partitions_read == 1
        assert c.bytes_read > 0

    def test_retry_exhaustion_fails_and_charges_nothing_logical(self):
        plan = self._faulted_attempt_plan(3)
        dfs = self._dfs(plan, RetryPolicy(max_attempts=2,
                                          backoff_base_s=0.0))
        with pytest.raises(TransientReadError):
            dfs.read_partition("p0")
        c = dfs.counters
        assert c.read_failures == 1
        assert c.retries == 1
        assert c.partitions_read == 0
        assert c.bytes_read == 0
        # The schedule keeps advancing: attempt 3 is clean, so the next
        # logical read succeeds.
        part = dfs.read_partition("p0")
        assert part.record_count == 15
        assert dfs.counters.partitions_read == 1

    def test_lost_partition_never_retried(self):
        plan = FaultPlan(seed=0, loss_rate=1.0)
        dfs = self._dfs(plan, RetryPolicy(max_attempts=5,
                                          backoff_base_s=0.0))
        with pytest.raises(PartitionLostError):
            dfs.read_partition("p0")
        c = dfs.counters
        assert c.retries == 0
        assert c.read_failures == 1
        assert dfs.fault_injector.attempts("p0.part") == 1

    def test_straggler_blows_deadline_then_recovers(self):
        name = "p0.part"
        for seed in range(10_000):
            plan = FaultPlan(seed=seed, straggler_rate=0.5,
                             straggler_delay_s=0.05)
            d = [plan.decide(name, a, 1).straggle_s > 0 for a in range(2)]
            if d[0] and not d[1]:
                break
        else:  # pragma: no cover
            raise AssertionError("no seed found")
        dfs = self._dfs(plan, RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                                          deadline_s=0.01))
        part = dfs.read_partition("p0")
        assert part.record_count == 15
        c = dfs.counters
        assert c.retries == 1
        assert c.read_failures == 0

    def test_deadline_exhaustion_raises_timeout(self):
        plan = FaultPlan(seed=0, straggler_rate=1.0, straggler_delay_s=0.05)
        dfs = self._dfs(plan, RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                                          deadline_s=0.01))
        with pytest.raises(ReadTimeoutError):
            dfs.read_partition("p0")
        assert dfs.counters.read_failures == 1

    def test_bit_flip_detected_retried_and_recovered(self):
        # Eager verification checks every section inside the retry loop, so
        # a per-attempt flip in a checksummed section is caught and the
        # clean next attempt succeeds.  The seed scan targets the values
        # section: flips landing in alignment padding are (correctly)
        # invisible — no CRC covers bytes no reader ever uses.
        from repro.storage.engine import decode_v2_header, encode_partition_v2

        name = "p0.part"
        payload = encode_partition_v2(make_partition("p0"))
        h = decode_v2_header(payload)
        for seed in range(10_000):
            plan = FaultPlan(seed=seed, bit_flip_rate=0.5)
            d = [plan.decide(name, a, len(payload)) for a in range(2)]
            values_end = h.values_offset + h.n_records * h.row_nbytes
            if (h.values_offset <= d[0].flip_byte < values_end
                    and d[1].flip_byte < 0):
                break
        else:  # pragma: no cover
            raise AssertionError("no seed found")
        dfs = SimulatedDFS(fault_plan=plan,
                           retry_policy=RetryPolicy(max_attempts=3,
                                                    backoff_base_s=0.0),
                           verify="eager")
        ref = make_partition("p0")
        dfs.write_partition(ref)
        part = dfs.read_partition("p0")
        np.testing.assert_array_equal(part.read_all()[0], ref.ids)
        np.testing.assert_array_equal(part.read_all()[1], ref.values)
        c = dfs.counters
        assert c.retries >= 1
        assert c.corruption_detected >= 1
        assert c.read_failures == 0

    def test_zero_fault_plan_is_byte_transparent(self):
        ref = SimulatedDFS()
        ref.write_partition(make_partition("p0"))
        wrapped = self._dfs(FaultPlan(seed=99))
        assert wrapped.fault_injector is not None
        a = wrapped.read_partition("p0")
        b = ref.read_partition("p0")
        np.testing.assert_array_equal(a.read_all()[0], b.read_all()[0])
        np.testing.assert_array_equal(a.read_all()[1], b.read_all()[1])
        ca, cb = wrapped.counters, ref.counters
        assert ca == cb
        assert ca.retries == 0 and ca.read_failures == 0

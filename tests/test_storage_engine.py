"""Tests for the zero-copy storage engine: format v2, backends, engine.

Covers the v1<->v2 format round-trip, legacy-payload migration (v1 headers
without size metadata), truncated/corrupt-header error paths, and the
zero-copy properties the benchmark relies on.
"""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.exceptions import PartitionNotFoundError, StorageError
from repro.storage import PartitionFile, SimulatedDFS
from repro.storage.engine import (
    FORMAT_V2_MAGIC,
    LocalDiskBackend,
    MemoryBackend,
    PartitionV2View,
    StorageBackend,
    StorageEngine,
    decode_v2_header,
    encode_partition_v2,
    is_v2_payload,
)
from repro.storage.engine.format import HEADER_SIZE, PAYLOAD_ALIGNMENT
from repro.storage.serialization import (
    array_to_bytes,
    json_to_bytes,
    write_blob,
)


def make_partition(pid="p0", n_clusters=3, per_cluster=5, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


def memory_view(part: PartitionFile) -> tuple[PartitionV2View, bytes]:
    payload = encode_partition_v2(part)
    backend = MemoryBackend()
    backend.write("x", payload)
    view = PartitionV2View(
        lambda off, length: backend.read_range("x", off, length),
        physical_size=len(payload),
    )
    return view, payload


def legacy_v1_payload(part: PartitionFile) -> bytes:
    """A v1 payload as written *before* size metadata existed."""
    buf = io.BytesIO()
    write_blob(buf, json_to_bytes(
        {"partition_id": part.partition_id,
         "header": {k: list(v) for k, v in part.header.items()}}
    ))
    write_blob(buf, array_to_bytes(part.ids))
    write_blob(buf, array_to_bytes(part.values))
    return buf.getvalue()


class TestFormatV2:
    def test_roundtrip_preserves_everything(self):
        part = make_partition(seed=3)
        view, _ = memory_view(part)
        assert view.partition_id == part.partition_id
        assert view.header == part.header
        assert view.record_count == part.record_count
        assert view.series_length == part.series_length
        np.testing.assert_array_equal(view.ids, part.ids)
        np.testing.assert_array_equal(view.values, part.values)

    def test_logical_nbytes_matches_v1(self):
        part = make_partition(n_clusters=4, per_cluster=7, seed=1)
        view, _ = memory_view(part)
        assert view.nbytes == part.nbytes

    def test_payloads_are_64_byte_aligned(self):
        part = make_partition()
        _, payload = memory_view(part)
        header = decode_v2_header(payload)
        assert header.ids_offset % PAYLOAD_ALIGNMENT == 0
        assert header.values_offset % PAYLOAD_ALIGNMENT == 0

    def test_cluster_reads_match_v1(self):
        part = make_partition(n_clusters=4, per_cluster=3, seed=5)
        view, _ = memory_view(part)
        for key in part.cluster_keys():
            vid, vval = view.read_cluster(key)
            pid_, pval = part.read_cluster(key)
            np.testing.assert_array_equal(vid, pid_)
            np.testing.assert_array_equal(vval, pval)
        keys = part.cluster_keys()[::2]
        vid, vval = view.read_clusters(keys)
        pid_, pval = part.read_clusters(keys)
        np.testing.assert_array_equal(vid, pid_)
        np.testing.assert_array_equal(vval, pval)

    def test_reads_are_zero_copy_views(self):
        part = make_partition()
        payload = encode_partition_v2(part)
        backend = MemoryBackend()
        backend.write("x", payload)
        view = PartitionV2View(
            lambda off, length: backend.read_range("x", off, length)
        )
        ids, values = view.read_all()
        raw = np.frombuffer(backend._blobs["x"], dtype=np.uint8)
        assert np.shares_memory(ids, raw)
        assert np.shares_memory(values, raw)
        assert not values.flags.writeable

    def test_adjacent_clusters_coalesce_into_one_view(self):
        part = make_partition(n_clusters=3, per_cluster=4)
        view, _ = memory_view(part)
        ids, values = view.read_clusters(view.cluster_keys())
        # All three clusters are contiguous -> a single mapped run, so the
        # result is still a view into the backing buffer (no concatenate).
        assert not values.flags.writeable
        np.testing.assert_array_equal(ids, part.ids)

    def test_materialised_bytes_tracks_mapped_ranges(self):
        part = make_partition(n_clusters=4, per_cluster=8, length=16)
        view, payload = memory_view(part)
        base = view.materialised_bytes
        assert base < len(payload) / 4  # header + directory only
        view.read_cluster(part.cluster_keys()[0])
        per_cluster_bytes = 8 * (8 + 16 * 8)
        assert view.materialised_bytes == base + per_cluster_bytes

    def test_missing_cluster_raises(self):
        view, _ = memory_view(make_partition())
        with pytest.raises(StorageError):
            view.read_cluster("nope")
        with pytest.raises(StorageError):
            view.read_clusters(["nope"])

    def test_empty_read_clusters_raises(self):
        view, _ = memory_view(make_partition())
        with pytest.raises(StorageError):
            view.read_clusters([])

    def test_to_partition_file_roundtrip(self):
        part = make_partition(seed=7)
        view, _ = memory_view(part)
        back = view.to_partition_file()
        assert back.header == part.header
        np.testing.assert_array_equal(back.ids, part.ids)
        np.testing.assert_array_equal(back.values, part.values)
        back.values[0, 0] = 42.0  # materialised copy is writable
        restored = PartitionFile.from_bytes(back.to_bytes())
        assert restored.partition_id == part.partition_id

    def test_is_v2_payload_discriminates_formats(self):
        part = make_partition()
        assert is_v2_payload(encode_partition_v2(part))
        assert not is_v2_payload(part.to_bytes())
        assert not is_v2_payload(b"")


class TestFormatV2Corruption:
    def _reader(self, payload: bytes):
        backend = MemoryBackend()
        backend.write("x", payload)
        return lambda off, length: backend.read_range("x", off, length)

    def test_truncated_header(self):
        payload = encode_partition_v2(make_partition())
        with pytest.raises(StorageError, match="truncated"):
            decode_v2_header(payload[:HEADER_SIZE - 1])

    def test_bad_magic(self):
        payload = bytearray(encode_partition_v2(make_partition()))
        payload[:8] = b"NOTMAGIC"
        with pytest.raises(StorageError, match="magic"):
            decode_v2_header(bytes(payload))

    def test_unsupported_version(self):
        payload = bytearray(encode_partition_v2(make_partition()))
        struct.pack_into("<I", payload, 8, 99)
        with pytest.raises(StorageError, match="version"):
            decode_v2_header(bytes(payload))

    def test_physical_size_mismatch(self):
        payload = encode_partition_v2(make_partition())
        with pytest.raises(StorageError, match="truncated"):
            decode_v2_header(payload, physical_size=len(payload) - 10)

    def test_inconsistent_offsets(self):
        payload = bytearray(encode_partition_v2(make_partition()))
        # values_offset field sits after magic(8)+ver(4)+flags(4)+5 Q fields.
        struct.pack_into("<Q", payload, 16 + 5 * 8, 24)  # unaligned + inside dir
        with pytest.raises(StorageError, match="inconsistent"):
            decode_v2_header(bytes(payload))

    def test_directory_range_outside_payload(self):
        part = make_partition(n_clusters=2, per_cluster=4)
        payload = bytearray(encode_partition_v2(part))
        header = decode_v2_header(bytes(payload))
        # Corrupt the first directory count to exceed n_records.
        struct.pack_into("<q", payload, header.dir_offset + 8 * 2, 10_000)
        with pytest.raises(StorageError, match="directory"):
            PartitionV2View(self._reader(bytes(payload)))

    def test_key_count_mismatch(self):
        part = make_partition(n_clusters=2)
        payload = bytearray(encode_partition_v2(part))
        struct.pack_into("<Q", payload, 16, 3)  # claim 3 clusters, meta has 2
        # Directory offsets stay consistent only if the sizes still line up,
        # so widen via a fresh consistency failure or a key-count error.
        with pytest.raises(StorageError):
            PartitionV2View(self._reader(bytes(payload)))

    def test_truncated_payload_detected_via_backend_bounds(self):
        payload = encode_partition_v2(make_partition())
        backend = MemoryBackend()
        backend.write("x", payload[:-16])
        with pytest.raises(StorageError):
            PartitionV2View(
                lambda off, length: backend.read_range("x", off, length),
                physical_size=len(payload) - 16,
            )


class TestBackends:
    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_write_read_size_delete(self, kind, tmp_path):
        backend = MemoryBackend() if kind == "memory" else LocalDiskBackend(tmp_path)
        assert isinstance(backend, StorageBackend)
        backend.write("a.part", b"0123456789")
        assert backend.exists("a.part")
        assert backend.size("a.part") == 10
        assert bytes(backend.read_range("a.part", 2, 4)) == b"2345"
        assert backend.list_names() == ["a.part"]
        backend.delete("a.part")
        assert not backend.exists("a.part")
        with pytest.raises(PartitionNotFoundError):
            backend.size("a.part")

    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_out_of_range_read_raises(self, kind, tmp_path):
        backend = MemoryBackend() if kind == "memory" else LocalDiskBackend(tmp_path)
        backend.write("a.part", b"0123")
        with pytest.raises(StorageError):
            backend.read_range("a.part", 0, 5)
        with pytest.raises(StorageError):
            backend.read_range("a.part", -1, 2)
        with pytest.raises(PartitionNotFoundError):
            backend.read_range("ghost", 0, 1)

    def test_disk_read_is_mmap_backed_zero_copy(self, tmp_path):
        backend = LocalDiskBackend(tmp_path)
        backend.write("a.part", b"x" * 256)
        first = backend.read_range("a.part", 0, 256)
        second = backend.read_range("a.part", 10, 20)
        assert np.shares_memory(
            np.frombuffer(first, dtype=np.uint8),
            np.frombuffer(second, dtype=np.uint8),
        )
        del first, second
        backend.close()

    def test_disk_rejects_path_traversal_names(self, tmp_path):
        backend = LocalDiskBackend(tmp_path)
        for name in ("../evil", "a/b", ".hidden", ""):
            with pytest.raises(StorageError):
                backend.write(name, b"x")

    def test_disk_handle_cache_is_bounded(self, tmp_path):
        backend = LocalDiskBackend(tmp_path, max_open_handles=4)
        for i in range(10):
            backend.write(f"p{i}.part", bytes(64))
        for i in range(10):
            backend.read_range(f"p{i}.part", 0, 8)
        assert len(backend._maps) <= 4
        # Evicted blobs remain readable (handles reopen on demand).
        assert backend.read_range("p0.part", 0, 8) is not None
        backend.close()

    def test_disk_handle_cap_validated(self, tmp_path):
        with pytest.raises(StorageError):
            LocalDiskBackend(tmp_path, max_open_handles=0)

    def test_disk_overwrite_keeps_live_views_valid(self, tmp_path):
        backend = LocalDiskBackend(tmp_path)
        backend.write("a.part", b"old" * 100)
        live = np.frombuffer(backend.read_range("a.part", 0, 300),
                             dtype=np.uint8)
        backend.write("a.part", b"new" * 100)
        # The atomic-rename overwrite leaves the old inode mapped: the
        # live view still serves the old bytes instead of faulting.
        assert live[:3].tobytes() == b"old"
        assert bytes(backend.read_range("a.part", 0, 3)) == b"new"
        del live
        backend.close()

    def test_disk_overwrite_invalidates_handle(self, tmp_path):
        backend = LocalDiskBackend(tmp_path)
        backend.write("a.part", b"old-bytes")
        assert bytes(backend.read_range("a.part", 0, 3)) == b"old"
        backend.write("a.part", b"new-bytes")
        assert bytes(backend.read_range("a.part", 0, 3)) == b"new"
        backend.close()


class TestStorageEngine:
    def test_rejects_unknown_format(self):
        with pytest.raises(StorageError):
            StorageEngine(MemoryBackend(), partition_format="v3")

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_write_open_roundtrip(self, fmt, tmp_path):
        engine = StorageEngine(LocalDiskBackend(tmp_path), partition_format=fmt)
        part = make_partition("alpha", seed=2)
        engine.write_partition(part)
        handle = engine.open_partition("alpha")
        np.testing.assert_array_equal(handle.ids, part.ids)
        np.testing.assert_array_equal(handle.values, part.values)
        assert handle.nbytes == part.nbytes
        assert engine.list_partitions() == ["alpha"]
        assert engine.has_partition("alpha")
        engine.close()

    def test_v2_engine_reads_v1_payloads_and_vice_versa(self, tmp_path):
        part = make_partition("mixed", seed=6)
        v1 = StorageEngine(LocalDiskBackend(tmp_path / "a"), "v1")
        v1.write_partition(part)
        v2_reader = StorageEngine(LocalDiskBackend(tmp_path / "a"), "v2")
        got = v2_reader.open_partition("mixed")
        assert isinstance(got, PartitionFile)
        np.testing.assert_array_equal(got.values, part.values)

        v2 = StorageEngine(LocalDiskBackend(tmp_path / "b"), "v2")
        v2.write_partition(part)
        v1_reader = StorageEngine(LocalDiskBackend(tmp_path / "b"), "v1")
        got = v1_reader.open_partition("mixed")
        assert isinstance(got, PartitionV2View)
        np.testing.assert_array_equal(got.values, part.values)

    def test_read_cluster_ranges(self):
        engine = StorageEngine(MemoryBackend(), "v2")
        part = make_partition("p", n_clusters=4, per_cluster=3, seed=8)
        engine.write_partition(part)
        keys = part.cluster_keys()[1:3]
        ids, values = engine.read_cluster_ranges("p", keys)
        eids, evals = part.read_clusters(keys)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(values, evals)

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_partition_meta_without_payload(self, fmt):
        engine = StorageEngine(MemoryBackend(), partition_format=fmt)
        part = make_partition("p", n_clusters=2, per_cluster=6, length=12)
        engine.write_partition(part)
        meta = engine.partition_meta("p")
        assert meta.logical_nbytes == part.nbytes
        assert meta.record_count == 12
        assert meta.series_length == 12

    def test_partition_meta_legacy_payload_full_read_fallback(self):
        part = make_partition("old", seed=4)
        backend = MemoryBackend()
        backend.write("old.part", legacy_v1_payload(part))
        engine = StorageEngine(backend, "v2")
        meta = engine.partition_meta("old")
        assert meta.logical_nbytes == part.nbytes
        assert meta.record_count == part.record_count
        assert meta.series_length == part.series_length
        # The legacy payload is also fully openable through the shim.
        got = engine.open_partition("old")
        np.testing.assert_array_equal(got.values, part.values)

    def test_stored_size_from_meta_none_for_legacy(self):
        assert PartitionFile.stored_size_from_meta(
            {"partition_id": "x", "header": {}}
        ) is None

    def test_missing_partition(self):
        engine = StorageEngine(MemoryBackend())
        for fn in (engine.open_partition, engine.partition_meta,
                   engine.physical_nbytes, engine.delete_partition):
            with pytest.raises(PartitionNotFoundError):
                fn("ghost")

    def test_delete_partition(self):
        engine = StorageEngine(MemoryBackend())
        engine.write_partition(make_partition("p"))
        engine.delete_partition("p")
        assert not engine.has_partition("p")

    def test_v2_physical_no_larger_than_v1(self):
        """Alignment padding stays within the v1 framing overhead it drops."""
        part = make_partition(n_clusters=8, per_cluster=16, length=64)
        assert len(encode_partition_v2(part)) <= len(part.to_bytes())


class TestDfsEngineFacade:
    def test_default_format_is_v2(self):
        assert SimulatedDFS().partition_format == "v2"

    def test_rejects_unknown_format(self):
        with pytest.raises(StorageError):
            SimulatedDFS(partition_format="v7")

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_series_length_metadata(self, fmt):
        dfs = SimulatedDFS(partition_format=fmt)
        dfs.write_partition(make_partition("a", length=24))
        assert dfs.series_length("a") == 24
        with pytest.raises(PartitionNotFoundError):
            dfs.series_length("ghost")

    def test_attach_mixed_format_directory(self, tmp_path):
        old = SimulatedDFS(backing_dir=tmp_path, partition_format="v1")
        old.write_partition(make_partition("legacy", seed=1))
        new = SimulatedDFS(backing_dir=tmp_path, partition_format="v2")
        new.write_partition(make_partition("modern", seed=2))
        fresh = SimulatedDFS(backing_dir=tmp_path)
        assert fresh.attach() == 2
        for pid, seed in (("legacy", 1), ("modern", 2)):
            expected = make_partition(pid, seed=seed)
            assert fresh.partition_nbytes(pid) == expected.nbytes
            assert fresh.record_count(pid) == expected.record_count
            assert fresh.series_length(pid) == expected.series_length
            got = fresh.read_partition(pid)
            np.testing.assert_array_equal(got.values, expected.values)

    def test_attach_legacy_payload(self, tmp_path):
        part = make_partition("old", seed=9)
        (tmp_path / "old.part").write_bytes(legacy_v1_payload(part))
        dfs = SimulatedDFS(backing_dir=tmp_path)
        assert dfs.attach() == 1
        assert dfs.partition_nbytes("old") == part.nbytes
        assert dfs.record_count("old") == part.record_count

    def test_cluster_range_read_counts_one_logical_touch(self):
        dfs = SimulatedDFS()
        part = make_partition("a", n_clusters=3, per_cluster=4)
        dfs.write_partition(part)
        key = part.cluster_keys()[1]
        ids, values = dfs.read_partition("a").read_cluster(key)
        eids, evals = part.read_cluster(key)
        np.testing.assert_array_equal(ids, eids)
        np.testing.assert_array_equal(values, evals)
        assert dfs.counters.partitions_read == 1
        assert dfs.counters.bytes_read == part.nbytes

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_logical_counters_format_independent(self, fmt, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path / fmt, partition_format=fmt)
        part = make_partition("a", seed=3)
        dfs.write_partition(part)
        dfs.read_partition("a")
        assert dfs.counters.bytes_written == part.nbytes
        assert dfs.counters.bytes_read == part.nbytes
        assert dfs.counters.partitions_read == 1


class TestWriteArraysValidation:
    def test_v2_rejects_directory_outside_payload(self):
        """The bulk array writer validates cluster ranges like the v1 path."""
        import numpy as np

        from repro.storage import encode_partition_v2_arrays

        ids = np.arange(4, dtype=np.int64)
        values = np.zeros((4, 8))
        with pytest.raises(StorageError):
            encode_partition_v2_arrays("p", ids, values, {"G0": (0, 9)})
        with pytest.raises(StorageError):
            encode_partition_v2_arrays("p", ids, values, {"G0": (-1, 2)})
        with pytest.raises(StorageError):
            encode_partition_v2_arrays("p", ids, values, {})
        with pytest.raises(StorageError):
            encode_partition_v2_arrays(
                "p", ids, values, {"G0": (0, 2)}, rows=np.array([0, 9])
            )
        # A valid directory over gathered rows still round-trips.
        payload = encode_partition_v2_arrays(
            "p", ids, values, {"G0": (0, 2)}, rows=np.array([2, 0])
        )
        from repro.storage.engine.format import PartitionV2View

        view = PartitionV2View(
            lambda off, ln: memoryview(payload)[off:off + ln]
        )
        got_ids, _ = view.read_cluster("G0")
        assert got_ids.tolist() == [2, 0]

"""Tests for PAA segmentation and its lower-bounding property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError
from repro.series import (
    euclidean,
    paa_distance_lower_bound,
    paa_inverse,
    paa_transform,
    znormalize,
)


class TestPaaTransform:
    def test_paper_figure3_example(self):
        """Fig. 3: series of 12 points -> 4 segment means."""
        x = np.array([-1.8, -1.5, -1.2, -0.6, -0.4, -0.2, 0.1, 0.3, 0.5, 1.3, 1.5, 1.7])
        out = paa_transform(x, 4)
        np.testing.assert_allclose(out[0], [-1.5, -0.4, 0.3, 1.5])

    def test_w_equals_n_is_identity(self, rng):
        x = rng.normal(size=(3, 8))
        np.testing.assert_allclose(paa_transform(x, 8), x)

    def test_w_one_is_row_mean(self, rng):
        x = rng.normal(size=(3, 10))
        np.testing.assert_allclose(paa_transform(x, 1)[:, 0], x.mean(axis=1))

    def test_divisible_path_matches_fractional_path(self, rng):
        """The reshape fast path and the weight-matrix path must agree."""
        from repro.series.paa import _fractional_weights

        x = rng.normal(size=(5, 24))
        fast = paa_transform(x, 6)
        slow = x @ _fractional_weights(24, 6).T
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_fractional_segments(self):
        # n=5, w=2: segment boundary falls mid-reading.
        x = np.array([[2.0, 2.0, 2.0, 4.0, 4.0]])
        out = paa_transform(x, 2)
        # Segment 1 covers readings 0,1 and half of 2 -> (2+2+1)/2.5 = 2.0;
        # segment 2 covers the other half of 2 and readings 3,4 -> (1+4+4)/2.5.
        np.testing.assert_allclose(out[0], [2.0, 3.6])

    def test_mean_preserved(self, rng):
        """PAA preserves the overall mean for divisible segmentations."""
        x = rng.normal(size=(4, 32))
        out = paa_transform(x, 8)
        np.testing.assert_allclose(out.mean(axis=1), x.mean(axis=1), atol=1e-12)

    def test_rejects_w_zero(self, rng):
        with pytest.raises(ConfigurationError):
            paa_transform(rng.normal(size=(2, 8)), 0)

    def test_rejects_w_greater_than_n(self, rng):
        with pytest.raises(ConfigurationError):
            paa_transform(rng.normal(size=(2, 8)), 9)

    def test_constant_series(self):
        out = paa_transform(np.full((1, 12), 3.5), 4)
        np.testing.assert_allclose(out, 3.5)


class TestPaaInverse:
    def test_roundtrip_constant_per_segment(self):
        x = np.repeat(np.array([[1.0, 2.0, 3.0]]), 4, axis=1).reshape(1, -1)
        x = np.array([[1.0] * 4 + [2.0] * 4 + [3.0] * 4])
        paa = paa_transform(x, 3)
        recon = paa_inverse(paa, 12)
        np.testing.assert_allclose(recon, x)

    def test_inverse_shape(self):
        out = paa_inverse(np.zeros((2, 4)), 16)
        assert out.shape == (2, 16)

    def test_rejects_length_shorter_than_word(self):
        with pytest.raises(ConfigurationError):
            paa_inverse(np.zeros((1, 8)), 4)

    def test_reconstruction_error_decreases_with_w(self, rng):
        x = znormalize(rng.normal(size=(1, 64)).cumsum(axis=1))
        errors = []
        for w in (2, 8, 32):
            recon = paa_inverse(paa_transform(x, w), 64)
            errors.append(float(((x - recon) ** 2).sum()))
        assert errors[0] >= errors[1] >= errors[2]


class TestPaaLowerBound:
    def test_bounds_euclidean(self, rng):
        x, y = znormalize(rng.normal(size=(2, 64)).cumsum(axis=1))
        lb = paa_distance_lower_bound(
            paa_transform(x, 8)[0], paa_transform(y, 8)[0], 64
        )
        assert lb <= euclidean(x, y) + 1e-9

    def test_word_length_mismatch(self):
        with pytest.raises(ValueError):
            paa_distance_lower_bound(np.zeros(4), np.zeros(5), 64)

    def test_zero_for_identical(self, rng):
        p = paa_transform(rng.normal(size=(1, 32)), 4)[0]
        assert paa_distance_lower_bound(p, p, 32) == 0.0


@given(
    arrays(np.float64, st.tuples(st.just(2), st.sampled_from([16, 24, 32, 48])),
           elements=st.floats(-50, 50, allow_nan=False)),
    st.sampled_from([2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_paa_lower_bound_property(mat, w):
    """Property: sqrt(n/w)*||PAA(x)-PAA(y)|| <= ED(x, y) for any series."""
    x, y = mat
    n = mat.shape[1]
    lb = paa_distance_lower_bound(
        paa_transform(x, w)[0], paa_transform(y, w)[0], n
    )
    assert lb <= euclidean(x, y) + 1e-6


@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(4, 40)),
           elements=st.floats(-50, 50, allow_nan=False)),
    st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_paa_values_within_series_range(mat, w):
    """Property: segment means stay within [min, max] of the series."""
    if w > mat.shape[1]:
        w = mat.shape[1]
    out = paa_transform(mat, w)
    assert out.min() >= mat.min() - 1e-7
    assert out.max() <= mat.max() + 1e-7

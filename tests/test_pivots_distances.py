"""Tests for Overlap Distance, decay weights, Weight Distance, and rank metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.pivots import (
    decay_weights,
    kendall_tau,
    overlap_distance,
    overlap_distance_matrix,
    pack_pivot_sets,
    routing_distances,
    spearman_footrule,
    total_weight,
    weight_distance,
    weight_distance_matrix,
)


class TestOverlapDistance:
    def test_paper_example(self):
        """Section IV-C: OD(<1,3,6,8>, <2,3,4,6>) = 4 - 2 = 2."""
        assert overlap_distance((1, 3, 6, 8), (2, 3, 4, 6)) == 2

    def test_identity(self):
        assert overlap_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_disjoint_is_m(self):
        assert overlap_distance((1, 2), (3, 4)) == 2

    def test_symmetry(self):
        a, b = (1, 5, 9), (5, 2, 7)
        assert overlap_distance(a, b) == overlap_distance(b, a)

    def test_rank_invariance(self):
        """OD only sees the pivot *set* — ordering must not matter."""
        assert overlap_distance((3, 1, 2), (1, 2, 3)) == 0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            overlap_distance((1, 2), (1, 2, 3))


class TestOverlapDistanceMatrix:
    def test_matches_scalar(self, rng):
        m, r = 6, 64
        objs = np.array([rng.choice(r, size=m, replace=False) for _ in range(30)])
        cents = np.array([rng.choice(r, size=m, replace=False) for _ in range(5)])
        mat = overlap_distance_matrix(
            pack_pivot_sets(objs, r), pack_pivot_sets(cents, r), m
        )
        for i in range(30):
            for j in range(5):
                assert mat[i, j] == overlap_distance(objs[i], cents[j])

    def test_range(self, rng):
        m, r = 8, 100
        objs = np.array([rng.choice(r, size=m, replace=False) for _ in range(20)])
        mat = overlap_distance_matrix(
            pack_pivot_sets(objs, r), pack_pivot_sets(objs, r), m
        )
        assert mat.min() >= 0
        assert mat.max() <= m
        np.testing.assert_array_equal(np.diag(mat), 0)

    def test_word_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            overlap_distance_matrix(
                np.zeros((2, 1), dtype=np.uint64),
                np.zeros((2, 2), dtype=np.uint64),
                4,
            )


class TestDecayWeights:
    def test_exponential_paper_sequence(self):
        """Paper: lambda=1/2 gives [1, 1/2, 1/4, ...]."""
        np.testing.assert_allclose(decay_weights(4, "exponential", 0.5),
                                   [1.0, 0.5, 0.25, 0.125])

    def test_linear_paper_sequence(self):
        """Paper: linear decay is [1, (m-1)/m, (m-2)/m, ...] for lambda=1/m."""
        np.testing.assert_allclose(decay_weights(4, "linear"),
                                   [1.0, 0.75, 0.5, 0.25])

    def test_strictly_decreasing(self):
        for kind in ("exponential", "linear"):
            w = decay_weights(10, kind)
            assert np.all(np.diff(w) < 0), kind

    def test_first_weight_is_one(self):
        assert decay_weights(5, "exponential")[0] == 1.0
        assert decay_weights(5, "linear")[0] == 1.0

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            decay_weights(4, "exponential", 1.0)
        with pytest.raises(ConfigurationError):
            decay_weights(4, "linear", -1.0)
        with pytest.raises(ConfigurationError):
            decay_weights(4, "gaussian")  # type: ignore[arg-type]

    def test_total_weight_constant(self):
        """Def. 10: TW is the same for every signature of one configuration."""
        w = decay_weights(3, "exponential", 0.5)
        assert total_weight(w) == pytest.approx(1.75)


class TestWeightDistance:
    def test_paper_example1_object_y(self):
        """Example 1: WD(Y, G1)=1.0 and WD(Y, G2)=0.25 for P4->(Y)=<4,2,1>."""
        w = decay_weights(3, "exponential", 0.5)
        assert weight_distance((4, 2, 1), (1, 2, 3), w) == pytest.approx(1.0)
        assert weight_distance((4, 2, 1), (2, 4, 5), w) == pytest.approx(0.25)

    def test_paper_example1_object_z_tie(self):
        """Example 1: Z ties both groups at WD = 1.25."""
        w = decay_weights(3, "exponential", 0.5)
        assert weight_distance((6, 2, 7), (1, 2, 3), w) == pytest.approx(1.25)
        assert weight_distance((6, 2, 7), (2, 4, 5), w) == pytest.approx(1.25)

    def test_full_overlap_zero(self):
        w = decay_weights(3, "exponential", 0.5)
        assert weight_distance((1, 2, 3), (1, 2, 3), w) == 0.0

    def test_no_overlap_equals_total_weight(self):
        w = decay_weights(3, "exponential", 0.5)
        assert weight_distance((1, 2, 3), (4, 5, 6), w) == pytest.approx(1.75)

    def test_earlier_pivots_count_more(self):
        """A centroid holding the object's nearest pivot beats one holding
        only its farthest pivot."""
        w = decay_weights(3, "exponential", 0.5)
        near = weight_distance((1, 2, 3), (1, 8, 9), w)
        far = weight_distance((1, 2, 3), (3, 8, 9), w)
        assert near < far

    def test_weights_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            weight_distance((1, 2), (1,), decay_weights(3))


class TestWeightDistanceMatrix:
    def test_matches_scalar(self, rng):
        m, r = 5, 80
        w = decay_weights(m, "exponential", 0.5)
        ranked = np.array([rng.choice(r, size=m, replace=False) for _ in range(25)])
        cents = np.array([rng.choice(r, size=m, replace=False) for _ in range(4)])
        mat = weight_distance_matrix(ranked, cents, r, w)
        for i in range(25):
            for j in range(4):
                expect = weight_distance(ranked[i], cents[j], w)
                assert mat[i, j] == pytest.approx(expect)

    def test_accepts_prepacked_centroids(self, rng):
        m, r = 4, 64
        w = decay_weights(m)
        ranked = np.array([rng.choice(r, size=m, replace=False) for _ in range(10)])
        cents = np.array([rng.choice(r, size=m, replace=False) for _ in range(3)])
        a = weight_distance_matrix(ranked, cents, r, w)
        b = weight_distance_matrix(ranked, pack_pivot_sets(cents, r), r, w)
        np.testing.assert_allclose(a, b)

    def test_bounds(self, rng):
        m, r = 6, 100
        w = decay_weights(m)
        ranked = np.array([rng.choice(r, size=m, replace=False) for _ in range(20)])
        cents = np.array([rng.choice(r, size=m, replace=False) for _ in range(6)])
        mat = weight_distance_matrix(ranked, cents, r, w)
        assert mat.min() >= -1e-12
        assert mat.max() <= total_weight(w) + 1e-12


class TestRankMetrics:
    def test_footrule_identity(self):
        assert spearman_footrule((1, 2, 3), (1, 2, 3)) == 0

    def test_footrule_swap(self):
        assert spearman_footrule((1, 2), (2, 1)) == 2

    def test_footrule_requires_same_ids(self):
        with pytest.raises(ConfigurationError):
            spearman_footrule((1, 2), (1, 3))

    def test_kendall_identity(self):
        assert kendall_tau((4, 5, 6), (4, 5, 6)) == 0

    def test_kendall_reverse_is_max(self):
        assert kendall_tau((1, 2, 3, 4), (4, 3, 2, 1)) == 6

    def test_kendall_single_swap(self):
        assert kendall_tau((1, 2, 3), (2, 1, 3)) == 1

    def test_kendall_requires_same_ids(self):
        with pytest.raises(ConfigurationError):
            kendall_tau((1, 2), (3, 4))

    def test_footrule_bounds_kendall(self):
        """Diaconis-Graham: K <= F <= 2K."""
        rng = np.random.default_rng(5)
        for _ in range(20):
            a = rng.permutation(7).tolist()
            b = rng.permutation(7).tolist()
            k = kendall_tau(a, b)
            f = spearman_footrule(a, b)
            assert k <= f <= 2 * k or (k == 0 and f == 0)


class TestRoutingDistances:
    @staticmethod
    def _random_case(rng, r=40, m=6, d=9, k=5):
        ranked = np.array(
            [rng.choice(r, size=m, replace=False) for _ in range(d)],
            dtype=np.int64,
        )
        centroids = np.array(
            [rng.choice(r, size=m, replace=False) for _ in range(k)],
            dtype=np.int64,
        )
        return ranked, centroids

    @pytest.mark.parametrize("decay", ["exponential", "linear"])
    def test_matches_scalar_metrics_bitwise(self, decay):
        rng = np.random.default_rng(17)
        ranked, centroids = self._random_case(rng)
        w = decay_weights(ranked.shape[1], decay)
        packed = pack_pivot_sets(centroids, 40)
        od, wd = routing_distances(ranked, packed, 40, w)
        for i, sig in enumerate(ranked):
            for j, cent in enumerate(centroids):
                assert od[i, j] == overlap_distance(sorted(sig), sorted(cent))
                # Exact equality: the sort order of routing depends on it.
                assert wd[i, j] == weight_distance(sig, cent, w)

    def test_shapes_and_dtypes(self):
        rng = np.random.default_rng(3)
        ranked, centroids = self._random_case(rng, d=4, k=7)
        w = decay_weights(ranked.shape[1])
        od, wd = routing_distances(ranked, pack_pivot_sets(centroids, 40), 40, w)
        assert od.shape == wd.shape == (4, 7)
        assert od.dtype == np.int64 and wd.dtype == np.float64


@given(st.integers(2, 40), st.data())
@settings(max_examples=50, deadline=None)
def test_overlap_distance_is_set_metric(r, data):
    """Property: OD is a metric on equal-size pivot sets (triangle ineq.)."""
    m = data.draw(st.integers(1, min(r, 8)))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    a = tuple(rng.choice(r, size=m, replace=False).tolist())
    b = tuple(rng.choice(r, size=m, replace=False).tolist())
    c = tuple(rng.choice(r, size=m, replace=False).tolist())
    ab = overlap_distance(a, b)
    bc = overlap_distance(b, c)
    ac = overlap_distance(a, c)
    assert 0 <= ac <= m
    assert ac <= ab + bc
    assert ab == overlap_distance(b, a)

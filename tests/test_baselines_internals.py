"""White-box tests for DPiSAX and TARDIS internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DpisaxConfig, DpisaxIndex, TardisConfig, TardisIndex
from repro.baselines.tardis import SigTreeNode
from repro.datasets import random_walk_dataset
from repro.series import paa_transform


@pytest.fixture(scope="module")
def ds():
    return random_walk_dataset(1500, 64, seed=31)


@pytest.fixture(scope="module")
def dpisax(ds):
    return DpisaxIndex.build(
        ds, DpisaxConfig(word_length=8, max_bits=6, capacity=150,
                         leaf_capacity=32, sample_fraction=0.3, seed=7)
    )


@pytest.fixture(scope="module")
def tardis(ds):
    return TardisIndex.build(
        ds, TardisConfig(word_length=8, max_bits=6, capacity=150,
                         leaf_capacity=32, sample_fraction=0.3, seed=7)
    )


class TestDpisaxTable:
    def test_cells_partition_the_word_space(self, ds, dpisax):
        """Every record routes to exactly one leaf cell."""
        space = dpisax.space
        syms = space.encode_paa(paa_transform(ds.values, 8))
        pids = [dpisax._route(dpisax.table, row, space) for row in syms]
        assert min(pids) >= 0
        assert len(set(pids)) > 1  # the table actually splits

    def test_routing_is_deterministic(self, ds, dpisax):
        space = dpisax.space
        syms = space.encode_paa(paa_transform(ds.values[:50], 8))
        a = [dpisax._route(dpisax.table, row, space) for row in syms]
        b = [dpisax._route(dpisax.table, row, space) for row in syms]
        assert a == b

    def test_internal_cells_have_two_children(self, dpisax):
        stack = [dpisax.table]
        while stack:
            cell = stack.pop()
            if not cell.is_leaf:
                assert len(cell.children) == 2
                assert cell.split_segment >= 0
                stack.extend(cell.children)

    def test_local_trees_cover_their_partitions(self, dpisax):
        for pid, tree in dpisax.local_trees.items():
            part = dpisax.dfs.read_partition(f"dpisax{pid}")
            stored = sum(
                leaf.rows.shape[0]
                for leaf in tree.leaves()
                if leaf.rows is not None
            )
            assert stored == part.record_count

    def test_balanced_splits_on_sample(self, ds):
        """The chosen split segments should produce reasonably balanced
        children (DPiSAX picks the most balanced next bit)."""
        index = DpisaxIndex.build(
            ds, DpisaxConfig(word_length=8, max_bits=6, capacity=400,
                             sample_fraction=0.5, seed=1)
        )
        sizes = [
            index.dfs.read_partition(p).record_count
            for p in index.dfs.list_partitions()
        ]
        assert max(sizes) < 12 * max(1, min(sizes))


class TestTardisSigTree:
    def test_children_refine_parent_words(self, tardis):
        stack = [tardis.root]
        while stack:
            node = stack.pop()
            for word, child in node.children.items():
                assert child.bits == node.bits + 1
                for parent_sym, child_sym in zip(node.word, word):
                    assert (child_sym >> 1) == parent_sym
                stack.append(child)

    def test_leaf_counts_account_for_sample_mass(self, tardis):
        leaves = []
        stack = [tardis.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children.values())
        assert sum(l.count for l in leaves) == pytest.approx(tardis.root.count)

    def test_defaults_point_to_existing_partitions(self, tardis):
        stack = [tardis.root]
        while stack:
            node = stack.pop()
            assert node.default_partition >= 0
            stack.extend(node.children.values())

    def test_descend_matches_full_resolution(self, ds, tardis):
        """A record descends to a node whose word covers its symbols."""
        space = tardis.space
        syms = space.encode_paa(paa_transform(ds.values[:100], 8))
        for row in syms:
            node, complete = TardisIndex._descend(tardis.root, row, space)
            if node.bits:
                shift = space.max_bits - node.bits
                assert tuple(int(s) >> shift for s in row) == node.word

    def test_node_key_roundtrip(self):
        node = SigTreeNode(bits=3, word=(5, 0, 7))
        assert node.key() == "3:5.0.7"

    def test_covers_relation(self, tardis):
        node = SigTreeNode(bits=1, word=(1, 0))
        assert TardisIndex._covers(node, 3, (4, 1))   # 4>>2=1, 1>>2=0
        assert not TardisIndex._covers(node, 3, (3, 1))  # 3>>2=0 != 1
        assert not TardisIndex._covers(node, 0, (0, 0))  # coarser than node


class TestSingleVsMultiPartitionInvariant:
    def test_isax_systems_touch_one_partition(self, ds, dpisax, tardis):
        """The paper's structural contrast: baselines are single-partition;
        CLIMBER may adaptively touch several."""
        for i in range(0, 200, 25):
            assert dpisax.knn(ds.values[i], 10).stats.n_partitions == 1
            assert tardis.knn(ds.values[i], 10).stats.n_partitions == 1

"""Tests for incremental appends (delta partitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset
from repro.exceptions import ConfigurationError
from repro.series import knn_bruteforce


CFG = ClimberConfig(word_length=8, n_pivots=24, prefix_length=5,
                    capacity=150, sample_fraction=0.3,
                    n_input_partitions=10, seed=9)


@pytest.fixture
def built():
    base = random_walk_dataset(1500, 48, seed=1)
    index = ClimberIndex.build(base, CFG)
    extra = random_walk_dataset(400, 48, seed=2)
    extra = type(extra)(extra.values, ids=np.arange(10_000, 10_400),
                        name="extra")
    return base, extra, index


class TestAppend:
    def test_record_conservation(self, built):
        base, extra, index = built
        summary = index.append(extra)
        assert summary["records_appended"] == 400
        stored = []
        for pname in index.dfs.list_partitions():
            stored.extend(index.dfs.read_partition(pname).ids.tolist())
        assert sorted(stored) == sorted(
            base.ids.tolist() + extra.ids.tolist()
        )

    def test_delta_partitions_created_next_to_bases(self, built):
        _, extra, index = built
        summary = index.append(extra)
        for pname in summary["delta_partitions"]:
            base_name = pname.split(".d")[0]
            assert pname.startswith(base_name + ".d")

    def test_appended_records_are_findable(self, built):
        _, extra, index = built
        index.append(extra)
        hits = 0
        for i in range(0, 400, 40):
            res = index.knn(extra.values[i], 3, variant="adaptive")
            # Tolerance covers the matmul distance path's ~1e-7 noise.
            if res.ids[0] == extra.ids[i] and res.distances[0] < 1e-5:
                hits += 1
        assert hits >= 8  # random WD tie-breaks may divert a rare record

    def test_n_records_updated(self, built):
        _, extra, index = built
        before = index.n_records
        index.append(extra)
        assert index.n_records == before + 400

    def test_multiple_appends_increment_sequence(self, built):
        _, extra, index = built
        first = index.append(extra.take(np.arange(100)))
        second = index.append(extra.take(np.arange(100, 200)))
        assert any(".d0" in p for p in first["delta_partitions"])
        assert any(".d1" in p for p in second["delta_partitions"])

    def test_recall_maintained_over_combined_data(self, built):
        base, extra, index = built
        index.append(extra)
        all_values = np.vstack([base.values, extra.values])
        all_ids = np.concatenate([base.ids, extra.ids])
        recalls = []
        for i in (5, 205, 405, 805, 1205, 1405):
            exact, _ = knn_bruteforce(base.values[i], all_values, all_ids, 20)
            res = index.knn(base.values[i], 20)
            recalls.append(len(set(res.ids) & set(exact)) / 20)
        # Sparse random walks with a small pivot pool are a hard workload;
        # the check is that appended data does not break retrieval, not
        # that recall is high (the benchmarks measure that).
        assert np.mean(recalls) > 0.25

    def test_append_length_mismatch_rejected(self, built):
        _, _, index = built
        wrong = random_walk_dataset(10, 32, seed=3)
        with pytest.raises(ConfigurationError):
            index.append(wrong)

    def test_sim_seconds_positive(self, built):
        _, extra, index = built
        assert index.append(extra)["sim_seconds"] > 0

    def test_deltas_visible_after_reopen(self, built):
        _, extra, index = built
        index.append(extra)
        reopened = ClimberIndex.reopen(
            index.save_global_index(), index.dfs, CFG
        )
        res = reopened.knn(extra.values[7], 3)
        assert extra.ids[7] in res.ids

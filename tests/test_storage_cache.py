"""Tests for the DFS read cache, delta registry, and partition metadata.

The cache contract: *logical* read counters (``bytes_read`` /
``partitions_read``) and simulated cost accounting are byte-identical
with the cache enabled or disabled — only the physical deserialisation
work changes, tracked by ``cache_hits`` / ``cache_misses``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset
from repro.exceptions import PartitionNotFoundError, StorageError
from repro.storage import PartitionFile, SimulatedDFS


def make_partition(pid="p0", n_clusters=2, per_cluster=4, length=8, seed=0):
    rng = np.random.default_rng(seed)
    clusters = {}
    next_id = 0
    for c in range(n_clusters):
        ids = np.arange(next_id, next_id + per_cluster)
        next_id += per_cluster
        clusters[f"g0/{c}"] = (ids, rng.normal(size=(per_cluster, length)))
    return PartitionFile.from_clusters(pid, clusters)


class TestReadCache:
    def test_hit_and_miss_counters(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=1 << 20)
        part = make_partition("a")
        dfs.write_partition(part)
        dfs.read_partition("a")
        dfs.read_partition("a")
        dfs.read_partition("a")
        assert dfs.counters.cache_misses == 1
        assert dfs.counters.cache_hits == 2

    def test_logical_counters_charged_on_hits(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=1 << 20)
        part = make_partition("a")
        dfs.write_partition(part)
        dfs.read_partition("a")
        dfs.read_partition("a")
        assert dfs.counters.partitions_read == 2
        assert dfs.counters.bytes_read == 2 * part.nbytes

    def test_cached_read_returns_equal_content(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=1 << 20)
        part = make_partition("a", seed=5)
        dfs.write_partition(part)
        first = dfs.read_partition("a")
        second = dfs.read_partition("a")
        assert second is first  # served from cache, no re-deserialisation
        np.testing.assert_allclose(second.values, part.values)

    def test_byte_bound_respected(self, tmp_path):
        parts = [make_partition(f"p{i}", per_cluster=8, seed=i) for i in range(4)]
        budget = parts[0].nbytes * 2 + 1
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=budget)
        for p in parts:
            dfs.write_partition(p)
        for p in parts:
            dfs.read_partition(p.partition_id)
        assert dfs.cache_used_bytes <= budget
        assert len(dfs._cache) == 2  # LRU kept the last two

    def test_lru_eviction_order(self, tmp_path):
        parts = [make_partition(f"p{i}", per_cluster=8, seed=i) for i in range(3)]
        dfs = SimulatedDFS(backing_dir=tmp_path,
                           cache_bytes=parts[0].nbytes * 2 + 1)
        for p in parts:
            dfs.write_partition(p)
        dfs.read_partition("p0")
        dfs.read_partition("p1")
        dfs.read_partition("p0")   # refresh p0
        dfs.read_partition("p2")   # evicts p1, the least recently used
        assert set(dfs._cache) == {"p0", "p2"}

    def test_oversized_partition_not_cached(self, tmp_path):
        part = make_partition("big", per_cluster=64)
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=part.nbytes - 1)
        dfs.write_partition(part)
        dfs.read_partition("big")
        assert dfs.cache_used_bytes == 0

    def test_write_invalidates_stale_cache_entry(self, tmp_path):
        """Defensive: overwrites are rejected today, but if an entry ever
        lingered under a written id it must not shadow the new bytes."""
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=1 << 20)
        fresh = make_partition("x", seed=1)
        dfs._cache["x"] = make_partition("x", seed=2)  # stale injection
        dfs.write_partition(fresh)
        got = dfs.read_partition("x")
        np.testing.assert_allclose(got.values, fresh.values)

    def test_cache_clear(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path, cache_bytes=1 << 20)
        dfs.write_partition(make_partition("a"))
        dfs.read_partition("a")
        assert dfs.cache_used_bytes > 0
        dfs.cache_clear()
        assert dfs.cache_used_bytes == 0
        dfs.read_partition("a")
        assert dfs.counters.cache_misses == 2

    def test_cache_off_never_counts(self):
        dfs = SimulatedDFS()
        dfs.write_partition(make_partition("a"))
        dfs.read_partition("a")
        assert dfs.counters.cache_hits == 0
        assert dfs.counters.cache_misses == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDFS(cache_bytes=-1)


class TestDeltaRegistry:
    def test_delta_partitions_sorted(self):
        dfs = SimulatedDFS()
        for pid in ("beta1.d1", "beta1.d0", "beta12.d0", "beta1"):
            dfs.write_partition(make_partition(pid))
        assert dfs.delta_partitions("beta1") == ["beta1.d0", "beta1.d1"]
        assert dfs.delta_partitions("beta12") == ["beta12.d0"]
        assert dfs.delta_partitions("beta2") == []

    def test_registry_matches_prefix_scan(self):
        dfs = SimulatedDFS()
        names = ["beta0", "beta0.d0", "beta0.d1", "beta0.d10", "beta0.d2",
                 "beta10.d0"]
        for pid in names:
            dfs.write_partition(make_partition(pid))
        for base in ("beta0", "beta10"):
            scan = [p for p in dfs.list_partitions()
                    if p.startswith(f"{base}.d")]
            assert dfs.delta_partitions(base) == scan

    def test_attach_rebuilds_registry(self, tmp_path):
        dfs = SimulatedDFS(backing_dir=tmp_path)
        dfs.write_partition(make_partition("beta3"))
        dfs.write_partition(make_partition("beta3.d0"))
        fresh = SimulatedDFS(backing_dir=tmp_path)
        assert fresh.attach() == 2
        assert fresh.delta_partitions("beta3") == ["beta3.d0"]


class TestRecordCountMetadata:
    def test_record_count_after_write(self):
        dfs = SimulatedDFS()
        part = make_partition("a", n_clusters=3, per_cluster=5)
        dfs.write_partition(part)
        assert dfs.record_count("a") == 15

    def test_record_count_missing_partition(self):
        dfs = SimulatedDFS()
        with pytest.raises(PartitionNotFoundError):
            dfs.record_count("ghost")

    def test_attach_reads_headers_not_payloads(self, tmp_path):
        writer = SimulatedDFS(backing_dir=tmp_path)
        parts = [make_partition(f"p{i}", per_cluster=6, seed=i) for i in range(3)]
        for p in parts:
            writer.write_partition(p)
        fresh = SimulatedDFS(backing_dir=tmp_path)
        assert fresh.attach() == 3
        for p in parts:
            assert fresh.record_count(p.partition_id) == p.record_count
            assert fresh.partition_nbytes(p.partition_id) == p.nbytes

    def test_stored_size_from_meta_legacy_payload(self):
        assert PartitionFile.stored_size_from_meta({"header": {}}) is None


class TestReopenUsesMetadata:
    CFG = ClimberConfig(word_length=8, n_pivots=24, prefix_length=5,
                        capacity=120, sample_fraction=0.25,
                        n_input_partitions=12, seed=4)

    def test_reopen_reads_no_payload_bytes(self):
        ds = random_walk_dataset(1200, 48, seed=3)
        dfs = SimulatedDFS()
        index = ClimberIndex.build(ds, self.CFG, dfs=dfs)
        blob = index.save_global_index()
        before = dfs.counters.snapshot()
        reopened = ClimberIndex.reopen(blob, dfs, self.CFG)
        assert reopened.n_records == ds.count
        assert dfs.counters.bytes_read == before.bytes_read
        assert dfs.counters.partitions_read == before.partitions_read


class TestAccountingParityWithCache:
    """Acceptance: logical reads and sim_seconds identical, cache on or off."""

    def test_query_workload_counters_identical(self, tmp_path):
        ds = random_walk_dataset(1500, 48, seed=9)
        cfg = ClimberConfig(word_length=8, n_pivots=32, prefix_length=6,
                            capacity=100, sample_fraction=0.25,
                            n_input_partitions=12, seed=2)
        build_dfs = SimulatedDFS(backing_dir=tmp_path / "dfs")
        index = ClimberIndex.build(ds, cfg, dfs=build_dfs)
        blob = index.save_global_index()

        results = {}
        for cache_bytes in (0, 1 << 26):
            dfs = SimulatedDFS(backing_dir=tmp_path / "dfs",
                               cache_bytes=cache_bytes)
            dfs.attach()
            idx = ClimberIndex.reopen(blob, dfs, cfg)
            sims = []
            for i in range(0, 300, 13):
                res = idx.knn(ds.values[i], 10, variant="adaptive")
                sims.append(res.stats.sim_seconds)
            results[cache_bytes] = (dfs.counters.bytes_read,
                                    dfs.counters.partitions_read, sims)
        cold = results[0]
        warm = results[1 << 26]
        assert warm[0] == cold[0]
        assert warm[1] == cold[1]
        assert warm[2] == cold[2]


class TestCacheThreadSafety:
    """The cache (and every counter) is guarded by one DFS lock: a storm of
    concurrent readers over a cache far smaller than the working set must
    keep every invariant intact — no exceptions, exact logical counters,
    hit/miss totals that sum to the read count, and an eviction accounting
    that never drifts or exceeds the byte budget."""

    def test_concurrent_read_hammer(self):
        import threading

        parts = [make_partition(f"p{i}", seed=i) for i in range(12)]
        # Budget fits only ~3 partitions, forcing constant eviction churn.
        dfs = SimulatedDFS(cache_bytes=3 * parts[0].nbytes + 1,
                           partition_format="v2")
        for part in parts:
            dfs.write_partition(part)

        n_threads, reads_each = 8, 300
        errors = []
        barrier = threading.Barrier(n_threads)

        def reader(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for _ in range(reads_each):
                    pid = f"p{rng.integers(0, len(parts))}"
                    handle = dfs.read_partition(pid)
                    assert handle.record_count == parts[0].record_count
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        total = n_threads * reads_each
        c = dfs.counters
        assert c.partitions_read == total
        # All test partitions share one shape, so logical bytes are exact.
        assert c.bytes_read == total * dfs.partition_nbytes("p0")
        # Every read is exactly one hit or one miss.
        assert c.cache_hits + c.cache_misses == total
        assert c.cache_misses >= 1
        # Accounting invariant: used bytes equal the sum of cached
        # partition sizes and respect the budget.
        assert dfs.cache_used_bytes == sum(
            dfs.partition_nbytes(pid) for pid in dfs._cache
        )
        assert dfs.cache_used_bytes <= dfs.cache_bytes

    def test_concurrent_mixed_hit_miss_straggler_hammer(self):
        # Same storm, harder workload: half the partitions are hot (hits),
        # the cache churns on the cold tail (misses + evictions), and a
        # seeded straggler plan injects sleeps on physical opens — sleeps
        # that now happen *outside* the narrow lock, so the hammer also
        # exercises cache probes racing in-flight opens.  Every total must
        # still be arithmetically exact.
        from repro.resilience import FaultPlan

        parts = [make_partition(f"p{i}", seed=i) for i in range(12)]
        plan = FaultPlan(seed=29, straggler_rate=0.5, straggler_delay_s=0.001)
        dfs = SimulatedDFS(cache_bytes=3 * parts[0].nbytes + 1,
                           partition_format="v2", fault_plan=plan)
        for part in parts:
            dfs.write_partition(part)

        n_threads, reads_each = 8, 150
        errors = []
        barrier = threading.Barrier(n_threads)

        def reader(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for i in range(reads_each):
                    # Hot set p0-p2 on even steps, uniform otherwise.
                    if i % 2 == 0:
                        pid = f"p{rng.integers(0, 3)}"
                    else:
                        pid = f"p{rng.integers(0, len(parts))}"
                    handle = dfs.read_partition(pid)
                    assert handle.record_count == parts[0].record_count
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(seed,))
            for seed in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        total = n_threads * reads_each
        c = dfs.counters
        # Exact logical totals, independent of hits, evictions, or the
        # injected straggler sleeps.
        assert c.partitions_read == total
        assert c.bytes_read == total * dfs.partition_nbytes("p0")
        assert c.cache_hits + c.cache_misses == total
        # The workload genuinely mixed hits and misses (hot set is far
        # smaller than the budget; cold tail is far larger).
        assert c.cache_hits > 0
        assert c.cache_misses > len(parts)
        # Stragglers delay but never fail: no retries, no failures.
        assert c.retries == 0
        assert c.read_failures == 0
        assert dfs.cache_used_bytes == sum(
            dfs.partition_nbytes(pid) for pid in dfs._cache
        )
        assert dfs.cache_used_bytes <= dfs.cache_bytes

    def test_duplicate_insert_is_idempotent(self):
        # Regression for the pre-lock accounting: re-inserting an already
        # cached partition must not double-count cache_used_bytes.
        part = make_partition("a")
        dfs = SimulatedDFS(cache_bytes=1 << 20, partition_format="v2")
        dfs.write_partition(part)
        handle = dfs.read_partition("a")
        before = dfs.cache_used_bytes
        dfs._cache_insert("a", handle)
        dfs._cache_insert("a", handle)
        assert dfs.cache_used_bytes == before

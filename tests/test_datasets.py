"""Tests for the four workload generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.datasets import (
    DATASET_NAMES,
    PAPER_LENGTHS,
    count_to_gb,
    dna_dataset,
    dna_series_from_bases,
    eeg_dataset,
    gb_to_count,
    make_dataset,
    random_walk_dataset,
    sample_queries,
    texmex_like_dataset,
)
from repro.series import is_znormalized


class TestRandomWalk:
    def test_shape_and_name(self):
        ds = random_walk_dataset(50, 64, seed=1)
        assert ds.count == 50
        assert ds.length == 64
        assert ds.name == "RandomWalk"

    def test_default_length_matches_paper(self):
        ds = random_walk_dataset(5)
        assert ds.length == 256

    def test_znormalized_by_default(self):
        ds = random_walk_dataset(20, 64, seed=2)
        assert is_znormalized(ds.values)

    def test_unnormalized_option(self):
        ds = random_walk_dataset(20, 64, seed=2, normalize=False)
        assert not is_znormalized(ds.values)

    def test_deterministic_by_seed(self):
        a = random_walk_dataset(10, 32, seed=5)
        b = random_walk_dataset(10, 32, seed=5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = random_walk_dataset(10, 32, seed=5)
        b = random_walk_dataset(10, 32, seed=6)
        assert not np.allclose(a.values, b.values)

    def test_chunked_generation_consistent(self):
        whole = random_walk_dataset(100, 16, seed=9, chunk_rows=100)
        chunked = random_walk_dataset(100, 16, seed=9, chunk_rows=7)
        # Chunking changes RNG consumption order, but output must stay a
        # valid dataset of the right shape with distinct rows.
        assert chunked.values.shape == whole.values.shape
        assert len(np.unique(chunked.values[:, -1])) > 50

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            random_walk_dataset(0, 32)
        with pytest.raises(ConfigurationError):
            random_walk_dataset(5, 1)

    def test_walk_structure_before_normalization(self):
        """Unnormalised rows must be cumulative sums: lag-1 autocorrelation high."""
        ds = random_walk_dataset(30, 128, seed=3, normalize=False)
        x = ds.values
        ac = [np.corrcoef(row[:-1], row[1:])[0, 1] for row in x]
        assert np.mean(ac) > 0.85


class TestTexMex:
    def test_shape(self):
        ds = texmex_like_dataset(40, seed=1)
        assert ds.length == 128
        assert ds.count == 40

    def test_clustered_structure(self):
        """Vectors in the same cluster are closer than across clusters."""
        ds = texmex_like_dataset(200, n_clusters=4, cluster_spread=0.1, seed=2)
        from repro.series import squared_euclidean

        d2 = squared_euclidean(ds.values, ds.values)
        np.fill_diagonal(d2, np.inf)
        # Each point's nearest neighbour should be much closer than the median.
        nn = d2.min(axis=1)
        assert np.median(nn) < 0.25 * np.median(d2[np.isfinite(d2)])

    def test_more_clusters_less_concentration(self):
        tight = texmex_like_dataset(100, n_clusters=2, seed=3)
        loose = texmex_like_dataset(100, n_clusters=100, seed=3)
        assert tight.count == loose.count

    def test_rejects_bad_clusters(self):
        with pytest.raises(ConfigurationError):
            texmex_like_dataset(10, n_clusters=0)

    def test_znormalized(self):
        assert is_znormalized(texmex_like_dataset(20, seed=4).values)


class TestDna:
    def test_base_conversion_known(self):
        np.testing.assert_array_equal(
            dna_series_from_bases("AACG"), [2.0, 4.0, 5.0, 4.0]
        )

    def test_complementary_bases_opposite(self):
        a = dna_series_from_bases("A")
        t = dna_series_from_bases("T")
        assert a[0] == -t[0]

    def test_rejects_unknown_base(self):
        with pytest.raises(ConfigurationError):
            dna_series_from_bases("ACGX")

    def test_shape_and_length(self):
        ds = dna_dataset(30, seed=1)
        assert ds.length == 192
        assert ds.count == 30

    def test_motif_copies_cluster(self):
        """With high motif rate and low mutation, near-duplicates must exist."""
        ds = dna_dataset(100, 96, motif_count=4, motif_rate=0.9,
                         mutation_rate=0.01, seed=2)
        from repro.series import squared_euclidean

        d2 = squared_euclidean(ds.values, ds.values)
        np.fill_diagonal(d2, np.inf)
        assert (d2.min(axis=1) < 1.0).mean() > 0.5

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            dna_dataset(10, motif_rate=1.5)
        with pytest.raises(ConfigurationError):
            dna_dataset(10, mutation_rate=-0.1)


class TestEeg:
    def test_shape(self):
        ds = eeg_dataset(25, seed=1)
        assert ds.length == 256
        assert ds.count == 25

    def test_seizure_rate_extremes(self):
        none = eeg_dataset(40, 128, seizure_rate=0.0, seed=3, normalize=False)
        full = eeg_dataset(40, 128, seizure_rate=1.0, seed=3, normalize=False)
        # Ictal bursts dominate amplitude.
        assert np.abs(full.values).max() > np.abs(none.values).max()

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            eeg_dataset(10, seizure_rate=2.0)

    def test_znormalized(self):
        assert is_znormalized(eeg_dataset(10, seed=2).values)

    def test_rejects_tiny_window(self):
        with pytest.raises(ConfigurationError):
            eeg_dataset(10, length=4)


class TestRegistry:
    def test_all_names_buildable(self):
        for name in DATASET_NAMES:
            ds = make_dataset(name, 10, seed=1)
            assert ds.count == 10
            assert ds.length == PAPER_LENGTHS[name]

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_dataset("SIFT", 10)

    def test_length_override(self):
        ds = make_dataset("RandomWalk", 10, length=32)
        assert ds.length == 32

    def test_sample_queries_from_dataset(self):
        ds = make_dataset("RandomWalk", 100, length=32, seed=1)
        qs = sample_queries(ds, 10, seed=2)
        assert qs.count == 10
        # Queries must literally be dataset members (the paper's protocol).
        for qid in qs.ids:
            row = ds.values[np.flatnonzero(ds.ids == qid)[0]]
            np.testing.assert_array_equal(row, qs.values[np.flatnonzero(qs.ids == qid)[0]])

    def test_sample_queries_too_many(self):
        ds = make_dataset("RandomWalk", 10, length=32)
        with pytest.raises(ConfigurationError):
            sample_queries(ds, 11)

    def test_gb_roundtrip(self):
        count = gb_to_count(0.5, 256)
        assert count_to_gb(count, 256) == pytest.approx(0.5, rel=1e-3)

    def test_gb_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            gb_to_count(0.0, 256)

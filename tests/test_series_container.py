"""Tests for repro.series.series: dataset container and shape handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.series import SeriesDataset, as_matrix, series_nbytes


class TestAsMatrix:
    def test_promotes_single_series_to_row(self):
        out = as_matrix(np.arange(5.0))
        assert out.shape == (1, 5)

    def test_preserves_2d_shape(self):
        out = as_matrix(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_casts_to_float64(self):
        out = as_matrix(np.arange(6, dtype=np.int32).reshape(2, 3))
        assert out.dtype == np.float64

    def test_output_is_c_contiguous(self):
        out = as_matrix(np.asfortranarray(np.zeros((3, 4))))
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_3d(self):
        with pytest.raises(DimensionalityError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DimensionalityError):
            as_matrix(np.zeros((0, 5)))

    def test_accepts_python_lists(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)


class TestSeriesNbytes:
    def test_includes_overhead_by_default(self):
        assert series_nbytes(100) == 816

    def test_raw_bytes_without_overhead(self):
        assert series_nbytes(100, with_overhead=False) == 800


class TestSeriesDataset:
    def test_default_ids_are_sequential(self):
        ds = SeriesDataset(np.zeros((4, 8)))
        assert list(ds.ids) == [0, 1, 2, 3]

    def test_count_and_length(self):
        ds = SeriesDataset(np.zeros((4, 8)))
        assert ds.count == 4
        assert ds.length == 8
        assert len(ds) == 4

    def test_nbytes_scales_with_count(self):
        a = SeriesDataset(np.zeros((4, 8)))
        b = SeriesDataset(np.zeros((8, 8)))
        assert b.nbytes == 2 * a.nbytes

    def test_mismatched_ids_rejected(self):
        with pytest.raises(DimensionalityError):
            SeriesDataset(np.zeros((4, 8)), ids=np.arange(3))

    def test_iteration_yields_rows(self):
        ds = SeriesDataset(np.arange(8.0).reshape(2, 4))
        rows = list(ds)
        assert len(rows) == 2
        np.testing.assert_array_equal(rows[1], [4, 5, 6, 7])

    def test_take_preserves_ids(self):
        ds = SeriesDataset(np.arange(20.0).reshape(5, 4), ids=np.array([10, 11, 12, 13, 14]))
        sub = ds.take(np.array([0, 2]))
        assert list(sub.ids) == [10, 12]
        np.testing.assert_array_equal(sub.values[1], ds.values[2])

    def test_sample_size(self, rng):
        ds = SeriesDataset(np.zeros((100, 4)))
        sub = ds.sample(0.25, rng)
        assert sub.count == 25

    def test_sample_minimum_one(self, rng):
        ds = SeriesDataset(np.zeros((3, 4)))
        assert ds.sample(0.01, rng).count == 1

    def test_sample_no_replacement(self, rng):
        ds = SeriesDataset(np.zeros((50, 4)))
        sub = ds.sample(0.5, rng)
        assert len(set(sub.ids.tolist())) == sub.count

    def test_sample_rejects_bad_fraction(self, rng):
        ds = SeriesDataset(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            ds.sample(0.0, rng)
        with pytest.raises(ValueError):
            ds.sample(1.5, rng)

    def test_split_into_chunks_covers_all_rows(self):
        ds = SeriesDataset(np.arange(40.0).reshape(10, 4))
        chunks = ds.split_into_chunks(3)
        total = sum(c.count for c in chunks)
        assert total == 10
        all_ids = sorted(i for c in chunks for i in c.ids.tolist())
        assert all_ids == list(range(10))

    def test_split_into_more_chunks_than_rows(self):
        ds = SeriesDataset(np.zeros((2, 4)))
        chunks = ds.split_into_chunks(5)
        assert sum(c.count for c in chunks) == 2
        assert all(c.count > 0 for c in chunks)

    def test_split_rejects_zero_chunks(self):
        ds = SeriesDataset(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ds.split_into_chunks(0)

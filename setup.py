"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build. ``python setup.py
develop`` (or ``pip install -e . --no-use-pep517``) uses the legacy egg-link
path which needs nothing beyond setuptools.
"""
from setuptools import setup

setup()

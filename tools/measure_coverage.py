"""Line-coverage measurement for environments without pytest-cov.

Runs the tier-1 pytest suite under a ``sys.settrace`` line collector
restricted to ``src/repro`` and reports executed / executable lines per
module and in total.  Executable lines come from compiling each source
file and walking the code objects' ``co_lines()`` tables — the same
definition coverage.py uses for statement coverage, so the number is
directly comparable to the ``pytest-cov`` gate in CI (expect agreement
within a few points; this tracer cannot see lines executed only at import
time before tracing starts).

Used to record the ``--cov-fail-under`` baseline in
``.github/workflows/ci.yml``.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """Line numbers holding executable statements, via code-object tables."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        stack.extend(
            const for const in obj.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main() -> int:
    import pytest

    prefix = str(SRC_ROOT)
    hit: dict[str, set[int]] = {}

    def local_tracer(frame, event, arg):
        if event == "line":
            hit.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
        return local_tracer

    def global_tracer(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(prefix):
            return local_tracer
        return None

    args = sys.argv[1:] or ["-x", "-q", str(REPO_ROOT / "tests")]
    threading.settrace(global_tracer)
    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below reflects a "
              "partial run", file=sys.stderr)

    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        possible = executable_lines(path)
        if not possible:
            continue
        covered = hit.get(str(path), set()) & possible
        rows.append((str(path.relative_to(SRC_ROOT)), len(covered),
                     len(possible)))
        total_exec += len(possible)
        total_hit += len(covered)

    width = max(len(name) for name, _, _ in rows)
    for name, covered, possible in rows:
        print(f"{name:<{width}}  {covered:>5}/{possible:<5} "
              f"{100.0 * covered / possible:6.1f}%")
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_exec:<5} "
          f"{100.0 * total_hit / total_exec:6.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main())

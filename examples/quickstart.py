#!/usr/bin/env python3
"""Quickstart: build a CLIMBER index and run approximate kNN queries.

Walks through the full public API in ~50 lines:

1. generate a data series dataset (the RandomWalk benchmark),
2. build the two-level pivot index (CLIMBER-INX) with telemetry on,
3. run approximate kNN queries with the three variants,
4. measure recall against exact ground truth,
5. inspect one query plan with ``explain_query`` and the accumulated
   build/query metrics with ``stats()``.

Run:  python examples/quickstart.py
"""

import json

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset, sample_queries
from repro.evaluation import evaluate_system, exact_ground_truth, render_table

K = 20


def main() -> None:
    # 1. A dataset of 8 000 z-normalised random-walk series, 64 points each.
    dataset = random_walk_dataset(8_000, 64, seed=7)
    print(f"dataset: {dataset.count} series of length {dataset.length} "
          f"({dataset.nbytes / 1e6:.1f} MB)")

    # 2. Build the index.  The paper's defaults are 200 pivots / prefix 10
    #    on terabyte data; we scale down proportionally.
    config = ClimberConfig(
        word_length=8,        # PAA segments (CLIMBER-FX step 1)
        n_pivots=32,          # pivot count r
        prefix_length=6,      # P4 signature length m
        capacity=400,         # partition capacity c, in records
        sample_fraction=0.2,  # construction sample (alpha)
        seed=1,
        telemetry=True,       # per-stage spans + query metrics (default off)
    )
    index = ClimberIndex.build(dataset, config)
    print(f"index: {index.n_groups} groups, {index.n_partitions} partitions, "
          f"global index {index.global_index_nbytes / 1024:.1f} KB")

    # 3 + 4. Query with each variant and score against exact ground truth.
    queries = sample_queries(dataset, 20, seed=3)
    truth = exact_ground_truth(dataset, queries, K)
    rows = []
    for variant in ("knn", "adaptive", "od-smallest"):
        ev = evaluate_system(
            f"CLIMBER-{variant}",
            lambda q, k, v=variant: index.knn(q, k, variant=v),
            queries,
            truth,
            K,
        )
        rows.append(ev.row())
    print()
    print(render_table(f"approximate {K}-NN over {queries.count} queries", rows))

    # 5. EXPLAIN one query: per-stage wall timings, partitions probed,
    #    logical bytes read, cache hits/misses — plus the answer itself.
    plan = index.explain_query(queries.values[0], 5)
    print(f"\nfirst query -> ids {plan['ids']}, "
          f"distances {[round(d, 3) for d in plan['distances']]}")
    print(f"touched partitions: {plan['partitions']} "
          f"({plan['bytes_read']:,} logical bytes)")
    stage_us = {name: f"{1e6 * s:.0f}us" for name, s in plan["stages"].items()}
    print(f"stage walls: {stage_us}")

    # Accumulated metrics: build spans and the queries run above (recall
    # evaluation included) all landed in the index registry.
    stats = index.stats()
    query_hist = stats["metrics"]["histograms"]["query.wall_s"]
    print(f"\n{query_hist['count']} queries recorded, "
          f"p50 {1e6 * query_hist['p50']:.0f}us, "
          f"p99 {1e6 * query_hist['p99']:.0f}us")
    print("dfs counters:", json.dumps(stats["dfs"]))


if __name__ == "__main__":
    main()

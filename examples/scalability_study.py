#!/usr/bin/env python3
"""Scalability study: CLIMBER vs a full scan as the data grows.

Demonstrates the cluster cost model: the same scaled-down experiment is
declared at increasing paper-scale dataset sizes (via ``cost_scale``), and
the simulated times reproduce the paper's headline trade-off — the exact
scan grows linearly into minutes while the index keeps answering in
seconds at 80%ish recall (Fig. 7(c,d) in miniature).

Run:  python examples/scalability_study.py
"""

from repro.baselines import DssScanner
from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import random_walk_dataset, sample_queries
from repro.evaluation import evaluate_system, exact_ground_truth, render_table

K = 20
SCALED_COUNT = 6_000
LENGTH = 64
BLOCK = 64 * 1024 * 1024


def main() -> None:
    dataset = random_walk_dataset(SCALED_COUNT, LENGTH, seed=13)
    queries = sample_queries(dataset, 10, seed=4)
    truth = exact_ground_truth(dataset, queries, K)

    rows = []
    for size_gb in (200, 400, 600):
        # cost_scale maps our scaled bytes onto `size_gb` of paper-scale data.
        cost_scale = size_gb * 1e9 / dataset.nbytes
        index = ClimberIndex.build(
            dataset,
            ClimberConfig(word_length=8, n_pivots=32, prefix_length=6,
                          capacity=300, sample_fraction=0.2, seed=1,
                          n_input_partitions=128,  # paper data arrives in many HDFS blocks
                          cost_scale=cost_scale, sim_partition_bytes=BLOCK),
        )
        dss = DssScanner.build(dataset, n_partitions=32, cost_scale=cost_scale)
        ev_climber = evaluate_system(
            "CLIMBER", lambda q, k: index.knn(q, k), queries, truth, K
        )
        ev_dss = evaluate_system("Dss", dss.knn, queries, truth, K)
        rows.append({
            "size": f"{size_gb}GB",
            "climber_recall": round(ev_climber.recall, 2),
            "climber_query_s": round(ev_climber.sim_seconds, 1),
            "dss_recall": round(ev_dss.recall, 2),
            "dss_query_s": round(ev_dss.sim_seconds, 1),
            "build_min": round(index.build_sim_seconds / 60, 1),
        })
    print(render_table(
        "simulated paper-scale behaviour (times from the cluster cost model)",
        rows,
    ))
    print("\nNote: recall is measured for real on the scaled dataset; "
          "times are the calibrated simulator's output (see DESIGN.md §1).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""EEG scenario: retrieve windows similar to a seizure discharge.

The paper motivates data-series search with electrophysiology: an ECG/EEG
device produces gigabytes of series per hour, and analysts look up windows
similar to a pattern of interest.  Here we index synthetic multi-channel
EEG (background rhythms + 3 Hz spike-and-wave seizure bursts), query with a
seizure window, and check that the retrieved neighbours are predominantly
seizure windows too — similarity search as a weak ictal classifier.

Run:  python examples/eeg_seizure_search.py
"""

import numpy as np

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import eeg_dataset
from repro.evaluation import exact_ground_truth, render_table

K = 15


def main() -> None:
    dataset, is_seizure = eeg_dataset(
        6_000, 128, seizure_rate=0.2, seed=11, return_labels=True
    )
    print(f"EEG windows: {dataset.count}, seizure fraction "
          f"{is_seizure.mean():.2f}")

    index = ClimberIndex.build(
        dataset,
        ClimberConfig(word_length=16, n_pivots=48, prefix_length=8,
                      capacity=300, sample_fraction=0.2, seed=2),
    )
    print(f"index: {index.n_groups} groups, {index.n_partitions} partitions")

    rng = np.random.default_rng(5)
    seizure_rows = rng.choice(np.flatnonzero(is_seizure), 10, replace=False)
    queries = dataset.take(seizure_rows, name="EEG[seizure-queries]")
    truth = exact_ground_truth(dataset, queries, K)

    rows = []
    label_of = dict(zip(dataset.ids.tolist(), is_seizure.tolist()))
    for qi, q in enumerate(queries.values):
        res = index.knn(q, K, variant="adaptive")
        neighbours = [i for i in res.ids.tolist() if i != queries.ids[qi]]
        ictal = sum(label_of[i] for i in neighbours)
        rows.append({
            "query": int(queries.ids[qi]),
            "recall": round(truth.recall_of(qi, res.ids), 2),
            "ictal_neighbours": f"{ictal}/{len(neighbours)}",
            "partitions": res.stats.n_partitions,
        })
    print()
    print(render_table("seizure-window retrieval (adaptive variant)", rows))
    mean_ictal = np.mean([
        int(r["ictal_neighbours"].split("/")[0]) / int(r["ictal_neighbours"].split("/")[1])
        for r in rows
    ])
    print(f"\nmean ictal fraction among retrieved neighbours: {mean_ictal:.2f} "
          f"(dataset base rate {is_seizure.mean():.2f})")


if __name__ == "__main__":
    main()

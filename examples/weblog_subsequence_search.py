#!/usr/bin/env python3
"""Weblog scenario: subsequence similarity over one long trace.

The paper's introduction motivates data-series search with, among others,
weblog traces ("a typical weblog tracing generates around 5 gigabytes per
week").  The natural query there is *subsequence* search: given a window
of unusual request-rate behaviour, find when similar episodes occurred.

This example synthesises a long request-rate trace (daily/weekly
seasonality + bursts + noise), slices it into overlapping windows with
:func:`repro.series.window_dataset`, indexes the windows with CLIMBER,
and queries with a burst episode.  Answer ids are window start offsets,
so hits point straight back into the timeline.

Run:  python examples/weblog_subsequence_search.py
"""

import numpy as np

from repro.core import ClimberConfig, ClimberIndex
from repro.evaluation import render_table
from repro.series import window_dataset, znormalize

SAMPLES_PER_HOUR = 12          # one reading every 5 minutes
WINDOW = 24 * SAMPLES_PER_HOUR  # one-day windows
STRIDE = 2 * SAMPLES_PER_HOUR   # new window every 2 hours
DAYS = 180


def synth_weblog_trace(rng: np.random.Generator) -> tuple[np.ndarray, list[int]]:
    """Six months of request rates with planted traffic-spike episodes."""
    n = DAYS * 24 * SAMPLES_PER_HOUR
    t = np.arange(n) / (24 * SAMPLES_PER_HOUR)  # days
    daily = 1.0 + 0.6 * np.sin(2 * np.pi * t - 0.7)
    weekly = 1.0 + 0.25 * np.sin(2 * np.pi * t / 7)
    rate = 100.0 * daily * weekly + rng.normal(scale=6.0, size=n)
    # Plant flash-crowd episodes: sharp rise, exponential decay over ~6h.
    episodes = sorted(rng.choice(n - WINDOW, size=12, replace=False).tolist())
    for start in episodes:
        dur = 6 * SAMPLES_PER_HOUR
        burst = 250.0 * np.exp(-np.arange(dur) / (2 * SAMPLES_PER_HOUR))
        rate[start : start + dur] += burst
    return rate, episodes


def main() -> None:
    rng = np.random.default_rng(17)
    trace, episodes = synth_weblog_trace(rng)
    windows = window_dataset(trace, WINDOW, STRIDE, name="weblog")
    print(f"trace: {trace.shape[0]:,} readings -> {windows.count:,} "
          f"one-day windows (stride 2h)")

    index = ClimberIndex.build(
        windows,
        ClimberConfig(word_length=24, n_pivots=48, prefix_length=6,
                      capacity=400, sample_fraction=0.2, seed=3),
    )
    info = index.describe()
    print(f"index: {info['groups']} groups, {info['partitions']} partitions, "
          f"{info['global_index_bytes'] / 1024:.1f} KB global index")

    # Query: a window aligned on one of the planted episodes.
    probe_start = episodes[0]
    probe = znormalize(trace[probe_start : probe_start + WINDOW])[0]
    res = index.knn(probe, k=12, variant="adaptive")

    def is_episode_hit(window_start: int) -> bool:
        return any(
            abs(int(window_start) - ep) < WINDOW for ep in episodes
        )

    rows = [
        {
            "window_start_day": round(int(wid) / (24 * SAMPLES_PER_HOUR), 1),
            "distance": round(float(d), 3),
            "covers_planted_burst": "yes" if is_episode_hit(wid) else "no",
        }
        for wid, d in zip(res.ids, res.distances)
    ]
    print()
    print(render_table("nearest one-day windows to the burst probe", rows))
    hits = sum(1 for r in rows if r["covers_planted_burst"] == "yes")
    print(f"\n{hits}/{len(rows)} retrieved windows overlap a planted episode "
          f"({len(episodes)} episodes exist in {DAYS} days)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""DNA scenario: find copies of a repeat family from a mutated probe.

The paper's DNA workload converts genome subsequences into cumulative-walk
data series (the iSAX 2.0 pipeline).  Genomes are highly repetitive, so a
subsequence query should retrieve the other copies of its repeat family.
We index synthetic genomes with planted motifs, query with *freshly
mutated* copies of known motifs (not dataset members), and measure how
many of the retrieved neighbours belong to the same family.

Run:  python examples/dna_repeat_search.py
"""

import numpy as np

from repro.core import ClimberConfig, ClimberIndex
from repro.datasets import dna_dataset
from repro.datasets.dna import _STEP_LOOKUP  # step table of the conversion
from repro.evaluation import render_table
from repro.series import znormalize

K = 10
LENGTH = 96


def main() -> None:
    dataset, families = dna_dataset(
        8_000, LENGTH, motif_count=16, motif_rate=0.7, mutation_rate=0.03,
        seed=4, return_labels=True,
    )
    print(f"DNA records: {dataset.count}; "
          f"{(families >= 0).mean():.0%} belong to one of 16 repeat families")

    index = ClimberIndex.build(
        dataset,
        ClimberConfig(word_length=12, n_pivots=48, prefix_length=8,
                      capacity=400, sample_fraction=0.2, seed=9),
    )
    print(f"index: {index.n_groups} groups, {index.n_partitions} partitions")

    # Regenerate the motif pool (same seed => same motifs as the dataset),
    # then probe with *new* mutated copies.
    rng = np.random.default_rng(4)
    motifs = rng.integers(0, 4, size=(16, LENGTH))
    probe_rng = np.random.default_rng(77)
    family_of = dict(zip(dataset.ids.tolist(), families.tolist()))

    rows = []
    for family in range(0, 16, 2):
        seq = motifs[family].copy()
        mutate = probe_rng.random(LENGTH) < 0.03
        seq[mutate] = probe_rng.integers(0, 4, size=int(mutate.sum()))
        probe = znormalize(np.cumsum(_STEP_LOOKUP[seq]))[0]
        res = index.knn(probe, K, variant="adaptive")
        same = sum(1 for i in res.ids.tolist() if family_of[i] == family)
        rows.append({
            "family": family,
            "same_family_hits": f"{same}/{K}",
            "top_distance": round(float(res.distances[0]), 3),
            "partitions": res.stats.n_partitions,
        })
    print()
    print(render_table("repeat-family retrieval from mutated probes", rows))
    hit_rate = np.mean([int(r["same_family_hits"].split("/")[0]) / K for r in rows])
    print(f"\nmean same-family hit rate: {hit_rate:.2f} "
          f"(random baseline would be ~{(families >= 0).mean() / 16:.3f})")


if __name__ == "__main__":
    main()

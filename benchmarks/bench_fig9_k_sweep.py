"""Figure 9(a,b): recall and query time vs the answer size K.

Paper setting: RandomWalk 400 GB, K in {50, 100, 500, 1000, 2000},
systems: the three CLIMBER variants, TARDIS, DPiSAX, Dss.  Expected
shape: (1) CLIMBER stays superior at every K; (2) the three variants
coincide for small K (the target trie node already holds more than K);
(3) for large K the adaptive variants pull ahead of CLIMBER-kNN;
(4) query times stay in the same ballpark for all approximate systems
(Fig. 9(b) table), rising slightly for the adaptive variants.

Scaled setting: K in {3, 5, 25, 50, 100} (the paper's values / 20), at the
200 GB-equivalent base workload.  (The paper runs this figure at 400 GB;
our scaled stand-in keeps the calibrated base geometry instead because the
K-axis behaviour — variant coincidence/divergence — is what the figure
demonstrates.  See EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest

from bench_common import (
    build_climber,
    build_dpisax,
    build_dss,
    build_tardis,
    emit,
    workload,
)
from repro.evaluation import evaluate_system

SIZE_GB = 200
K_VALUES = (3, 5, 25, 50, 100)      # scaled from 50,100,500,1000,2000
PAPER_K = (50, 100, 500, 1000, 2000)

# Fig. 9(b) exact query-time table (seconds) per K.
PAPER_TIMES = {
    "Dss": (862, 871, 876, 877, 881),
    "CLIMBER-Adap-4X": (11.2, 12, 12, 13, 13.5),
    "CLIMBER-Adap-2X": (11.2, 12, 12, 12.4, 12.7),
    "CLIMBER-kNN": (11.2, 12, 12, 12.3, 12.4),
    "TARDIS": (10.2, 10.6, 11, 11.2, 11.3),
    "DPiSAX": (10, 10.7, 11, 11, 11.3),
}


def _run() -> list[dict]:
    dataset, queries, _ = workload("RandomWalk", size_gb=SIZE_GB)
    index = build_climber(dataset, SIZE_GB)
    tardis = build_tardis(dataset, SIZE_GB)
    dpisax = build_dpisax(dataset, SIZE_GB)
    dss = build_dss(dataset, SIZE_GB)
    systems = {
        "Dss": dss.knn,
        "CLIMBER-Adap-4X": lambda q, k: index.knn(q, k, "adaptive", 4),
        "CLIMBER-Adap-2X": lambda q, k: index.knn(q, k, "adaptive", 2),
        "CLIMBER-kNN": lambda q, k: index.knn(q, k, "knn"),
        "TARDIS": tardis.knn,
        "DPiSAX": dpisax.knn,
    }
    rows = []
    for ki, k in enumerate(K_VALUES):
        from repro.evaluation import exact_ground_truth

        truth = exact_ground_truth(dataset, queries, k)
        for system, knn in systems.items():
            ev = evaluate_system(system, knn, queries, truth, k)
            rows.append({
                "K": k,
                "paper_K": PAPER_K[ki],
                "system": system,
                "recall": round(ev.recall, 3),
                "query_s": round(ev.sim_seconds, 1),
                "paper_query_s": PAPER_TIMES[system][ki],
                "partitions": round(ev.partitions, 2),
            })
    return rows


@pytest.fixture(scope="module")
def fig9_rows():
    rows = _run()
    emit("fig9_k_sweep", "Fig. 9(a,b): recall & query time vs K "
         "(RandomWalk, 200 GB-equivalent; paper uses 400 GB)", rows)
    return rows


def test_fig9_variants_coincide_at_small_k(fig9_rows):
    by = {(r["K"], r["system"]): r for r in fig9_rows}
    for k in (3, 5):
        knn = by[(k, "CLIMBER-kNN")]["recall"]
        a2 = by[(k, "CLIMBER-Adap-2X")]["recall"]
        a4 = by[(k, "CLIMBER-Adap-4X")]["recall"]
        assert abs(knn - a2) < 0.02
        assert abs(knn - a4) < 0.02


def test_fig9_adaptive_wins_at_large_k(fig9_rows):
    by = {(r["K"], r["system"]): r for r in fig9_rows}
    k = K_VALUES[-1]
    assert by[(k, "CLIMBER-Adap-4X")]["recall"] >= by[(k, "CLIMBER-kNN")]["recall"]
    assert by[(k, "CLIMBER-Adap-4X")]["partitions"] >= by[(k, "CLIMBER-kNN")]["partitions"]


def test_fig9_climber_superior_everywhere(fig9_rows):
    """CLIMBER stays on top across the K sweep.

    Strict superiority is required from the default K upward; at the two
    smallest K values (3 and 5 at our scale) recall quantises in steps of
    1/3 and 1/5, so those points only need to be within noise.
    """
    by = {(r["K"], r["system"]): r for r in fig9_rows}
    for k in K_VALUES:
        best_climber = max(
            by[(k, v)]["recall"]
            for v in ("CLIMBER-kNN", "CLIMBER-Adap-2X", "CLIMBER-Adap-4X")
        )
        slack = 0.06 if k < 25 else 0.0
        assert best_climber > by[(k, "TARDIS")]["recall"] - slack, k
        assert best_climber > by[(k, "DPiSAX")]["recall"] - slack, k


def test_fig9_query_benchmark(benchmark, fig9_rows):
    dataset, queries, _ = workload("RandomWalk", size_gb=SIZE_GB)
    index = build_climber(dataset, SIZE_GB)
    benchmark(lambda: index.knn(queries.values[2], 100, "adaptive", 4))
